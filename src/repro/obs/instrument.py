"""Instrumentation helpers: ``@timed`` and module-level ``span()``.

These are thin conveniences over the default registry/tracer so call
sites stay one line.  Both resolve the default lazily at call time, so
swapping the registry (as ``python -m repro obs`` does before a run)
redirects already-decorated functions too.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Iterator, Mapping, Optional, Sequence, TypeVar

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import Span, get_tracer

F = TypeVar("F", bound=Callable)


def timed(
    name: str,
    labels: Optional[Mapping[str, str]] = None,
    registry: Optional[MetricsRegistry] = None,
    boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
) -> Callable[[F], F]:
    """Record each call's wall-clock duration in histogram ``name``.

    The duration is recorded whether the call returns or raises, so
    failing calls stay visible in the latency distribution.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object) -> object:
            target = registry if registry is not None else get_registry()
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                target.histogram(name, labels, boundaries).observe(
                    time.perf_counter() - start
                )

        return wrapper  # type: ignore[return-value]

    return decorate


def span(name: str, **attributes: object):
    """Open a span on the default tracer (context manager)."""
    return get_tracer().span(name, **attributes)
