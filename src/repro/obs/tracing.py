"""Span-tree tracing for the Figure-1 interaction path.

A :class:`Tracer` records nested spans -- one per bus call, discovery
sweep, or enforcement round -- with parent/child links, so the
multi-hop IRR -> IoTA -> TIPPERS loop can explain *where* a request
spent its time.  The clock is injectable: simulations that run on a
virtual clock pass it in and get spans measured in simulated seconds.

Spans are exception-safe: a span always closes (its ``end`` is set and
it is reported to the tracer) even when the instrumented call raises,
recording the error on the span before re-raising.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, Iterator, List, Optional


class Span:
    """One timed operation, possibly with children."""

    __slots__ = ("name", "attributes", "start", "end", "parent", "children", "status", "error")

    def __init__(
        self,
        name: str,
        start: float,
        parent: Optional["Span"] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.children: List["Span"] = []
        self.status = "ok"
        self.error: Optional[str] = None
        if parent is not None:
            parent.children.append(self)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def tree_lines(self, indent: int = 0) -> List[str]:
        duration = self.duration
        mark = "" if self.status == "ok" else "  !%s" % (self.error or "error")
        attrs = (
            " (%s)" % ", ".join("%s=%s" % kv for kv in sorted(self.attributes.items()))
            if self.attributes
            else ""
        )
        lines = [
            "%s%-s%s  %s%s"
            % (
                "  " * indent,
                self.name,
                attrs,
                "...running" if duration is None else "%.6fs" % duration,
                mark,
            )
        ]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, status=%r, duration=%r)" % (self.name, self.status, self.duration)


class ManualClock:
    """A hand-advanced clock for deterministic span timing in tests."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, delta_s: float) -> None:
        if delta_s < 0:
            raise ValueError("clock cannot go backwards")
        self.now += delta_s

    def __call__(self) -> float:
        return self.now


class Tracer:
    """Produces span trees; keeps only the newest ``max_roots`` roots."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_roots: int = 256,
    ) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be positive")
        self._clock = clock if clock is not None else time.perf_counter
        self._stack: List[Span] = []
        self.roots: Deque[Span] = deque(maxlen=max_roots)
        self.started = 0
        self.finished = 0
        self.errored = 0

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child of the current span (or a new root)."""
        parent = self._stack[-1] if self._stack else None
        current = Span(name, self._clock(), parent=parent, attributes=attributes)
        self._stack.append(current)
        self.started += 1
        try:
            yield current
        except BaseException as exc:
            current.status = "error"
            current.error = "%s: %s" % (type(exc).__name__, exc)
            self.errored += 1
            raise
        finally:
            current.end = self._clock()
            self.finished += 1
            self._stack.pop()
            if parent is None:
                self.roots.append(current)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def spans(self) -> List[Span]:
        """Every recorded span, depth-first from each retained root."""
        result: List[Span] = []
        for root in self.roots:
            result.extend(root.walk())
        return result

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans() if span.name == name]

    def slowest_roots(self, limit: int = 5) -> List[Span]:
        finished = [root for root in self.roots if root.duration is not None]
        finished.sort(key=lambda s: s.duration or 0.0, reverse=True)
        return finished[:limit]

    def reset(self) -> None:
        self._stack.clear()
        self.roots.clear()
        self.started = 0
        self.finished = 0
        self.errored = 0


class NullTracer(Tracer):
    """A tracer that records nothing (for overhead-sensitive setups)."""

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:  # type: ignore[override]
        yield _NULL_SPAN


_NULL_SPAN = Span("null", 0.0)

# ----------------------------------------------------------------------
# Process-wide default tracer
# ----------------------------------------------------------------------
_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer components fall back to."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous
