"""Fluent builders for policy documents.

Building admins (and tests) assemble documents step by step; the
builders defer validation to the document constructors, so a builder
can be partially filled and reused.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingOptionDescription,
    SettingsDocument,
)
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import GranularityLevel
from repro.errors import SchemaError


class ResourcePolicyBuilder:
    """Builds a :class:`ResourcePolicyDocument` one resource at a time.

    Example
    -------
    >>> doc = (
    ...     ResourcePolicyBuilder()
    ...     .resource("Location tracking in DBH")
    ...     .at("Donald Bren Hall", "Building", owner="UCI")
    ...     .sensor("WiFi Access Point", "Installed inside the building")
    ...     .purpose("emergency response", "Location is stored continuously")
    ...     .observes("MAC address of the device", "...")
    ...     .retain("P6M")
    ...     .done()
    ...     .build()
    ... )
    """

    def __init__(self) -> None:
        self._resources: List[ResourceDescription] = []
        self._current: Optional[Dict[str, object]] = None

    def resource(self, name: str, resource_id: str = "") -> "ResourcePolicyBuilder":
        """Start a new resource entry named ``name``."""
        self._flush()
        self._current = {
            "name": name,
            "resource_id": resource_id,
            "purposes": {},
            "observations": [],
        }
        return self

    def _require_current(self) -> Dict[str, object]:
        if self._current is None:
            raise SchemaError("call .resource(name) before describing it")
        return self._current

    def at(
        self,
        spatial_name: str,
        spatial_type: str,
        owner: str = "",
        more_info: str = "",
    ) -> "ResourcePolicyBuilder":
        current = self._require_current()
        current["spatial_name"] = spatial_name
        current["spatial_type"] = spatial_type
        current["owner_name"] = owner
        current["owner_more_info"] = more_info
        return self

    def sensor(self, sensor_type: str, description: str = "") -> "ResourcePolicyBuilder":
        current = self._require_current()
        current["sensor_type"] = sensor_type
        current["sensor_description"] = description
        return self

    def purpose(self, key: str, description: str = "") -> "ResourcePolicyBuilder":
        purposes = self._require_current()["purposes"]
        assert isinstance(purposes, dict)
        purposes[key] = description
        return self

    def observes(
        self,
        name: str,
        description: str = "",
        granularity: Optional[GranularityLevel] = None,
        inferred: Optional[List[str]] = None,
    ) -> "ResourcePolicyBuilder":
        observations = self._require_current()["observations"]
        assert isinstance(observations, list)
        observations.append(
            ObservationDescription(
                name=name,
                description=description,
                granularity=granularity,
                inferred=tuple(inferred or ()),
            )
        )
        return self

    def retain(self, duration: str, description: str = "") -> "ResourcePolicyBuilder":
        current = self._require_current()
        current["retention"] = Duration.parse(duration)
        current["retention_description"] = description
        return self

    def settings_url(self, url: str) -> "ResourcePolicyBuilder":
        self._require_current()["settings_url"] = url
        return self

    def done(self) -> "ResourcePolicyBuilder":
        """Finish the current resource entry."""
        self._flush()
        return self

    def _flush(self) -> None:
        if self._current is None:
            return
        current = self._current
        self._current = None
        self._resources.append(
            ResourceDescription(
                name=str(current["name"]),
                resource_id=str(current.get("resource_id", "")),
                spatial_name=str(current.get("spatial_name", "")),
                spatial_type=str(current.get("spatial_type", "Building")),
                owner_name=str(current.get("owner_name", "")),
                owner_more_info=str(current.get("owner_more_info", "")),
                sensor_type=str(current.get("sensor_type", "")),
                sensor_description=str(current.get("sensor_description", "")),
                purposes=dict(current["purposes"]),  # type: ignore[arg-type]
                observations=tuple(current["observations"]),  # type: ignore[arg-type]
                retention=current.get("retention"),  # type: ignore[arg-type]
                retention_description=str(current.get("retention_description", "")),
                settings_url=str(current.get("settings_url", "")),
            )
        )

    def build(self) -> ResourcePolicyDocument:
        self._flush()
        return ResourcePolicyDocument(self._resources)


class ServicePolicyBuilder:
    """Builds a :class:`ServicePolicyDocument`."""

    def __init__(self, service_id: str) -> None:
        self._service_id = service_id
        self._observations: List[ObservationDescription] = []
        self._purposes: Dict[str, str] = {}
        self._developer_name = ""
        self._third_party = False

    def observes(
        self,
        name: str,
        description: str = "",
        granularity: Optional[GranularityLevel] = None,
        inferred: Optional[List[str]] = None,
    ) -> "ServicePolicyBuilder":
        self._observations.append(
            ObservationDescription(
                name=name,
                description=description,
                granularity=granularity,
                inferred=tuple(inferred or ()),
            )
        )
        return self

    def purpose(self, key: str, description: str = "") -> "ServicePolicyBuilder":
        self._purposes[key] = description
        return self

    def developer(self, name: str, third_party: bool = False) -> "ServicePolicyBuilder":
        self._developer_name = name
        self._third_party = third_party
        return self

    def build(self) -> ServicePolicyDocument:
        return ServicePolicyDocument(
            service_id=self._service_id,
            observations=self._observations,
            purposes=self._purposes,
            developer_name=self._developer_name,
            third_party=self._third_party,
        )


class SettingsBuilder:
    """Builds a :class:`SettingsDocument` of select groups."""

    def __init__(self) -> None:
        self._groups: List[List[SettingOptionDescription]] = []
        self._names: List[str] = []

    def group(self, name: str = "") -> "SettingsBuilder":
        self._groups.append([])
        self._names.append(name)
        return self

    def option(
        self,
        description: str,
        on: str,
        granularity: Optional[GranularityLevel] = None,
    ) -> "SettingsBuilder":
        if not self._groups:
            self.group()
        self._groups[-1].append(
            SettingOptionDescription(description=description, on=on, granularity=granularity)
        )
        return self

    def build(self) -> SettingsDocument:
        return SettingsDocument(self._groups, self._names)
