"""The machine-readable policy language (Section IV).

The language is JSON-based ("We choose JSON over other formats mainly
because of the rapid adoption of JSON-based REST APIs") and validated
against JSON-Schema-v4-style schemas implemented in
:mod:`repro.core.language.schema`.

Three document kinds mirror the paper's figures:

- :class:`~repro.core.language.document.ResourcePolicyDocument`
  (Figure 2): what a building resource collects, why, and for how long.
- :class:`~repro.core.language.document.ServicePolicyDocument`
  (Figure 3): what a service consumes and for what purpose.
- :class:`~repro.core.language.document.SettingsDocument` (Figure 4):
  the privacy settings a user (via her IoTA) can choose among.
"""

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingOptionDescription,
    SettingsDocument,
)
from repro.core.language.duration import Duration
from repro.core.language.schema import Schema, validate
from repro.core.language.vocabulary import (
    DataCategory,
    GranularityLevel,
    Purpose,
    PURPOSE_TAXONOMY,
)

__all__ = [
    "Duration",
    "Schema",
    "validate",
    "Purpose",
    "PURPOSE_TAXONOMY",
    "DataCategory",
    "GranularityLevel",
    "ObservationDescription",
    "ResourceDescription",
    "ResourcePolicyDocument",
    "ServicePolicyDocument",
    "SettingOptionDescription",
    "SettingsDocument",
]
