"""ISO-8601 durations for retention periods.

Figure 2 of the paper expresses retention as ``"P6M"`` (six months).
:class:`Duration` parses and formats the ISO-8601 duration syntax
(``PnYnMnDTnHnMnS`` plus the week form ``PnW``) and converts to seconds
using the usual civil approximations (1 year = 365 days, 1 month = 30
days), which is what retention enforcement needs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SchemaError

_DURATION_RE = re.compile(
    r"^P"
    r"(?:(?P<years>\d+)Y)?"
    r"(?:(?P<months>\d+)M)?"
    r"(?:(?P<weeks>\d+)W)?"
    r"(?:(?P<days>\d+)D)?"
    r"(?:T"
    r"(?:(?P<hours>\d+)H)?"
    r"(?:(?P<minutes>\d+)M)?"
    r"(?:(?P<seconds>\d+)S)?"
    r")?$"
)

_SECONDS_PER = {
    "years": 365 * 86400,
    "months": 30 * 86400,
    "weeks": 7 * 86400,
    "days": 86400,
    "hours": 3600,
    "minutes": 60,
    "seconds": 1,
}


@dataclass(frozen=True, order=False)
class Duration:
    """An ISO-8601 duration with integer components."""

    years: int = 0
    months: int = 0
    weeks: int = 0
    days: int = 0
    hours: int = 0
    minutes: int = 0
    seconds: int = 0

    def __post_init__(self) -> None:
        for name in _SECONDS_PER:
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise SchemaError(
                    "duration component %s must be a non-negative int, got %r"
                    % (name, value)
                )

    @classmethod
    def parse(cls, text: str) -> "Duration":
        """Parse an ISO-8601 duration string like ``"P6M"``.

        Raises :class:`SchemaError` on malformed input, including the
        bare ``"P"`` / ``"PT"`` forms that carry no components.
        """
        if not isinstance(text, str):
            raise SchemaError("duration must be a string, got %r" % (text,))
        match = _DURATION_RE.match(text)
        if match is None:
            raise SchemaError("malformed ISO-8601 duration %r" % text)
        parts = {k: int(v) for k, v in match.groupdict().items() if v is not None}
        if not parts:
            raise SchemaError("duration %r has no components" % text)
        return cls(**parts)

    @classmethod
    def from_seconds(cls, total: float) -> "Duration":
        """The coarsest exact decomposition of ``total`` seconds.

        Days are the largest unit used so the result is calendar-exact
        (no month/year approximation on the way back in).
        """
        if total < 0:
            raise SchemaError("duration seconds must be non-negative")
        remaining = int(total)
        days, remaining = divmod(remaining, 86400)
        hours, remaining = divmod(remaining, 3600)
        minutes, seconds = divmod(remaining, 60)
        return cls(days=days, hours=hours, minutes=minutes, seconds=seconds)

    def total_seconds(self) -> int:
        """Approximate length in seconds (365-day years, 30-day months)."""
        return sum(getattr(self, name) * factor for name, factor in _SECONDS_PER.items())

    def isoformat(self) -> str:
        """The canonical ISO-8601 string, e.g. ``"P6M"`` or ``"PT30S"``."""
        date_part = ""
        if self.years:
            date_part += "%dY" % self.years
        if self.months:
            date_part += "%dM" % self.months
        if self.weeks:
            date_part += "%dW" % self.weeks
        if self.days:
            date_part += "%dD" % self.days
        time_part = ""
        if self.hours:
            time_part += "%dH" % self.hours
        if self.minutes:
            time_part += "%dM" % self.minutes
        if self.seconds:
            time_part += "%dS" % self.seconds
        if not date_part and not time_part:
            return "PT0S"
        return "P" + date_part + ("T" + time_part if time_part else "")

    def __str__(self) -> str:
        return self.isoformat()

    def __lt__(self, other: "Duration") -> bool:
        return self.total_seconds() < other.total_seconds()

    def __le__(self, other: "Duration") -> bool:
        return self.total_seconds() <= other.total_seconds()

    def __gt__(self, other: "Duration") -> bool:
        return self.total_seconds() > other.total_seconds()

    def __ge__(self, other: "Duration") -> bool:
        return self.total_seconds() >= other.total_seconds()
