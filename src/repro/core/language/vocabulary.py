"""Controlled vocabularies of the policy language.

Section IV-B.3 says the authors are "working on a taxonomy to model
purpose which includes information about whether or not the data is
shared ... and for how long it will be stored".  This module provides
that taxonomy plus the data-category and granularity vocabularies the
rest of the language references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SchemaError


class Purpose(enum.Enum):
    """Why data is collected or used.

    The values cover the purposes the paper names (emergency response,
    providing a service, security/logging, comfort) plus the sharing
    destinations Peppet's analysis highlights (law enforcement,
    third parties, research, marketing).
    """

    EMERGENCY_RESPONSE = "emergency_response"
    PROVIDING_SERVICE = "providing_service"
    SECURITY = "security"
    LOGGING = "logging"
    COMFORT = "comfort"
    ENERGY_MANAGEMENT = "energy_management"
    ACCESS_CONTROL = "access_control"
    RESEARCH = "research"
    MARKETING = "marketing"
    LAW_ENFORCEMENT = "law_enforcement"

    @classmethod
    def from_string(cls, value: str) -> "Purpose":
        try:
            return cls(value)
        except ValueError:
            raise SchemaError("unknown purpose %r" % value) from None


@dataclass(frozen=True)
class PurposeInfo:
    """Taxonomy entry: how sensitive a purpose is and who sees the data.

    ``sensitivity`` in [0, 1] drives the IoTA's notification relevance
    model; ``shared_beyond_building`` marks purposes that imply the data
    leaves the building operator (the paper's "whether or not the data
    is shared").
    """

    purpose: Purpose
    description: str
    sensitivity: float
    shared_beyond_building: bool
    benefits_user_directly: bool


PURPOSE_TAXONOMY: Dict[Purpose, PurposeInfo] = {
    info.purpose: info
    for info in (
        PurposeInfo(
            Purpose.EMERGENCY_RESPONSE,
            "locating inhabitants during emergencies",
            sensitivity=0.4,
            shared_beyond_building=False,
            benefits_user_directly=True,
        ),
        PurposeInfo(
            Purpose.PROVIDING_SERVICE,
            "powering a service the user opted into",
            sensitivity=0.3,
            shared_beyond_building=False,
            benefits_user_directly=True,
        ),
        PurposeInfo(
            Purpose.SECURITY,
            "physical security of the building",
            sensitivity=0.5,
            shared_beyond_building=False,
            benefits_user_directly=False,
        ),
        PurposeInfo(
            Purpose.LOGGING,
            "operational logging and troubleshooting",
            sensitivity=0.35,
            shared_beyond_building=False,
            benefits_user_directly=False,
        ),
        PurposeInfo(
            Purpose.COMFORT,
            "adjusting environmental comfort (HVAC, lighting)",
            sensitivity=0.2,
            shared_beyond_building=False,
            benefits_user_directly=True,
        ),
        PurposeInfo(
            Purpose.ENERGY_MANAGEMENT,
            "reducing building energy consumption",
            sensitivity=0.25,
            shared_beyond_building=False,
            benefits_user_directly=False,
        ),
        PurposeInfo(
            Purpose.ACCESS_CONTROL,
            "controlling entry to restricted spaces",
            sensitivity=0.45,
            shared_beyond_building=False,
            benefits_user_directly=True,
        ),
        PurposeInfo(
            Purpose.RESEARCH,
            "research studies on building usage",
            sensitivity=0.6,
            shared_beyond_building=True,
            benefits_user_directly=False,
        ),
        PurposeInfo(
            Purpose.MARKETING,
            "marketing and advertising",
            sensitivity=0.9,
            shared_beyond_building=True,
            benefits_user_directly=False,
        ),
        PurposeInfo(
            Purpose.LAW_ENFORCEMENT,
            "sharing with law enforcement officers",
            sensitivity=0.8,
            shared_beyond_building=True,
            benefits_user_directly=False,
        ),
    )
}


class DataCategory(enum.Enum):
    """Abstract data types: what is collected or can be *inferred*.

    Section IV-B.2: "a user might be more interested in knowing what can
    be inferred from the collected data", e.g. "a room is occupied by
    anyone" rather than "images from camera, logs from WiFi APs".
    """

    LOCATION = "location"
    PRESENCE = "presence"
    OCCUPANCY = "occupancy"
    IDENTITY = "identity"
    ACTIVITY = "activity"
    ENERGY_USE = "energy_use"
    TEMPERATURE = "temperature"
    MEETING_DETAILS = "meeting_details"
    SOCIAL_TIES = "social_ties"

    @classmethod
    def from_string(cls, value: str) -> "DataCategory":
        try:
            return cls(value)
        except ValueError:
            raise SchemaError("unknown data category %r" % value) from None


#: Base sensitivity of each data category, used by the IoTA relevance
#: model and by inference-risk scoring.  Identity and social ties are the
#: most sensitive; ambient temperature the least.
DATA_SENSITIVITY: Dict[DataCategory, float] = {
    DataCategory.LOCATION: 0.7,
    DataCategory.PRESENCE: 0.5,
    DataCategory.OCCUPANCY: 0.4,
    DataCategory.IDENTITY: 1.0,
    DataCategory.ACTIVITY: 0.8,
    DataCategory.ENERGY_USE: 0.3,
    DataCategory.TEMPERATURE: 0.1,
    DataCategory.MEETING_DETAILS: 0.6,
    DataCategory.SOCIAL_TIES: 0.9,
}


class GranularityLevel(enum.Enum):
    """Granularity at which a data category is captured or shared.

    Figure 4's setting options ("fine grained location sensing",
    "coarse grained location sensing", "No location sensing") map to
    :attr:`PRECISE`, :attr:`COARSE`, and :attr:`NONE`.  The intermediate
    levels allow the enforcement engine to negotiate between them.
    """

    PRECISE = "precise"      # exact room / raw reading
    COARSE = "coarse"        # floor-level / bucketed reading
    BUILDING = "building"    # building-level presence only
    AGGREGATE = "aggregate"  # only in k-anonymous aggregates
    NONE = "none"            # not collected / not shared at all

    @property
    def rank(self) -> int:
        """Fineness rank: higher reveals more (none=0 ... precise=4)."""
        order = [
            GranularityLevel.NONE,
            GranularityLevel.AGGREGATE,
            GranularityLevel.BUILDING,
            GranularityLevel.COARSE,
            GranularityLevel.PRECISE,
        ]
        return order.index(self)

    def at_most(self, other: "GranularityLevel") -> bool:
        """Whether this level reveals no more than ``other``."""
        return self.rank <= other.rank

    @classmethod
    def from_string(cls, value: str) -> "GranularityLevel":
        try:
            return cls(value)
        except ValueError:
            raise SchemaError("unknown granularity %r" % value) from None

    @classmethod
    def minimum(cls, a: "GranularityLevel", b: "GranularityLevel") -> "GranularityLevel":
        """The coarser (less revealing) of two levels."""
        return a if a.rank <= b.rank else b


def sensitivity_of(
    category: DataCategory,
    purpose: Optional[Purpose] = None,
    granularity: GranularityLevel = GranularityLevel.PRECISE,
) -> float:
    """Composite sensitivity score in [0, 1] of a data practice.

    Combines the base sensitivity of the data category, the sensitivity
    of the purpose (sharing-heavy purposes dominate), and a granularity
    discount (coarser data is less sensitive).  This single scalar is
    what the IoTA thresholds when deciding whether a practice is worth a
    notification (Section V-B's user-fatigue concern).
    """
    base = DATA_SENSITIVITY[category]
    if purpose is not None:
        info = PURPOSE_TAXONOMY[purpose]
        base = max(base * 0.6 + info.sensitivity * 0.4, base * 0.5)
        if info.shared_beyond_building:
            base = min(1.0, base + 0.2)
        if info.benefits_user_directly:
            base = max(0.0, base - 0.1)
    discount = {
        GranularityLevel.PRECISE: 1.0,
        GranularityLevel.COARSE: 0.7,
        GranularityLevel.BUILDING: 0.45,
        GranularityLevel.AGGREGATE: 0.25,
        GranularityLevel.NONE: 0.0,
    }[granularity]
    return round(base * discount, 6)
