"""Typed policy documents mirroring the paper's Figures 2-4.

Each document class serializes to exactly the JSON structure the paper
shows and parses it back (round-trip safe), validating against the
schemas in :mod:`repro.core.language.schema` on both directions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.language.duration import Duration
from repro.core.language.schema import (
    RESOURCE_POLICY_SCHEMA,
    SERVICE_POLICY_SCHEMA,
    SETTINGS_SCHEMA,
)
from repro.core.language.vocabulary import GranularityLevel, Purpose
from repro.errors import SchemaError


@dataclass(frozen=True)
class ObservationDescription:
    """One entry of an ``observations`` array (Figures 2 and 3)."""

    name: str
    description: str = ""
    granularity: Optional[GranularityLevel] = None
    inferred: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.description:
            data["description"] = self.description
        if self.granularity is not None:
            data["granularity"] = self.granularity.value
        if self.inferred:
            data["inferred"] = list(self.inferred)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObservationDescription":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            granularity=(
                GranularityLevel.from_string(data["granularity"])
                if "granularity" in data
                else None
            ),
            inferred=tuple(data.get("inferred", ())),
        )


@dataclass(frozen=True)
class ResourceDescription:
    """One resource entry of Figure 2's ``resources`` array."""

    name: str
    spatial_name: str
    spatial_type: str
    sensor_type: str
    purposes: Dict[str, str]
    observations: Tuple[ObservationDescription, ...]
    sensor_description: str = ""
    owner_name: str = ""
    owner_more_info: str = ""
    retention: Optional[Duration] = None
    retention_description: str = ""
    resource_id: str = ""
    settings_url: str = ""

    def __post_init__(self) -> None:
        if not self.observations:
            raise SchemaError("resource %r declares no observations" % self.name)
        if not self.purposes:
            raise SchemaError("resource %r declares no purposes" % self.name)

    def to_dict(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {"name": self.name}
        if self.resource_id:
            info["id"] = self.resource_id
        location: Dict[str, Any] = {
            "spatial": {"name": self.spatial_name, "type": self.spatial_type}
        }
        if self.owner_name:
            owner: Dict[str, Any] = {"name": self.owner_name}
            if self.owner_more_info:
                owner["human_description"] = {"more_info": self.owner_more_info}
            location["location_owner"] = owner
        sensor: Dict[str, Any] = {"type": self.sensor_type}
        if self.sensor_description:
            sensor["description"] = self.sensor_description
        data: Dict[str, Any] = {
            "info": info,
            "context": {"location": location},
            "sensor": sensor,
            "purpose": {
                key: {"description": description}
                for key, description in self.purposes.items()
            },
            "observations": [obs.to_dict() for obs in self.observations],
        }
        if self.retention is not None:
            retention: Dict[str, Any] = {"duration": self.retention.isoformat()}
            if self.retention_description:
                retention["description"] = self.retention_description
            data["retention"] = retention
        if self.settings_url:
            data["settings_url"] = self.settings_url
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceDescription":
        location = data["context"]["location"]
        owner = location.get("location_owner", {})
        purposes = {}
        for key, value in data["purpose"].items():
            if isinstance(value, str):
                purposes[key] = value
            else:
                purposes[key] = value.get("description", "")
        retention = data.get("retention")
        return cls(
            name=data["info"]["name"],
            resource_id=data["info"].get("id", ""),
            spatial_name=location["spatial"]["name"],
            spatial_type=location["spatial"]["type"],
            owner_name=owner.get("name", ""),
            owner_more_info=owner.get("human_description", {}).get("more_info", ""),
            sensor_type=data["sensor"]["type"],
            sensor_description=data["sensor"].get("description", ""),
            purposes=purposes,
            observations=tuple(
                ObservationDescription.from_dict(obs) for obs in data["observations"]
            ),
            retention=Duration.parse(retention["duration"]) if retention else None,
            retention_description=(retention or {}).get("description", ""),
            settings_url=data.get("settings_url", ""),
        )

    def named_purposes(self) -> List[Purpose]:
        """The taxonomy purposes this resource declares.

        Purpose keys outside the taxonomy (free-form purposes, e.g.
        ``"emergency response"`` spelled with a space as in Figure 2)
        are normalized by replacing spaces with underscores before
        lookup; truly unknown keys are skipped.
        """
        result = []
        for key in self.purposes:
            normalized = key.strip().lower().replace(" ", "_")
            try:
                result.append(Purpose(normalized))
            except ValueError:
                continue
        return result


class ResourcePolicyDocument:
    """Figure 2: the machine-readable policy an IRR advertises."""

    def __init__(self, resources: List[ResourceDescription]) -> None:
        if not resources:
            raise SchemaError("a resource policy document needs >= 1 resource")
        self.resources = list(resources)

    def to_dict(self) -> Dict[str, Any]:
        data = {"resources": [r.to_dict() for r in self.resources]}
        RESOURCE_POLICY_SCHEMA.validate(data)
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourcePolicyDocument":
        RESOURCE_POLICY_SCHEMA.validate(data)
        return cls([ResourceDescription.from_dict(r) for r in data["resources"]])

    @classmethod
    def from_json(cls, text: str) -> "ResourcePolicyDocument":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError("invalid JSON: %s" % exc) from None
        return cls.from_dict(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourcePolicyDocument):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return "ResourcePolicyDocument(%d resources)" % len(self.resources)


class ServicePolicyDocument:
    """Figure 3: what a service consumes and why."""

    def __init__(
        self,
        service_id: str,
        observations: List[ObservationDescription],
        purposes: Dict[str, str],
        developer_name: str = "",
        third_party: bool = False,
    ) -> None:
        if not service_id:
            raise SchemaError("service_id must be non-empty")
        if not observations:
            raise SchemaError("a service policy needs >= 1 observation")
        if not purposes:
            raise SchemaError("a service policy needs >= 1 purpose")
        self.service_id = service_id
        self.observations = list(observations)
        self.purposes = dict(purposes)
        self.developer_name = developer_name
        self.third_party = third_party

    def to_dict(self) -> Dict[str, Any]:
        purpose: Dict[str, Any] = {
            key: {"description": description}
            for key, description in self.purposes.items()
        }
        purpose["service_id"] = self.service_id
        data: Dict[str, Any] = {
            "observations": [obs.to_dict() for obs in self.observations],
            "purpose": purpose,
        }
        if self.developer_name or self.third_party:
            data["developer"] = {
                "name": self.developer_name,
                "third_party": self.third_party,
            }
        SERVICE_POLICY_SCHEMA.validate(data)
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServicePolicyDocument":
        SERVICE_POLICY_SCHEMA.validate(data)
        purposes = {}
        service_id = ""
        for key, value in data["purpose"].items():
            if key == "service_id":
                service_id = value
            elif isinstance(value, str):
                purposes[key] = value
            else:
                purposes[key] = value.get("description", "")
        developer = data.get("developer", {})
        return cls(
            service_id=service_id,
            observations=[
                ObservationDescription.from_dict(obs) for obs in data["observations"]
            ],
            purposes=purposes,
            developer_name=developer.get("name", ""),
            third_party=developer.get("third_party", False),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServicePolicyDocument":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError("invalid JSON: %s" % exc) from None
        return cls.from_dict(data)

    def named_purposes(self) -> List[Purpose]:
        result = []
        for key in self.purposes:
            normalized = key.strip().lower().replace(" ", "_")
            try:
                result.append(Purpose(normalized))
            except ValueError:
                continue
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServicePolicyDocument):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return "ServicePolicyDocument(service_id=%r)" % self.service_id


@dataclass(frozen=True)
class SettingOptionDescription:
    """One option inside a ``select`` group (Figure 4).

    ``on`` is the opaque actuation string the paper shows (e.g.
    ``"wifi=opt-in"``); ``granularity`` is our machine-interpretable
    annotation letting the IoTA rank options without parsing ``on``.
    """

    description: str
    on: str
    granularity: Optional[GranularityLevel] = None
    key: str = ""
    """Stable identifier used when submitting a selection back to the
    building; empty for hand-authored documents (selection then falls
    back to positional option keys)."""

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"description": self.description, "on": self.on}
        if self.granularity is not None:
            data["granularity"] = self.granularity.value
        if self.key:
            data["key"] = self.key
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SettingOptionDescription":
        return cls(
            description=data["description"],
            on=data["on"],
            granularity=(
                GranularityLevel.from_string(data["granularity"])
                if "granularity" in data
                else None
            ),
            key=data.get("key", ""),
        )


class SettingsDocument:
    """Figure 4: the privacy settings offered to users."""

    def __init__(self, groups: List[List[SettingOptionDescription]], names: Optional[List[str]] = None) -> None:
        if not groups or any(not group for group in groups):
            raise SchemaError("settings document needs non-empty select groups")
        self.groups = [list(group) for group in groups]
        self.names = list(names) if names is not None else ["" for _ in groups]
        if len(self.names) != len(self.groups):
            raise SchemaError("names and groups must be the same length")

    def to_dict(self) -> Dict[str, Any]:
        settings = []
        for name, group in zip(self.names, self.groups):
            entry: Dict[str, Any] = {"select": [opt.to_dict() for opt in group]}
            if name:
                entry["name"] = name
            settings.append(entry)
        data = {"settings": settings}
        SETTINGS_SCHEMA.validate(data)
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SettingsDocument":
        SETTINGS_SCHEMA.validate(data)
        groups = []
        names = []
        for entry in data["settings"]:
            groups.append(
                [SettingOptionDescription.from_dict(opt) for opt in entry["select"]]
            )
            names.append(entry.get("name", ""))
        return cls(groups, names)

    @classmethod
    def from_json(cls, text: str) -> "SettingsDocument":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError("invalid JSON: %s" % exc) from None
        return cls.from_dict(data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SettingsDocument):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return "SettingsDocument(%d groups)" % len(self.groups)
