"""A JSON-Schema (draft-4 subset) validator, implemented from scratch.

The paper represents its language with "a JSON-Schema v4".  We implement
the subset the language needs -- ``type``, ``properties``, ``required``,
``items``, ``enum``, ``pattern``, ``minimum``/``maximum``,
``minItems``/``minLength``, ``additionalProperties``, ``oneOf`` -- so
documents can be validated without a third-party dependency.

Use :func:`validate` directly or wrap a schema dict in :class:`Schema`.
Validation errors carry a JSON-pointer-style path to the offending
element.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.errors import SchemaError

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class ValidationError(SchemaError):
    """Schema validation failure, with the path to the bad element."""

    def __init__(self, message: str, path: str) -> None:
        super().__init__("%s (at %s)" % (message, path or "/"))
        self.path = path or "/"
        self.reason = message


def _check_type(value: Any, expected: Any, path: str) -> None:
    expected_list = expected if isinstance(expected, list) else [expected]
    for type_name in expected_list:
        if type_name not in _TYPE_CHECKS:
            raise SchemaError("schema uses unknown type %r" % type_name)
        if _TYPE_CHECKS[type_name](value):
            return
    raise ValidationError(
        "expected type %s, got %s" % ("/".join(expected_list), type(value).__name__),
        path,
    )


def validate(instance: Any, schema: Dict[str, Any], path: str = "") -> None:
    """Validate ``instance`` against ``schema``.

    Raises :class:`ValidationError` on the first violation found.
    ``path`` is the JSON-pointer prefix used in error messages.
    """
    if not isinstance(schema, dict):
        raise SchemaError("schema must be a dict, got %r" % (schema,))

    if "enum" in schema:
        if instance not in schema["enum"]:
            raise ValidationError(
                "%r not in enum %r" % (instance, schema["enum"]), path
            )

    if "type" in schema:
        _check_type(instance, schema["type"], path)

    if "oneOf" in schema:
        matches = 0
        errors: List[str] = []
        for candidate in schema["oneOf"]:
            try:
                validate(instance, candidate, path)
                matches += 1
            except ValidationError as exc:
                errors.append(exc.reason)
        if matches != 1:
            raise ValidationError(
                "matched %d of oneOf branches (%s)" % (matches, "; ".join(errors)),
                path,
            )

    if isinstance(instance, str):
        if "pattern" in schema and re.search(schema["pattern"], instance) is None:
            raise ValidationError(
                "%r does not match pattern %r" % (instance, schema["pattern"]), path
            )
        if "minLength" in schema and len(instance) < schema["minLength"]:
            raise ValidationError(
                "string shorter than minLength %d" % schema["minLength"], path
            )
        if "maxLength" in schema and len(instance) > schema["maxLength"]:
            raise ValidationError(
                "string longer than maxLength %d" % schema["maxLength"], path
            )

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise ValidationError(
                "%r below minimum %r" % (instance, schema["minimum"]), path
            )
        if "maximum" in schema and instance > schema["maximum"]:
            raise ValidationError(
                "%r above maximum %r" % (instance, schema["maximum"]), path
            )

    if isinstance(instance, dict):
        properties: Dict[str, Any] = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in instance:
                raise ValidationError("missing required property %r" % key, path)
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child_path = "%s/%s" % (path, key)
            if key in properties:
                validate(value, properties[key], child_path)
            elif isinstance(additional, dict):
                validate(value, additional, child_path)
            elif additional is False:
                raise ValidationError("unexpected property %r" % key, path)

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise ValidationError(
                "array shorter than minItems %d" % schema["minItems"], path
            )
        if "maxItems" in schema and len(instance) > schema["maxItems"]:
            raise ValidationError(
                "array longer than maxItems %d" % schema["maxItems"], path
            )
        if "items" in schema:
            for index, item in enumerate(instance):
                validate(item, schema["items"], "%s/%d" % (path, index))


class Schema:
    """A reusable schema with ``is_valid`` / ``validate`` helpers."""

    def __init__(self, definition: Dict[str, Any], title: Optional[str] = None) -> None:
        if not isinstance(definition, dict):
            raise SchemaError("schema definition must be a dict")
        self.definition = definition
        self.title = title or definition.get("title", "schema")

    def validate(self, instance: Any) -> None:
        validate(instance, self.definition)

    def is_valid(self, instance: Any) -> bool:
        try:
            self.validate(instance)
            return True
        except ValidationError:
            return False

    def errors(self, instance: Any) -> List[str]:
        """Human-readable violations (currently first-failure only)."""
        try:
            self.validate(instance)
            return []
        except ValidationError as exc:
            return [str(exc)]

    def __repr__(self) -> str:
        return "Schema(%r)" % self.title


# ----------------------------------------------------------------------
# Schemas for the language's three document kinds (Figures 2-4).
# ----------------------------------------------------------------------

_HUMAN_DESCRIPTION = {
    "type": "object",
    "properties": {"more_info": {"type": "string"}},
}

_SPATIAL = {
    "type": "object",
    "required": ["name", "type"],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "type": {
            "type": "string",
            "enum": ["Campus", "Building", "Floor", "Zone", "Corridor", "Room"],
        },
        "id": {"type": "string"},
    },
}

_CONTEXT = {
    "type": "object",
    "required": ["location"],
    "properties": {
        "location": {
            "type": "object",
            "required": ["spatial"],
            "properties": {
                "spatial": _SPATIAL,
                "location_owner": {
                    "type": "object",
                    "required": ["name"],
                    "properties": {
                        "name": {"type": "string"},
                        "human_description": _HUMAN_DESCRIPTION,
                    },
                },
            },
        },
        "contact": {"type": "string"},
        "data_security": {"type": "string"},
    },
}

_SENSOR = {
    "type": "object",
    "required": ["type"],
    "properties": {
        "type": {"type": "string", "minLength": 1},
        "description": {"type": "string"},
        "subsystem": {"type": "string"},
    },
}

_PURPOSE_MAP = {
    "type": "object",
    "additionalProperties": {
        "oneOf": [
            {
                "type": "object",
                "properties": {"description": {"type": "string"}},
            },
            {"type": "string"},
        ]
    },
}

_OBSERVATION = {
    "type": "object",
    "required": ["name"],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "description": {"type": "string"},
        "granularity": {
            "type": "string",
            "enum": ["precise", "coarse", "building", "aggregate", "none"],
        },
        "inferred": {"type": "array", "items": {"type": "string"}},
    },
}

_RETENTION = {
    "type": "object",
    "required": ["duration"],
    "properties": {
        "duration": {"type": "string", "pattern": r"^P(\d+[YMWD])*(T(\d+[HMS])+)?$"},
        "description": {"type": "string"},
    },
}

#: Schema of Figure 2: a list of resources with context, sensor,
#: purpose, observations, and retention.
RESOURCE_POLICY_SCHEMA = Schema(
    {
        "title": "resource-policy",
        "type": "object",
        "required": ["resources"],
        "properties": {
            "resources": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["info", "context", "sensor", "purpose", "observations"],
                    "properties": {
                        "info": {
                            "type": "object",
                            "required": ["name"],
                            "properties": {
                                "name": {"type": "string", "minLength": 1},
                                "id": {"type": "string"},
                            },
                        },
                        "context": _CONTEXT,
                        "sensor": _SENSOR,
                        "purpose": _PURPOSE_MAP,
                        "observations": {
                            "type": "array",
                            "minItems": 1,
                            "items": _OBSERVATION,
                        },
                        "retention": _RETENTION,
                        "settings_url": {"type": "string"},
                    },
                },
            }
        },
    }
)

#: Schema of Figure 3: a service's observations and purpose.
SERVICE_POLICY_SCHEMA = Schema(
    {
        "title": "service-policy",
        "type": "object",
        "required": ["observations", "purpose"],
        "properties": {
            "observations": {
                "type": "array",
                "minItems": 1,
                "items": _OBSERVATION,
            },
            "purpose": {
                "type": "object",
                "required": ["service_id"],
                "properties": {"service_id": {"type": "string", "minLength": 1}},
                "additionalProperties": {
                    "oneOf": [
                        {
                            "type": "object",
                            "properties": {"description": {"type": "string"}},
                        },
                        {"type": "string"},
                    ]
                },
            },
            "developer": {
                "type": "object",
                "properties": {
                    "name": {"type": "string"},
                    "third_party": {"type": "boolean"},
                },
            },
        },
    }
)

#: Schema of Figure 4: selectable privacy settings.
SETTINGS_SCHEMA = Schema(
    {
        "title": "settings",
        "type": "object",
        "required": ["settings"],
        "properties": {
            "settings": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["select"],
                    "properties": {
                        "name": {"type": "string"},
                        "select": {
                            "type": "array",
                            "minItems": 1,
                            "items": {
                                "type": "object",
                                "required": ["description", "on"],
                                "properties": {
                                    "description": {"type": "string", "minLength": 1},
                                    "on": {"type": "string", "minLength": 1},
                                    "key": {"type": "string", "minLength": 1},
                                    "granularity": {
                                        "type": "string",
                                        "enum": [
                                            "precise",
                                            "coarse",
                                            "building",
                                            "aggregate",
                                            "none",
                                        ],
                                    },
                                },
                            },
                        },
                    },
                },
            }
        },
    }
)
