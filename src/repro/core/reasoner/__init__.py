"""Policy reasoning: matching, conflicts, resolution, indexing.

The paper requires that conflicts between building policies and user
preferences "should be detected by the smart building management system
(e.g., with the help of a policy reasoner) which is in charge of
enforcing the policies by resolving these conflicts while informing
users about it" (Section III-B), and that enforcement be optimized "so
that the overhead of privacy compliance is minimized" (Section V-C).

- :mod:`repro.core.reasoner.matcher` -- which rules govern a request.
- :mod:`repro.core.reasoner.conflicts` -- static and per-request
  conflict detection.
- :mod:`repro.core.reasoner.resolution` -- strategies that combine the
  building's and the user's stances into one decision.
- :mod:`repro.core.reasoner.index` -- candidate-rule indexes that make
  matching sublinear in the number of rules.
"""

from repro.core.reasoner.analysis import Finding, Severity, analyze_policies
from repro.core.reasoner.conflicts import Conflict, ConflictKind, detect_conflicts
from repro.core.reasoner.index import LinearRuleStore, PolicyIndex, RuleStore
from repro.core.reasoner.matcher import MatchResult, PolicyMatcher
from repro.core.reasoner.resolution import (
    Resolution,
    ResolutionStrategy,
    resolve,
)

__all__ = [
    "Finding",
    "Severity",
    "analyze_policies",
    "PolicyMatcher",
    "MatchResult",
    "Conflict",
    "ConflictKind",
    "detect_conflicts",
    "Resolution",
    "ResolutionStrategy",
    "resolve",
    "RuleStore",
    "LinearRuleStore",
    "PolicyIndex",
]
