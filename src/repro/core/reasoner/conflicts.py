"""Conflict detection between building policies and user preferences.

"It is possible that user preferences conflict with the existing
building policies (e.g., Policy 2 and Preference 2).  These conflicts
should be detected by the smart building management system (e.g., with
the help of a policy reasoner)." (Section III-B.)

Detection is *static*: it compares rule scopes, not a concrete request,
so the building can warn a user the moment she submits a preference.
Because arbitrary conditions cannot be compared symbolically, two rules
whose explicit selectors overlap are reported as conflicting even if
their conditions might never both hold -- a sound over-approximation
(no missed conflicts, possibly spurious ones).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.spatial.model import SpatialModel


class ConflictKind(enum.Enum):
    """How a policy and a preference disagree."""

    HARD = "hard"
    """A mandatory building policy overlaps an opt-out preference: the
    preference cannot be honoured (Policy 2 vs Preference 2)."""

    EFFECT = "effect"
    """A non-mandatory allowing policy overlaps an opt-out preference:
    resolvable by denying (user wins) or allowing (building wins)."""

    GRANULARITY = "granularity"
    """Both sides allow, but the building collects finer data than the
    preference's cap: resolvable by degrading granularity."""


@dataclass(frozen=True)
class Conflict:
    """One detected disagreement."""

    kind: ConflictKind
    policy: BuildingPolicy
    preference: UserPreference

    @property
    def negotiable(self) -> bool:
        return self.kind is not ConflictKind.HARD

    def describe(self) -> str:
        return "%s conflict: policy %r vs preference %r of user %s" % (
            self.kind.value,
            self.policy.policy_id,
            self.preference.preference_id,
            self.preference.user_id,
        )


def _scopes_overlap(
    policy: BuildingPolicy,
    preference: UserPreference,
    spatial: Optional[SpatialModel],
) -> bool:
    """Whether the two rules can govern a common request.

    Empty selectors are wildcards; spaces overlap when either side is a
    wildcard or some pair of selected spaces overlaps in the model.
    """
    if policy.categories and preference.categories:
        if not set(policy.categories) & set(preference.categories):
            return False
    if not set(policy.phases) & set(preference.phases):
        return False
    if policy.purposes and preference.purposes:
        if not set(policy.purposes) & set(preference.purposes):
            return False
    if policy.space_ids and preference.space_ids:
        if spatial is None:
            if not set(policy.space_ids) & set(preference.space_ids):
                return False
        else:
            overlapping = any(
                a in spatial and b in spatial and spatial.overlap(a, b)
                for a in policy.space_ids
                for b in preference.space_ids
            )
            literal = bool(set(policy.space_ids) & set(preference.space_ids))
            if not overlapping and not literal:
                return False
    return True


def detect_conflicts(
    policies: Sequence[BuildingPolicy],
    preferences: Sequence[UserPreference],
    context: Optional[EvaluationContext] = None,
) -> List[Conflict]:
    """All conflicts between ``policies`` and ``preferences``.

    Only *allowing* policies can conflict with preferences: a policy
    that itself denies a practice can never clash with a user objecting
    to it, and a preference that allows can only clash via granularity.
    """
    spatial = context.spatial if context is not None else None
    conflicts: List[Conflict] = []
    for policy in policies:
        if policy.effect is not Effect.ALLOW:
            continue
        for preference in preferences:
            if not _scopes_overlap(policy, preference, spatial):
                continue
            conflict = _classify(policy, preference)
            if conflict is not None:
                conflicts.append(conflict)
    return conflicts


def _classify(policy: BuildingPolicy, preference: UserPreference) -> Optional[Conflict]:
    if preference.is_opt_out:
        kind = ConflictKind.HARD if policy.mandatory else ConflictKind.EFFECT
        return Conflict(kind=kind, policy=policy, preference=preference)
    if policy.granularity.rank > preference.granularity_cap.rank:
        return Conflict(
            kind=ConflictKind.GRANULARITY, policy=policy, preference=preference
        )
    return None


def conflicts_for_user(
    policies: Sequence[BuildingPolicy],
    preferences: Sequence[UserPreference],
    user_id: str,
    context: Optional[EvaluationContext] = None,
) -> List[Conflict]:
    """Conflicts involving only ``user_id``'s preferences."""
    mine = [p for p in preferences if p.user_id == user_id]
    return detect_conflicts(policies, mine, context)


def detect_conflicts_by_user(
    policies: Sequence[BuildingPolicy],
    preferences: Sequence[UserPreference],
    context: Optional[EvaluationContext] = None,
    kinds: Optional[Sequence[ConflictKind]] = None,
) -> Dict[str, List[Conflict]]:
    """Whole-registry static driver: all-pairs conflicts grouped by user.

    This promotes the pairwise runtime check (one building, one user,
    the moment a preference is submitted) to a registry-wide audit: the
    policy linter runs it over every stored preference before any
    request is served, so self-contradictory advertisement sets are
    caught ahead of time.  ``kinds`` restricts the report (e.g. only
    ``ConflictKind.HARD`` for the lint gate); users without conflicts
    are omitted.
    """
    wanted = set(kinds) if kinds is not None else None
    by_user: Dict[str, List[Conflict]] = {}
    for conflict in detect_conflicts(policies, preferences, context):
        if wanted is not None and conflict.kind not in wanted:
            continue
        by_user.setdefault(conflict.preference.user_id, []).append(conflict)
    return by_user
