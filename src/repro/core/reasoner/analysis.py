"""Static analysis of a building's policy set (Section V-A).

The paper's first open challenge is policy specification: admins write
policies by hand, and a bad set fails silently (a sensor nobody
authorized, a retention nobody bounded, two policies that can never
both be satisfied).  This module lints a policy set the way a compiler
lints code, producing :class:`Finding` objects the admin console can
display before activation.

Checks implemented:

- ``shadowed-policy``: an ALLOW policy whose whole scope is covered by
  a same-or-higher-priority DENY policy (it can never take effect).
- ``unbounded-retention``: a policy authorizes collection of
  person-linked data with no retention.
- ``unauthorized-sensor``: a deployed sensor type no policy covers
  (all its data will be dropped at capture).
- ``unused-policy``: a policy naming sensor types that are not
  deployed anywhere.
- ``redundant-policy``: two ALLOW policies with identical scope.
- ``over-collection``: a policy collects at finer granularity than any
  purpose it declares plausibly needs (e.g. PRECISE identity for
  energy management).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.language.vocabulary import (
    DataCategory,
    GranularityLevel,
    Purpose,
)
from repro.core.policy.base import Effect
from repro.core.policy.building import BuildingPolicy


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One analysis finding."""

    check: str
    severity: Severity
    policy_ids: Tuple[str, ...]
    message: str

    def __str__(self) -> str:
        return "[%s] %s: %s" % (self.severity.value, self.check, self.message)


#: The finest granularity each purpose plausibly needs.  Collection
#: finer than this for *only* that purpose is flagged as over-collection.
_PURPOSE_NEEDS: Dict[Purpose, GranularityLevel] = {
    Purpose.EMERGENCY_RESPONSE: GranularityLevel.PRECISE,
    Purpose.PROVIDING_SERVICE: GranularityLevel.PRECISE,
    Purpose.SECURITY: GranularityLevel.PRECISE,
    Purpose.ACCESS_CONTROL: GranularityLevel.PRECISE,
    Purpose.LOGGING: GranularityLevel.COARSE,
    Purpose.COMFORT: GranularityLevel.COARSE,
    Purpose.ENERGY_MANAGEMENT: GranularityLevel.AGGREGATE,
    Purpose.RESEARCH: GranularityLevel.AGGREGATE,
    Purpose.MARKETING: GranularityLevel.AGGREGATE,
    Purpose.LAW_ENFORCEMENT: GranularityLevel.PRECISE,
}


def _scope_key(policy: BuildingPolicy) -> Tuple:
    return (
        frozenset(policy.categories),
        frozenset(policy.sensor_types),
        frozenset(policy.space_ids),
        frozenset(policy.phases),
        frozenset(policy.purposes),
    )


def _covers(denier: BuildingPolicy, allower: BuildingPolicy) -> bool:
    """Whether ``denier``'s scope includes all of ``allower``'s.

    Empty selectors are wildcards; a wildcard covers anything, and a
    non-empty selector only covers a non-empty subset.
    """

    def selector_covers(outer: tuple, inner: tuple) -> bool:
        if not outer:
            return True
        if not inner:
            return False
        return set(inner) <= set(outer)

    return (
        selector_covers(denier.categories, allower.categories)
        and selector_covers(denier.sensor_types, allower.sensor_types)
        and selector_covers(denier.space_ids, allower.space_ids)
        and selector_covers(denier.purposes, allower.purposes)
        and set(allower.phases) <= set(denier.phases)
    )


def scope_covers(outer: BuildingPolicy, inner: BuildingPolicy) -> bool:
    """Public face of :func:`_covers` for the static analyzers.

    True when every request ``inner`` governs is also governed by
    ``outer`` (selector-wise; conditions are ignored, a sound
    over-approximation).
    """
    return _covers(outer, inner)


def analyze_policies(
    policies: Sequence[BuildingPolicy],
    deployed_sensor_types: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint a policy set; returns findings sorted by severity.

    ``deployed_sensor_types`` enables the unauthorized-sensor and
    unused-policy checks; pass the set of sensor types actually
    installed in the building.
    """
    findings: List[Finding] = []

    allowers = [p for p in policies if p.effect is Effect.ALLOW]
    deniers = [p for p in policies if p.effect is Effect.DENY]

    # shadowed-policy
    for allower in allowers:
        for denier in deniers:
            if denier.priority >= allower.priority and _covers(denier, allower):
                findings.append(
                    Finding(
                        check="shadowed-policy",
                        severity=Severity.ERROR,
                        policy_ids=(allower.policy_id, denier.policy_id),
                        message="%r can never take effect: %r denies its whole scope"
                        % (allower.policy_id, denier.policy_id),
                    )
                )

    # unbounded-retention
    for policy in allowers:
        if policy.collects_personal_data and policy.retention is None:
            capture_phases = {p.value for p in policy.phases} & {"capture", "storage"}
            if capture_phases:
                findings.append(
                    Finding(
                        check="unbounded-retention",
                        severity=Severity.WARNING,
                        policy_ids=(policy.policy_id,),
                        message="%r collects personal data with no retention bound"
                        % policy.policy_id,
                    )
                )

    # redundant-policy
    seen: Dict[Tuple, str] = {}
    for policy in allowers:
        key = _scope_key(policy)
        if key in seen:
            findings.append(
                Finding(
                    check="redundant-policy",
                    severity=Severity.INFO,
                    policy_ids=(seen[key], policy.policy_id),
                    message="%r and %r have identical scope"
                    % (seen[key], policy.policy_id),
                )
            )
        else:
            seen[key] = policy.policy_id

    # over-collection
    for policy in allowers:
        if not policy.purposes or not policy.collects_personal_data:
            continue
        needed = max(
            (_PURPOSE_NEEDS.get(purpose, GranularityLevel.PRECISE) for purpose in policy.purposes),
            key=lambda g: g.rank,
        )
        if policy.granularity.rank > needed.rank:
            findings.append(
                Finding(
                    check="over-collection",
                    severity=Severity.WARNING,
                    policy_ids=(policy.policy_id,),
                    message="%r collects at %s but its purposes need at most %s"
                    % (policy.policy_id, policy.granularity.value, needed.value),
                )
            )

    # deployment cross-checks
    if deployed_sensor_types is not None:
        authorized: Set[str] = set()
        for policy in allowers:
            if policy.sensor_types:
                authorized |= set(policy.sensor_types)
            else:
                # A wildcard sensor selector authorizes everything it
                # governs; treat as covering all deployed types.
                authorized |= set(deployed_sensor_types)
        for sensor_type in sorted(deployed_sensor_types - authorized):
            findings.append(
                Finding(
                    check="unauthorized-sensor",
                    severity=Severity.WARNING,
                    policy_ids=(),
                    message="deployed sensor type %r is covered by no policy; "
                    "all its data will be dropped at capture" % sensor_type,
                )
            )
        for policy in policies:
            missing = set(policy.sensor_types) - deployed_sensor_types
            if policy.sensor_types and missing == set(policy.sensor_types):
                findings.append(
                    Finding(
                        check="unused-policy",
                        severity=Severity.INFO,
                        policy_ids=(policy.policy_id,),
                        message="%r only names sensor types that are not deployed"
                        % policy.policy_id,
                    )
                )

    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
    findings.sort(key=lambda f: (order[f.severity], f.check, f.policy_ids))
    return findings


def errors_only(findings: Sequence[Finding]) -> List[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]
