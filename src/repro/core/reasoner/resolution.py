"""Resolution: combining the building's and the user's stances.

The building "is in charge of enforcing the policies by resolving these
conflicts while informing users about it through the personal privacy
assistant" (Section III-B).  Three strategies are provided; NEGOTIATE is
the paper's intended behaviour (preferences "might be partially or
completely met"), the other two are ablation baselines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DataRequest, Effect
from repro.core.reasoner.matcher import MatchResult


class ResolutionStrategy(enum.Enum):
    """How to settle a building-vs-user disagreement."""

    BUILDING_WINS = "building_wins"
    """The building's policies prevail; objecting users are notified."""

    USER_WINS = "user_wins"
    """User opt-outs always prevail, even over mandatory policies."""

    NEGOTIATE = "negotiate"
    """The paper's behaviour: mandatory policies prevail (with user
    notification); otherwise user opt-outs are honoured and granularity
    is degraded to the strictest cap both sides accept."""


@dataclass(frozen=True)
class Resolution:
    """The outcome of resolving one request.

    ``granularity`` is meaningful only when ``effect`` is ALLOW: it is
    the finest granularity at which the request may proceed, never finer
    than what was requested.  ``notify_user`` is set when the outcome
    overrides the subject's stated preference, so the IoTA can inform
    her (step 6/7 of Figure 1).
    """

    effect: Effect
    granularity: GranularityLevel
    policy_ids: Tuple[str, ...] = ()
    preference_ids: Tuple[str, ...] = ()
    notify_user: bool = False
    reasons: Tuple[str, ...] = ()

    @property
    def allowed(self) -> bool:
        return self.effect is Effect.ALLOW

    @property
    def degraded(self) -> bool:
        """Whether the grant is at a coarser granularity than requested."""
        return self.allowed and bool(
            [r for r in self.reasons if r.startswith("degraded")]
        )


def _deny(
    match: MatchResult, reasons: List[str], notify: bool = False
) -> Resolution:
    return Resolution(
        effect=Effect.DENY,
        granularity=GranularityLevel.NONE,
        policy_ids=tuple(p.policy_id for p in match.policies),
        preference_ids=tuple(p.preference_id for p in match.preferences),
        notify_user=notify,
        reasons=tuple(reasons),
    )


def _allow(
    match: MatchResult,
    granularity: GranularityLevel,
    reasons: List[str],
    notify: bool = False,
) -> Resolution:
    if granularity is GranularityLevel.NONE:
        return _deny(match, reasons + ["granularity degraded to none"], notify)
    return Resolution(
        effect=Effect.ALLOW,
        granularity=granularity,
        policy_ids=tuple(p.policy_id for p in match.policies),
        preference_ids=tuple(p.preference_id for p in match.preferences),
        notify_user=notify,
        reasons=tuple(reasons),
    )


def _building_granularity(match: MatchResult) -> GranularityLevel:
    """The finest granularity any allowing policy authorizes."""
    return max(
        (p.granularity for p in match.allowing_policies),
        key=lambda g: g.rank,
    )


def _user_cap(match: MatchResult) -> GranularityLevel:
    """The strictest cap across the subject's applicable preferences.

    A DENY preference caps at NONE.  With no applicable preferences the
    user imposes no cap (PRECISE).
    """
    if not match.preferences:
        return GranularityLevel.PRECISE
    return min(
        (p.permitted_granularity() for p in match.preferences),
        key=lambda g: g.rank,
    )


def resolve(
    match: MatchResult,
    strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
) -> Resolution:
    """Resolve one matched request into a final decision.

    Invariants (property-tested):

    - a denying building policy always denies, under every strategy;
    - without building authorization the request is denied (the
      building is default-deny: it only does what a policy allows);
    - the granted granularity never exceeds the requested granularity;
    - under NEGOTIATE and USER_WINS, the granted granularity never
      exceeds the user's cap unless a mandatory policy forces it
      (NEGOTIATE) -- and then ``notify_user`` is set.
    """
    request = match.request

    if match.denying_policies:
        return _deny(
            match,
            ["denied by building policy %s" % match.denying_policies[0].policy_id],
        )
    if not match.has_building_authorization:
        return _deny(match, ["no building policy authorizes this practice"])

    building_granularity = _building_granularity(match)
    requested = request.granularity
    base = GranularityLevel.minimum(building_granularity, requested)
    user_cap = _user_cap(match)
    user_objects = user_cap.rank < base.rank
    mandatory = bool(match.mandatory_policies)

    if strategy is ResolutionStrategy.BUILDING_WINS:
        reasons = ["building policy grants %s" % base.value]
        if user_objects:
            reasons.append("user preference overridden (building wins)")
        return _allow(match, base, reasons, notify=user_objects)

    if strategy is ResolutionStrategy.USER_WINS:
        if match.user_objects:
            return _deny(
                match,
                [
                    "user preference %s denies"
                    % match.denying_preferences[0].preference_id
                ],
            )
        granted = GranularityLevel.minimum(base, user_cap)
        reasons = ["granted at %s" % granted.value]
        if granted.rank < base.rank:
            reasons.append("degraded to user cap %s" % user_cap.value)
        return _allow(match, granted, reasons)

    # NEGOTIATE (the paper's behaviour).
    if mandatory and user_objects:
        reasons = [
            "mandatory policy %s prevails over user preference"
            % match.mandatory_policies[0].policy_id,
            "user notified of unresolvable conflict",
        ]
        return _allow(match, base, reasons, notify=True)
    if match.user_objects:
        return _deny(
            match,
            [
                "user preference %s denies (negotiate honours opt-out)"
                % match.denying_preferences[0].preference_id
            ],
        )
    granted = GranularityLevel.minimum(base, user_cap)
    reasons = ["granted at %s" % granted.value]
    notify = False
    if granted.rank < base.rank:
        reasons.append("degraded to user cap %s" % user_cap.value)
    return _allow(match, granted, reasons, notify=notify)
