"""Request-level matching of policies and preferences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.policy.base import DataRequest, Effect
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.index import LinearRuleStore, RuleStore


@dataclass
class MatchResult:
    """The rules that govern one request."""

    request: DataRequest
    policies: List[BuildingPolicy] = field(default_factory=list)
    preferences: List[UserPreference] = field(default_factory=list)

    @property
    def allowing_policies(self) -> List[BuildingPolicy]:
        return [p for p in self.policies if p.effect is Effect.ALLOW]

    @property
    def denying_policies(self) -> List[BuildingPolicy]:
        return [p for p in self.policies if p.effect is Effect.DENY]

    @property
    def mandatory_policies(self) -> List[BuildingPolicy]:
        return [p for p in self.policies if p.mandatory]

    @property
    def denying_preferences(self) -> List[UserPreference]:
        return [p for p in self.preferences if p.effect is Effect.DENY]

    @property
    def allowing_preferences(self) -> List[UserPreference]:
        return [p for p in self.preferences if p.effect is Effect.ALLOW]

    @property
    def has_building_authorization(self) -> bool:
        """Whether any building policy authorizes the practice."""
        return bool(self.allowing_policies)

    @property
    def user_objects(self) -> bool:
        """Whether the subject's preferences object to the practice."""
        return bool(self.denying_preferences)


class PolicyMatcher:
    """Evaluates which rules in a store apply to a request.

    The store decides the candidate set (linear scan or index); the
    matcher applies the precise ``applies_to`` predicate on candidates.
    """

    def __init__(
        self,
        store: Optional[RuleStore] = None,
        context: Optional[EvaluationContext] = None,
    ) -> None:
        self.store = store if store is not None else LinearRuleStore()
        self.context = context if context is not None else EvaluationContext()

    def match(self, request: DataRequest) -> MatchResult:
        """All policies and preferences governing ``request``.

        Results are ordered deterministically: policies by descending
        priority then id; preferences by id.
        """
        policies = [
            p
            for p in self.store.candidate_policies(request)
            if p.applies_to(request, self.context)
        ]
        policies.sort(key=lambda p: (-p.priority, p.policy_id))
        preferences = [
            p
            for p in self.store.candidate_preferences(request)
            if p.applies_to(request, self.context)
        ]
        preferences.sort(key=lambda p: p.preference_id)
        return MatchResult(request=request, policies=policies, preferences=preferences)
