"""Rule stores: linear scan and the optimized policy index.

Section V-C: "With large number of users, services, policies, and
preferences the cost of enforcement can be large enough to be
prohibitive in any real setting.  To overcome this challenge, we are
working on techniques for optimizing enforcement."

Both stores expose the same interface; :class:`PolicyIndex` buckets
rules so candidate lookup touches only rules that could possibly match,
and is verified (by property tests) to return decisions identical to
:class:`LinearRuleStore`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.language.vocabulary import DataCategory
from repro.core.policy.base import DataRequest, DecisionPhase
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.preference import UserPreference


class RuleStore:
    """Interface of a policy/preference store."""

    #: Monotonic mutation counter.  Decision caches key their entries
    #: on this value so any rule change invalidates them wholesale.
    version: int = 0

    #: Monotonic counter bumped only by policy mutations.  The compiled
    #: enforcement engine checks it per decision: a change drops every
    #: table shard (policies affect all users).
    policy_version: int = 0

    #: Per-user monotonic counters bumped by preference mutations of
    #: that user.  The compiled engine compares a shard's recorded
    #: counter against this map so a preference change evicts exactly
    #: the affected user's shard -- never the whole table.
    preference_versions: Dict[str, int]

    def add_policy(self, policy: BuildingPolicy) -> None:
        raise NotImplementedError

    def add_preference(self, preference: UserPreference) -> None:
        raise NotImplementedError

    def remove_policy(self, policy_id: str) -> None:
        raise NotImplementedError

    def remove_preferences_of(self, user_id: str) -> int:
        raise NotImplementedError

    def candidate_policies(self, request: DataRequest) -> List[BuildingPolicy]:
        """Superset of the policies that could match ``request``."""
        raise NotImplementedError

    def candidate_preferences(self, request: DataRequest) -> List[UserPreference]:
        """Superset of the preferences that could match ``request``."""
        raise NotImplementedError

    @property
    def policies(self) -> List[BuildingPolicy]:
        raise NotImplementedError

    @property
    def preferences(self) -> List[UserPreference]:
        raise NotImplementedError


class LinearRuleStore(RuleStore):
    """Baseline: every lookup scans every rule."""

    def __init__(self) -> None:
        self._policies: Dict[str, BuildingPolicy] = {}
        self._preferences: Dict[str, UserPreference] = {}
        self.version = 0
        self.policy_version = 0
        self.preference_versions = {}

    def add_policy(self, policy: BuildingPolicy) -> None:
        self._policies[policy.policy_id] = policy
        self.version += 1
        self.policy_version += 1

    def add_preference(self, preference: UserPreference) -> None:
        self._preferences[preference.preference_id] = preference
        self.version += 1
        self.preference_versions[preference.user_id] = (
            self.preference_versions.get(preference.user_id, 0) + 1
        )

    def remove_policy(self, policy_id: str) -> None:
        if self._policies.pop(policy_id, None) is not None:
            self.version += 1
            self.policy_version += 1

    def remove_preferences_of(self, user_id: str) -> int:
        doomed = [
            pid for pid, pref in self._preferences.items() if pref.user_id == user_id
        ]
        for pid in doomed:
            del self._preferences[pid]
        if doomed:
            self.version += 1
            self.preference_versions[user_id] = (
                self.preference_versions.get(user_id, 0) + 1
            )
        return len(doomed)

    def candidate_policies(self, request: DataRequest) -> List[BuildingPolicy]:
        return list(self._policies.values())

    def candidate_preferences(self, request: DataRequest) -> List[UserPreference]:
        return list(self._preferences.values())

    @property
    def policies(self) -> List[BuildingPolicy]:
        return list(self._policies.values())

    @property
    def preferences(self) -> List[UserPreference]:
        return list(self._preferences.values())


class PolicyIndex(RuleStore):
    """Bucketed store: candidates per (phase, category) and per subject.

    Policies are bucketed by ``(phase, category)``; a policy with empty
    (wildcard) category or phase selectors lands in wildcard buckets
    consulted on every lookup.  Preferences are additionally partitioned
    by user id, because a preference can only ever match requests about
    its own user -- with many users this is the dominant win.
    """

    _WILDCARD = "*"

    def __init__(self) -> None:
        self._policies: Dict[str, BuildingPolicy] = {}
        self._preferences: Dict[str, UserPreference] = {}
        self._policy_buckets: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        # user_id -> (phase, category) -> preference ids
        self._pref_buckets: Dict[str, Dict[Tuple[str, str], Set[str]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.version = 0
        self.policy_version = 0
        self.preference_versions = {}

    # ------------------------------------------------------------------
    # Bucketing helpers
    # ------------------------------------------------------------------
    @classmethod
    def _keys_for(
        cls,
        phases: Iterable[DecisionPhase],
        categories: Iterable[DataCategory],
    ) -> List[Tuple[str, str]]:
        phase_keys = [p.value for p in phases] or [cls._WILDCARD]
        category_keys = [c.value for c in categories] or [cls._WILDCARD]
        return [(p, c) for p in phase_keys for c in category_keys]

    @classmethod
    def _lookup_keys(cls, request: DataRequest) -> List[Tuple[str, str]]:
        phase = request.phase.value
        category = request.category.value
        return [
            (phase, category),
            (phase, cls._WILDCARD),
            (cls._WILDCARD, category),
            (cls._WILDCARD, cls._WILDCARD),
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_policy(self, policy: BuildingPolicy) -> None:
        self.remove_policy(policy.policy_id)
        self._policies[policy.policy_id] = policy
        for key in self._keys_for(policy.phases, policy.categories):
            self._policy_buckets[key].add(policy.policy_id)
        self.version += 1
        self.policy_version += 1

    def add_preference(self, preference: UserPreference) -> None:
        self._remove_preference(preference.preference_id)
        self._preferences[preference.preference_id] = preference
        buckets = self._pref_buckets[preference.user_id]
        for key in self._keys_for(preference.phases, preference.categories):
            buckets[key].add(preference.preference_id)
        self.version += 1
        self.preference_versions[preference.user_id] = (
            self.preference_versions.get(preference.user_id, 0) + 1
        )

    def remove_policy(self, policy_id: str) -> None:
        policy = self._policies.pop(policy_id, None)
        if policy is None:
            return
        for key in self._keys_for(policy.phases, policy.categories):
            self._policy_buckets[key].discard(policy_id)
        self.version += 1
        self.policy_version += 1

    def _remove_preference(self, preference_id: str) -> None:
        preference = self._preferences.pop(preference_id, None)
        if preference is None:
            return
        buckets = self._pref_buckets.get(preference.user_id, {})
        for key in self._keys_for(preference.phases, preference.categories):
            if key in buckets:
                buckets[key].discard(preference_id)

    def remove_preferences_of(self, user_id: str) -> int:
        doomed = [
            pid for pid, pref in self._preferences.items() if pref.user_id == user_id
        ]
        for pid in doomed:
            self._remove_preference(pid)
        self._pref_buckets.pop(user_id, None)
        if doomed:
            self.version += 1
            self.preference_versions[user_id] = (
                self.preference_versions.get(user_id, 0) + 1
            )
        return len(doomed)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidate_policies(self, request: DataRequest) -> List[BuildingPolicy]:
        ids: Set[str] = set()
        for key in self._lookup_keys(request):
            ids |= self._policy_buckets.get(key, set())
        return [self._policies[pid] for pid in ids]

    def candidate_preferences(self, request: DataRequest) -> List[UserPreference]:
        if request.subject_id is None:
            return []
        buckets = self._pref_buckets.get(request.subject_id)
        if not buckets:
            return []
        ids: Set[str] = set()
        for key in self._lookup_keys(request):
            ids |= buckets.get(key, set())
        return [self._preferences[pid] for pid in ids]

    @property
    def policies(self) -> List[BuildingPolicy]:
        return list(self._policies.values())

    @property
    def preferences(self) -> List[UserPreference]:
        return list(self._preferences.values())
