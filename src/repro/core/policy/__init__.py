"""Typed building policies and user preferences (Section III).

- :mod:`repro.core.policy.base` -- shared vocabulary: effects, decision
  phases, and the :class:`~repro.core.policy.base.DataRequest` that
  flows through the reasoner and enforcement engine.
- :mod:`repro.core.policy.conditions` -- composable spatial, temporal,
  profile, purpose, and requester conditions.
- :mod:`repro.core.policy.building` -- building policies, including the
  actuation and access rules of Policies 1-4 in the paper.
- :mod:`repro.core.policy.preference` -- user preferences and service
  permissions (Preferences 1-4 in the paper).
- :mod:`repro.core.policy.settings` -- the settings space a building
  exposes (Figure 4) and user selections within it.
"""

from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import ActuationRule, BuildingPolicy
from repro.core.policy.conditions import (
    AllOf,
    AnyOf,
    CategoryCondition,
    Condition,
    EvaluationContext,
    GranularityCondition,
    Not,
    ProfileCondition,
    PurposeCondition,
    RequesterCondition,
    SpatialCondition,
    TemporalCondition,
)
from repro.core.policy.preference import ServicePermission, UserPreference
from repro.core.policy.settings import SettingChoice, SettingsSpace

__all__ = [
    "Effect",
    "DecisionPhase",
    "RequesterKind",
    "DataRequest",
    "Condition",
    "EvaluationContext",
    "SpatialCondition",
    "TemporalCondition",
    "ProfileCondition",
    "PurposeCondition",
    "RequesterCondition",
    "CategoryCondition",
    "GranularityCondition",
    "AllOf",
    "AnyOf",
    "Not",
    "BuildingPolicy",
    "ActuationRule",
    "UserPreference",
    "ServicePermission",
    "SettingsSpace",
    "SettingChoice",
]
