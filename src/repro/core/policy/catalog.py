"""The paper's example policies and preferences, as constructors.

Section III lists four building policies and four user preferences.
They are used throughout the tests, examples, and benchmarks, so they
live here as a small catalog.  Each constructor takes the ids it needs
(spaces, users, services) so the catalog works against any building.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DecisionPhase, Effect, RequesterKind
from repro.core.policy.building import ActuationRule, BuildingPolicy
from repro.core.policy.conditions import TemporalCondition
from repro.core.policy.preference import ServicePermission, UserPreference


def policy_1_comfort(space_ids: Sequence[str], setpoint_f: float = 70.0) -> BuildingPolicy:
    """Policy 1: thermostat of occupied rooms set to ``setpoint_f``.

    "A facility manager sets the thermostat temperature of occupied
    rooms to 70F to match the average comfort level of users."  The
    data rule authorizes occupancy sensing for the comfort purpose; the
    actuation rules adjust HVAC setpoint and fan speed when the room is
    occupied.
    """
    return BuildingPolicy(
        policy_id="policy-1-comfort",
        name="Comfort temperature in occupied rooms",
        description=(
            "Set the thermostat temperature of occupied rooms to %.0fF to "
            "match the average comfort level of users." % setpoint_f
        ),
        effect=Effect.ALLOW,
        categories=(DataCategory.OCCUPANCY, DataCategory.TEMPERATURE),
        sensor_types=("motion_sensor", "temperature_sensor"),
        space_ids=tuple(space_ids),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE, DecisionPhase.PROCESSING),
        purposes=(Purpose.COMFORT,),
        granularity=GranularityLevel.PRECISE,
        retention=Duration.parse("P7D"),
        actuations=(
            ActuationRule(
                sensor_type="hvac_unit",
                settings={"setpoint_f": setpoint_f, "fan_speed": "auto"},
                trigger="occupied",
            ),
        ),
    )


def policy_2_emergency_location(building_id: str) -> BuildingPolicy:
    """Policy 2: location stored for emergency response (mandatory).

    "The building management system stores your location to locate you
    in case of emergency situations."  Marked mandatory: a user opt-out
    conflicts with it, which is the paper's canonical conflict example.
    """
    return BuildingPolicy(
        policy_id="policy-2-emergency",
        name="Location tracking in DBH",
        description=(
            "The building management system stores your location to locate "
            "you in case of emergency situations."
        ),
        effect=Effect.ALLOW,
        categories=(DataCategory.LOCATION, DataCategory.PRESENCE),
        sensor_types=("wifi_access_point",),
        space_ids=(building_id,),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        purposes=(Purpose.EMERGENCY_RESPONSE,),
        granularity=GranularityLevel.PRECISE,
        retention=Duration.parse("P6M"),
        mandatory=True,
    )


def policy_3_meeting_room_access(room_ids: Sequence[str]) -> BuildingPolicy:
    """Policy 3: ID card or fingerprint needed for meeting rooms.

    "A building administrator defines that either an ID card or
    fingerprint verification is needed to access meeting rooms."
    """
    return BuildingPolicy(
        policy_id="policy-3-access",
        name="Meeting room access control",
        description=(
            "Either an ID card or fingerprint verification is needed to "
            "access meeting rooms."
        ),
        effect=Effect.ALLOW,
        categories=(DataCategory.IDENTITY,),
        sensor_types=("id_card_reader",),
        space_ids=tuple(room_ids),
        phases=(DecisionPhase.CAPTURE, DecisionPhase.STORAGE),
        purposes=(Purpose.ACCESS_CONTROL,),
        retention=Duration.parse("P1Y"),
        actuations=(
            ActuationRule(
                sensor_type="id_card_reader",
                settings={"mode": "card_or_fingerprint"},
            ),
        ),
    )


def policy_4_event_disclosure(event_space_id: str) -> BuildingPolicy:
    """Policy 4: event details disclosed to nearby registered users.

    "An event coordinator requires that details regarding an event are
    disclosed to registered participants only when they are nearby."
    The spatial selector restricts sharing to requests located at the
    event space; the profile restriction to registered participants is
    enforced by a condition added by the building when it knows the
    event roster (see :mod:`repro.tippers.policy_manager`).
    """
    return BuildingPolicy(
        policy_id="policy-4-event",
        name="Event detail disclosure",
        description=(
            "Details regarding an event are disclosed to registered "
            "participants only when they are nearby."
        ),
        effect=Effect.ALLOW,
        categories=(DataCategory.MEETING_DETAILS,),
        space_ids=(event_space_id,),
        phases=(DecisionPhase.SHARING,),
        purposes=(Purpose.PROVIDING_SERVICE,),
        granularity=GranularityLevel.PRECISE,
    )


def policy_service_sharing(
    building_id: str,
    categories: Sequence[DataCategory] = (
        DataCategory.LOCATION,
        DataCategory.PRESENCE,
        DataCategory.OCCUPANCY,
        DataCategory.MEETING_DETAILS,
    ),
    granularity: GranularityLevel = GranularityLevel.PRECISE,
) -> BuildingPolicy:
    """A building policy authorizing data sharing with services.

    Not in the paper's numbered list, but implied by Section III-B's
    service scenarios: without it TIPPERS is default-deny and no
    service query would ever succeed.  It is deliberately
    non-mandatory, so user preferences and service permissions can
    restrict it per user.
    """
    return BuildingPolicy(
        policy_id="policy-service-sharing",
        name="Service data sharing",
        description=(
            "Building and third-party services may receive inhabitant data "
            "for the purpose of providing their service, subject to each "
            "inhabitant's preferences."
        ),
        effect=Effect.ALLOW,
        categories=tuple(categories),
        # No spatial selector: the rule covers the whole deployment,
        # including requests whose subject currently has no known
        # location (a spatial selector would silently exclude them).
        phases=(DecisionPhase.PROCESSING, DecisionPhase.SHARING),
        purposes=(Purpose.PROVIDING_SERVICE, Purpose.ENERGY_MANAGEMENT),
        granularity=granularity,
    )


def preference_1_office_after_hours(
    user_id: str,
    office_id: str,
    after_hours: Tuple[float, float] = (18.0, 8.0),
) -> UserPreference:
    """Preference 1: hide office occupancy after-hours.

    "Do not share the occupancy status of my office in after-hours."
    """
    return UserPreference(
        preference_id="pref-1-%s-office" % user_id,
        user_id=user_id,
        description="Do not share the occupancy status of my office in after-hours.",
        effect=Effect.DENY,
        categories=(DataCategory.OCCUPANCY, DataCategory.PRESENCE),
        phases=(DecisionPhase.SHARING,),
        space_ids=(office_id,),
        condition=TemporalCondition(start_hour=after_hours[0], end_hour=after_hours[1]),
    )


def preference_2_no_location(user_id: str) -> UserPreference:
    """Preference 2: "Do not share my location with anyone."

    Conflicts with Policy 2, which is the worked conflict example of
    Section III-B.
    """
    return UserPreference(
        preference_id="pref-2-%s-location" % user_id,
        user_id=user_id,
        description="Do not share my location with anyone.",
        effect=Effect.DENY,
        categories=(DataCategory.LOCATION,),
        phases=(
            DecisionPhase.CAPTURE,
            DecisionPhase.STORAGE,
            DecisionPhase.PROCESSING,
            DecisionPhase.SHARING,
        ),
    )


def preference_3_concierge_location(
    user_id: str, service_id: str = "concierge"
) -> ServicePermission:
    """Preference 3: Concierge may use fine-grained location.

    "Allow Concierge access to my fine grained location for directions."
    """
    return ServicePermission(
        user_id=user_id,
        service_id=service_id,
        category=DataCategory.LOCATION,
        granularity=GranularityLevel.PRECISE,
        purposes=(Purpose.PROVIDING_SERVICE,),
        granted=True,
    )


def preference_4_meeting_details(
    user_id: str, service_id: str = "smart-meeting"
) -> ServicePermission:
    """Preference 4: Smart Meeting may access meeting details.

    "Allow Smart Meeting access to the details of the meeting and its
    participants."
    """
    return ServicePermission(
        user_id=user_id,
        service_id=service_id,
        category=DataCategory.MEETING_DETAILS,
        granularity=GranularityLevel.PRECISE,
        purposes=(Purpose.PROVIDING_SERVICE,),
        granted=True,
    )
