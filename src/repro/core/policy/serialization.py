"""Wire serialization of preferences, conditions, and requests.

The IoTA communicates preferences to TIPPERS over the message bus
(step 8 of Figure 1), so preferences need a JSON form.  Structured
conditions (spatial, temporal, profile, and their boolean combinations)
serialize to a tagged format; exotic hand-written condition classes do
not cross the wire and raise :class:`PolicyError`.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import (
    AllOf,
    AnyOf,
    Always,
    Condition,
    Not,
    ProfileCondition,
    SpatialCondition,
    SubjectCondition,
    TemporalCondition,
)
from repro.core.policy.preference import UserPreference
from repro.errors import PolicyError


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
def condition_to_dict(condition: Condition) -> Dict[str, Any]:
    if isinstance(condition, Always):
        return {"kind": "always"}
    if isinstance(condition, SpatialCondition):
        return {
            "kind": "spatial",
            "space_id": condition.space_id,
            "match_unlocated": condition.match_unlocated,
        }
    if isinstance(condition, TemporalCondition):
        return {
            "kind": "temporal",
            "start_hour": condition.start_hour,
            "end_hour": condition.end_hour,
            "weekdays_only": condition.weekdays_only,
        }
    if isinstance(condition, ProfileCondition):
        return {"kind": "profile", "group": condition.group}
    if isinstance(condition, SubjectCondition):
        return {"kind": "subject", "subject_id": condition.subject_id}
    if isinstance(condition, AllOf):
        return {
            "kind": "all",
            "conditions": [condition_to_dict(c) for c in condition.conditions],
        }
    if isinstance(condition, AnyOf):
        return {
            "kind": "any",
            "conditions": [condition_to_dict(c) for c in condition.conditions],
        }
    if isinstance(condition, Not):
        return {"kind": "not", "condition": condition_to_dict(condition.condition)}
    raise PolicyError(
        "condition %r is not wire-serializable" % type(condition).__name__
    )


def condition_from_dict(data: Dict[str, Any]) -> Condition:
    kind = data.get("kind")
    if kind == "always":
        return Always()
    if kind == "spatial":
        return SpatialCondition(
            space_id=data["space_id"],
            match_unlocated=data.get("match_unlocated", False),
        )
    if kind == "temporal":
        return TemporalCondition(
            start_hour=data["start_hour"],
            end_hour=data["end_hour"],
            weekdays_only=data.get("weekdays_only", False),
        )
    if kind == "profile":
        return ProfileCondition(group=data["group"])
    if kind == "subject":
        return SubjectCondition(subject_id=data["subject_id"])
    if kind == "all":
        return AllOf(tuple(condition_from_dict(c) for c in data["conditions"]))
    if kind == "any":
        return AnyOf(tuple(condition_from_dict(c) for c in data["conditions"]))
    if kind == "not":
        return Not(condition_from_dict(data["condition"]))
    raise PolicyError("unknown condition kind %r" % kind)


# ----------------------------------------------------------------------
# Preferences
# ----------------------------------------------------------------------
def preference_to_dict(preference: UserPreference) -> Dict[str, Any]:
    return {
        "preference_id": preference.preference_id,
        "user_id": preference.user_id,
        "description": preference.description,
        "effect": preference.effect.value,
        "categories": [c.value for c in preference.categories],
        "phases": [p.value for p in preference.phases],
        "requester_ids": list(preference.requester_ids),
        "requester_kinds": [k.value for k in preference.requester_kinds],
        "purposes": [p.value for p in preference.purposes],
        "space_ids": list(preference.space_ids),
        "granularity_cap": preference.granularity_cap.value,
        "condition": condition_to_dict(preference.condition),
        "strength": preference.strength,
    }


def preference_from_dict(data: Dict[str, Any]) -> UserPreference:
    try:
        return UserPreference(
            preference_id=data["preference_id"],
            user_id=data["user_id"],
            description=data.get("description", ""),
            effect=Effect(data["effect"]),
            categories=tuple(DataCategory(c) for c in data.get("categories", [])),
            phases=tuple(DecisionPhase(p) for p in data["phases"]),
            requester_ids=tuple(data.get("requester_ids", [])),
            requester_kinds=tuple(
                RequesterKind(k) for k in data.get("requester_kinds", [])
            ),
            purposes=tuple(Purpose(p) for p in data.get("purposes", [])),
            space_ids=tuple(data.get("space_ids", [])),
            granularity_cap=GranularityLevel(
                data.get("granularity_cap", "precise")
            ),
            condition=condition_from_dict(data.get("condition", {"kind": "always"})),
            strength=data.get("strength", 1.0),
        )
    except (KeyError, ValueError) as exc:
        raise PolicyError("malformed preference payload: %s" % exc) from None


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def request_to_dict(request: DataRequest) -> Dict[str, Any]:
    return {
        "requester_id": request.requester_id,
        "requester_kind": request.requester_kind.value,
        "phase": request.phase.value,
        "category": request.category.value,
        "subject_id": request.subject_id,
        "space_id": request.space_id,
        "timestamp": request.timestamp,
        "purpose": request.purpose.value if request.purpose is not None else None,
        "granularity": request.granularity.value,
        "sensor_type": request.sensor_type,
        "attributes": dict(request.attributes),
    }


def request_from_dict(data: Dict[str, Any]) -> DataRequest:
    try:
        return DataRequest(
            requester_id=data["requester_id"],
            requester_kind=RequesterKind(data["requester_kind"]),
            phase=DecisionPhase(data["phase"]),
            category=DataCategory(data["category"]),
            subject_id=data.get("subject_id"),
            space_id=data.get("space_id"),
            timestamp=data["timestamp"],
            purpose=Purpose(data["purpose"]) if data.get("purpose") else None,
            granularity=GranularityLevel(data.get("granularity", "precise")),
            sensor_type=data.get("sensor_type"),
            attributes=dict(data.get("attributes", {})),
        )
    except (KeyError, ValueError) as exc:
        raise PolicyError("malformed request payload: %s" % exc) from None
