"""Settings spaces: the choices a building offers its users.

Figure 4 of the paper shows a settings document with mutually exclusive
options per group ("fine grained location sensing" / "coarse grained
location sensing" / "No location sensing").  A :class:`SettingsSpace`
is the typed form of that document: the building publishes it through
the IRR, the IoTA picks one option per group for its user, and TIPPERS
turns the chosen options into :class:`UserPreference` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.language.document import (
    SettingOptionDescription,
    SettingsDocument,
)
from repro.core.language.vocabulary import DataCategory, GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.core.policy.preference import UserPreference
from repro.errors import PolicyError


@dataclass(frozen=True)
class SettingChoice:
    """One selectable option: a granularity for a data category."""

    key: str
    description: str
    category: DataCategory
    granularity: GranularityLevel
    actuation: str
    """The opaque ``on`` string of Figure 4 (e.g. ``"wifi=opt-in"``)."""

    def to_description(self) -> SettingOptionDescription:
        return SettingOptionDescription(
            description=self.description,
            on=self.actuation,
            granularity=self.granularity,
            key=self.key,
        )


@dataclass(frozen=True)
class SettingGroup:
    """A mutually exclusive group of choices about one data category."""

    group_id: str
    category: DataCategory
    choices: Tuple[SettingChoice, ...]
    default_key: str

    def __post_init__(self) -> None:
        if not self.choices:
            raise PolicyError("setting group %r has no choices" % self.group_id)
        if self.default_key not in {c.key for c in self.choices}:
            raise PolicyError(
                "default %r not among choices of group %r"
                % (self.default_key, self.group_id)
            )

    def choice(self, key: str) -> SettingChoice:
        for candidate in self.choices:
            if candidate.key == key:
                return candidate
        raise PolicyError("group %r has no choice %r" % (self.group_id, key))

    @property
    def default(self) -> SettingChoice:
        return self.choice(self.default_key)

    def strictest(self) -> SettingChoice:
        """The most privacy-protective choice (coarsest granularity)."""
        return min(self.choices, key=lambda c: c.granularity.rank)

    def most_permissive(self) -> SettingChoice:
        return max(self.choices, key=lambda c: c.granularity.rank)

    def best_at_most(self, cap: GranularityLevel) -> SettingChoice:
        """The finest choice not exceeding ``cap``.

        Falls back to the strictest choice when every option exceeds the
        cap (e.g. the user wants NONE but the group only offers COARSE
        and PRECISE).
        """
        eligible = [c for c in self.choices if c.granularity.at_most(cap)]
        if not eligible:
            return self.strictest()
        return max(eligible, key=lambda c: c.granularity.rank)


class SettingsSpace:
    """All setting groups a building (or one resource) exposes."""

    def __init__(self, groups: List[SettingGroup]) -> None:
        seen = set()
        for group in groups:
            if group.group_id in seen:
                raise PolicyError("duplicate setting group %r" % group.group_id)
            seen.add(group.group_id)
        self._groups = {g.group_id: g for g in groups}

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self):
        return iter(self._groups.values())

    def group(self, group_id: str) -> SettingGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            raise PolicyError("unknown setting group %r" % group_id) from None

    def group_ids(self) -> List[str]:
        return sorted(self._groups)

    def default_selection(self) -> Dict[str, str]:
        return {gid: g.default_key for gid, g in self._groups.items()}

    def validate_selection(self, selection: Dict[str, str]) -> None:
        """Every selected key must exist in its group."""
        for group_id, key in selection.items():
            self.group(group_id).choice(key)

    # ------------------------------------------------------------------
    # Language round-trip
    # ------------------------------------------------------------------
    def to_document(self) -> SettingsDocument:
        groups = sorted(self._groups.values(), key=lambda g: g.group_id)
        return SettingsDocument(
            [[choice.to_description() for choice in g.choices] for g in groups],
            names=[g.group_id for g in groups],
        )

    @classmethod
    def from_document(
        cls,
        document: SettingsDocument,
        categories: Optional[List[DataCategory]] = None,
    ) -> "SettingsSpace":
        """Reconstruct a space from a settings document.

        Documents do not carry the data category per group; callers
        supply one per group, defaulting to LOCATION (the category of
        the paper's Figure 4 example).
        """
        groups = []
        for index, (name, options) in enumerate(zip(document.names, document.groups)):
            category = (
                categories[index]
                if categories is not None and index < len(categories)
                else DataCategory.LOCATION
            )
            choices = []
            for opt_index, option in enumerate(options):
                granularity = option.granularity or GranularityLevel.PRECISE
                choices.append(
                    SettingChoice(
                        key=option.key or ("option-%d" % opt_index),
                        description=option.description,
                        category=category,
                        granularity=granularity,
                        actuation=option.on,
                    )
                )
            groups.append(
                SettingGroup(
                    group_id=name or ("group-%d" % index),
                    category=category,
                    choices=tuple(choices),
                    default_key=choices[0].key,
                )
            )
        return cls(groups)

    # ------------------------------------------------------------------
    # Turning selections into preferences (step 8 of Figure 1)
    # ------------------------------------------------------------------
    def selection_to_preferences(
        self, user_id: str, selection: Dict[str, str]
    ) -> List[UserPreference]:
        """Translate a user's selection into enforceable preferences."""
        self.validate_selection(selection)
        preferences = []
        for group_id, key in sorted(selection.items()):
            choice = self.group(group_id).choice(key)
            effect = (
                Effect.DENY
                if choice.granularity is GranularityLevel.NONE
                else Effect.ALLOW
            )
            preferences.append(
                UserPreference(
                    preference_id="setting:%s:%s" % (user_id, group_id),
                    user_id=user_id,
                    description=choice.description,
                    effect=effect,
                    categories=(choice.category,),
                    phases=(
                        DecisionPhase.CAPTURE,
                        DecisionPhase.STORAGE,
                        DecisionPhase.PROCESSING,
                        DecisionPhase.SHARING,
                    ),
                    granularity_cap=choice.granularity,
                )
            )
        return preferences


def location_settings_space() -> SettingsSpace:
    """The exact settings space of the paper's Figure 4."""
    return SettingsSpace(
        [
            SettingGroup(
                group_id="location",
                category=DataCategory.LOCATION,
                choices=(
                    SettingChoice(
                        key="fine",
                        description="fine grained location sensing",
                        category=DataCategory.LOCATION,
                        granularity=GranularityLevel.PRECISE,
                        actuation="wifi=opt-in",
                    ),
                    SettingChoice(
                        key="coarse",
                        description="coarse grained location sensing",
                        category=DataCategory.LOCATION,
                        granularity=GranularityLevel.COARSE,
                        actuation="wifi=opt-in",
                    ),
                    SettingChoice(
                        key="off",
                        description="No location sensing",
                        category=DataCategory.LOCATION,
                        granularity=GranularityLevel.NONE,
                        actuation="wifi=opt-out",
                    ),
                ),
                default_key="coarse",
            )
        ]
    )
