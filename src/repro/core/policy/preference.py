"""User preferences and service permissions.

"A user preference is a representation of the user's expectation of how
data pertaining to her should be managed by the pervasive space.  These
preferences might be partially or completely met depending on other
policies and user preferences existing in the same space."
(Section III-B.)

Two kinds are modelled, matching the paper's examples:

- :class:`UserPreference` -- restrictions on the building's handling of
  the user's data (Preferences 1 and 2);
- :class:`ServicePermission` -- per-service grants, "similar to how the
  permissions are managed in mobile apps" (Preferences 3 and 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.core.policy.conditions import Always, Condition, EvaluationContext
from repro.errors import PolicyError


@dataclass(frozen=True)
class UserPreference:
    """A user's restriction (or explicit allowance) on her data.

    ``granularity_cap`` expresses partial restrictions: "share my
    location at floor level only" is ``effect=ALLOW`` with
    ``granularity_cap=COARSE``.  A hard opt-out is ``effect=DENY``
    (the cap is then irrelevant).

    ``strength`` in [0, 1] encodes how strongly the user holds the
    preference; the IoTA's learner produces values < 1 and resolution
    strategies may treat weak preferences as negotiable.
    """

    preference_id: str
    user_id: str
    description: str
    effect: Effect
    categories: Tuple[DataCategory, ...] = ()
    phases: Tuple[DecisionPhase, ...] = (DecisionPhase.SHARING,)
    requester_ids: Tuple[str, ...] = ()
    requester_kinds: Tuple[RequesterKind, ...] = ()
    purposes: Tuple[Purpose, ...] = ()
    space_ids: Tuple[str, ...] = ()
    granularity_cap: GranularityLevel = GranularityLevel.PRECISE
    condition: Condition = field(default_factory=Always)
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not self.preference_id:
            raise PolicyError("preference_id must be non-empty")
        if not self.user_id:
            raise PolicyError("user_id must be non-empty")
        if not 0.0 <= self.strength <= 1.0:
            raise PolicyError("strength must lie in [0, 1]")
        if not self.phases:
            raise PolicyError(
                "preference %r applies to no phase" % self.preference_id
            )

    def applies_to(self, request: DataRequest, context: EvaluationContext) -> bool:
        """Whether this preference governs ``request``.

        Preferences only ever govern requests about their own user, and
        empty selector tuples are wildcards.
        """
        if request.subject_id != self.user_id:
            return False
        if request.phase not in self.phases:
            return False
        if self.categories and request.category not in self.categories:
            return False
        if self.purposes and request.purpose not in self.purposes:
            return False
        if self.requester_ids and request.requester_id not in self.requester_ids:
            return False
        if self.requester_kinds and request.requester_kind not in self.requester_kinds:
            return False
        if self.space_ids and not self._space_matches(request, context):
            return False
        return self.condition.matches(request, context)

    def _space_matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if request.space_id is None:
            return False
        if context.spatial is None or request.space_id not in context.spatial:
            return request.space_id in self.space_ids
        for space_id in self.space_ids:
            if space_id in context.spatial and context.spatial.contains(
                space_id, request.space_id
            ):
                return True
        return False

    @property
    def is_opt_out(self) -> bool:
        return self.effect is Effect.DENY or self.granularity_cap is GranularityLevel.NONE

    def permitted_granularity(self) -> GranularityLevel:
        """The finest granularity this preference tolerates."""
        if self.effect is Effect.DENY:
            return GranularityLevel.NONE
        return self.granularity_cap

    def __str__(self) -> str:
        return "%s(%s: %s)" % (self.preference_id, self.user_id, self.description)


@dataclass(frozen=True)
class ServicePermission:
    """A user's grant to one service, app-permission style.

    Example (Preference 3): "Allow Concierge access to my fine grained
    location for directions" is a grant of ``LOCATION`` at ``PRECISE``
    granularity to service ``concierge`` for ``PROVIDING_SERVICE``.
    """

    user_id: str
    service_id: str
    category: DataCategory
    granularity: GranularityLevel
    purposes: Tuple[Purpose, ...] = (Purpose.PROVIDING_SERVICE,)
    granted: bool = True

    def __post_init__(self) -> None:
        if not self.user_id or not self.service_id:
            raise PolicyError("user_id and service_id must be non-empty")

    def to_preference(self) -> UserPreference:
        """The equivalent :class:`UserPreference`.

        TIPPERS stores permissions uniformly as preferences so a single
        enforcement path handles both.
        """
        effect = Effect.ALLOW if self.granted else Effect.DENY
        return UserPreference(
            preference_id="perm:%s:%s:%s" % (self.user_id, self.service_id, self.category.value),
            user_id=self.user_id,
            description="%s %s access to %s at %s granularity"
            % (
                "Allow" if self.granted else "Deny",
                self.service_id,
                self.category.value,
                self.granularity.value,
            ),
            effect=effect,
            categories=(self.category,),
            phases=(DecisionPhase.SHARING, DecisionPhase.PROCESSING),
            requester_ids=(self.service_id,),
            purposes=self.purposes,
            granularity_cap=self.granularity if self.granted else GranularityLevel.NONE,
        )
