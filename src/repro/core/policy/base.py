"""Shared policy vocabulary: effects, phases, and data requests."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.errors import PolicyError


class Effect(enum.Enum):
    """What a matched rule does to a request."""

    ALLOW = "allow"
    DENY = "deny"


class DecisionPhase(enum.Enum):
    """Where in the data lifecycle a rule applies.

    Section V-C: policies are enforced "when (during capture, storage,
    processing, or sharing)".
    """

    CAPTURE = "capture"
    STORAGE = "storage"
    PROCESSING = "processing"
    SHARING = "sharing"


class RequesterKind(enum.Enum):
    """Who is asking for the data."""

    BUILDING = "building"          # the BMS itself (capture/storage)
    BUILDING_SERVICE = "building_service"
    THIRD_PARTY_SERVICE = "third_party_service"
    USER = "user"                  # another inhabitant
    EXTERNAL = "external"          # e.g. law enforcement


@dataclass(frozen=True)
class DataRequest:
    """A concrete request for (or capture of) data about a subject.

    This is the unit both the reasoner and the enforcement engine work
    on: "service S requests the location of Mary at room 2011, at
    precise granularity, for purpose providing_service, during the
    sharing phase".

    ``subject_id`` is ``None`` for non-attributable data (e.g. ambient
    temperature), which no user preference can restrict.
    """

    requester_id: str
    requester_kind: RequesterKind
    phase: DecisionPhase
    category: DataCategory
    subject_id: Optional[str]
    space_id: Optional[str]
    timestamp: float
    purpose: Optional[Purpose] = None
    granularity: GranularityLevel = GranularityLevel.PRECISE
    sensor_type: Optional[str] = None
    attributes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.requester_id:
            raise PolicyError("requester_id must be non-empty")
        if self.timestamp < 0:
            raise PolicyError("timestamp must be non-negative")

    def with_granularity(self, granularity: GranularityLevel) -> "DataRequest":
        """A copy of this request at a different granularity."""
        return DataRequest(
            requester_id=self.requester_id,
            requester_kind=self.requester_kind,
            phase=self.phase,
            category=self.category,
            subject_id=self.subject_id,
            space_id=self.space_id,
            timestamp=self.timestamp,
            purpose=self.purpose,
            granularity=granularity,
            sensor_type=self.sensor_type,
            attributes=dict(self.attributes),
        )

    @property
    def is_attributable(self) -> bool:
        """Whether the data can be tied to a person."""
        return self.subject_id is not None
