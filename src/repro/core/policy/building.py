"""Building policies.

A :class:`BuildingPolicy` "states requirements for data collection and
management set by the temporary or permanent owner" (Section III-A).
It has two faces:

- a *data rule*: which data (categories, sensor types, spaces, phases)
  the building collects or shares, for which purposes, at which
  granularity, and for how long;
- optional *actuation rules* that translate the policy "into settings
  that change the state of sensors" -- the paper's Policy 1 walks
  through exactly that pipeline for thermostats.

The four example policies from the paper are provided as constructors
in :mod:`repro.core.policy.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect
from repro.core.policy.conditions import Always, Condition, EvaluationContext
from repro.errors import PolicyError


@dataclass(frozen=True)
class ActuationRule:
    """A settings change applied to matching sensors when a trigger holds.

    ``trigger`` is an abstract predicate name evaluated by the building
    (e.g. ``"occupied"``); ``sensor_type`` selects the target sensors in
    the policy's spaces; ``settings`` is the parameter update to apply.
    """

    sensor_type: str
    settings: Dict[str, object]
    trigger: str = "always"

    def __post_init__(self) -> None:
        if not self.settings:
            raise PolicyError("ActuationRule needs a non-empty settings dict")


@dataclass(frozen=True)
class BuildingPolicy:
    """A building-side rule over data requests, plus actuation."""

    policy_id: str
    name: str
    description: str
    effect: Effect = Effect.ALLOW
    categories: Tuple[DataCategory, ...] = ()
    sensor_types: Tuple[str, ...] = ()
    space_ids: Tuple[str, ...] = ()
    phases: Tuple[DecisionPhase, ...] = (
        DecisionPhase.CAPTURE,
        DecisionPhase.STORAGE,
    )
    purposes: Tuple[Purpose, ...] = ()
    granularity: GranularityLevel = GranularityLevel.PRECISE
    retention: Optional[Duration] = None
    condition: Condition = field(default_factory=Always)
    actuations: Tuple[ActuationRule, ...] = ()
    mandatory: bool = False
    """Mandatory policies "(in most cases) have to be met completely by
    the other actors" -- user preferences cannot override them (e.g.
    emergency-response location capture)."""

    priority: int = 0

    def __post_init__(self) -> None:
        if not self.policy_id:
            raise PolicyError("policy_id must be non-empty")
        if not self.phases:
            raise PolicyError("policy %r applies to no phase" % self.policy_id)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def applies_to(self, request: DataRequest, context: EvaluationContext) -> bool:
        """Whether this policy governs ``request``.

        Empty selector tuples are wildcards, matching any value.
        """
        if request.phase not in self.phases:
            return False
        if self.categories and request.category not in self.categories:
            return False
        if self.sensor_types and request.sensor_type not in self.sensor_types:
            return False
        if self.purposes and request.purpose not in self.purposes:
            return False
        if self.space_ids and not self._space_matches(request, context):
            return False
        return self.condition.matches(request, context)

    def _space_matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if request.space_id is None:
            return False
        if context.spatial is None or request.space_id not in context.spatial:
            return request.space_id in self.space_ids
        for space_id in self.space_ids:
            if space_id in context.spatial and context.spatial.contains(
                space_id, request.space_id
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection used by the reasoner and the IRR
    # ------------------------------------------------------------------
    @property
    def collects_personal_data(self) -> bool:
        """Whether the policy authorizes collection of person-linked data."""
        personal = {
            DataCategory.LOCATION,
            DataCategory.PRESENCE,
            DataCategory.IDENTITY,
            DataCategory.ACTIVITY,
            DataCategory.SOCIAL_TIES,
            DataCategory.MEETING_DETAILS,
        }
        return self.effect is Effect.ALLOW and bool(set(self.categories) & personal)

    def retention_seconds(self) -> Optional[int]:
        return None if self.retention is None else self.retention.total_seconds()

    def __str__(self) -> str:
        return "%s(%s)" % (self.policy_id, self.name)
