"""Composable conditions over data requests.

Conditions are the "context specific requirements" of Section IV: a
rule applies only when its condition matches the request.  Conditions
evaluate against an :class:`EvaluationContext` that provides the spatial
model (for the ``contained`` operator) and the user directory (for
profile checks).

All conditions are immutable and combinable with :class:`AllOf`,
:class:`AnyOf`, and :class:`Not`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, RequesterKind
from repro.errors import PolicyError
from repro.spatial.model import SpatialModel


@dataclass
class EvaluationContext:
    """What conditions may consult besides the request itself.

    ``user_profiles`` maps user id to the set of group names the user
    belongs to (Section IV-A.2: "Profiles can be based on groups
    (students, faculty, staff etc.)").  ``seconds_per_day`` defaults to
    86400; the simulation clock counts seconds from its epoch, and
    temporal conditions interpret timestamps modulo one day.
    """

    spatial: Optional[SpatialModel] = None
    user_profiles: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    seconds_per_day: int = 86400

    def groups_of(self, user_id: str) -> FrozenSet[str]:
        return self.user_profiles.get(user_id, frozenset())

    def hour_of(self, timestamp: float) -> float:
        """Hour-of-day in [0, 24) for a simulation timestamp."""
        return (timestamp % self.seconds_per_day) / (self.seconds_per_day / 24.0)

    def day_index_of(self, timestamp: float) -> int:
        """Day number since the simulation epoch (day 0 = Monday)."""
        return int(timestamp // self.seconds_per_day)


class Condition:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        raise NotImplementedError

    @property
    def time_sensitive(self) -> bool:
        """Whether the outcome can change with the request timestamp.

        Decision caching may only reuse results for rules whose
        conditions are time-insensitive.  Unknown condition classes
        default to ``True`` (conservative: never cached wrongly).
        """
        return True

    def __and__(self, other: "Condition") -> "AllOf":
        return AllOf((self, other))

    def __or__(self, other: "Condition") -> "AnyOf":
        return AnyOf((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Always(Condition):
    """Matches every request."""

    time_sensitive = False

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return True


@dataclass(frozen=True)
class SpatialCondition(Condition):
    """Matches requests whose space is (contained in) ``space_id``.

    A request with no space matches only when ``match_unlocated``.
    """

    time_sensitive = False

    space_id: str
    match_unlocated: bool = False

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if request.space_id is None:
            return self.match_unlocated
        if context.spatial is None or request.space_id not in context.spatial:
            # Without a model (or for unknown spaces) fall back to
            # exact-id matching so unit tests need not build a model.
            return request.space_id == self.space_id
        if self.space_id not in context.spatial:
            return False
        return context.spatial.contains(self.space_id, request.space_id)


@dataclass(frozen=True)
class TemporalCondition(Condition):
    """Matches requests inside an hour-of-day window, optionally by day.

    The window ``[start_hour, end_hour)`` may wrap midnight, which is
    how Preference 1's "after-hours" (e.g. 18:00-08:00) is expressed.
    ``weekdays_only`` restricts to days 0-4 of each simulated week.
    """

    start_hour: float
    end_hour: float
    weekdays_only: bool = False

    def __post_init__(self) -> None:
        if not (0.0 <= self.start_hour <= 24.0 and 0.0 <= self.end_hour <= 24.0):
            raise PolicyError("hours must lie in [0, 24]")

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if self.weekdays_only and context.day_index_of(request.timestamp) % 7 >= 5:
            return False
        hour = context.hour_of(request.timestamp)
        if self.start_hour <= self.end_hour:
            return self.start_hour <= hour < self.end_hour
        return hour >= self.start_hour or hour < self.end_hour


@dataclass(frozen=True)
class ProfileCondition(Condition):
    """Matches requests about subjects in a given group (e.g. "faculty")."""

    time_sensitive = False

    group: str

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if request.subject_id is None:
            return False
        return self.group in context.groups_of(request.subject_id)


@dataclass(frozen=True)
class SubjectCondition(Condition):
    """Matches requests about one specific subject."""

    time_sensitive = False

    subject_id: str

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return request.subject_id == self.subject_id


@dataclass(frozen=True)
class PurposeCondition(Condition):
    """Matches requests declaring one of the listed purposes."""

    time_sensitive = False

    purposes: Tuple[Purpose, ...]

    def __post_init__(self) -> None:
        if not self.purposes:
            raise PolicyError("PurposeCondition needs >= 1 purpose")

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return request.purpose in self.purposes


@dataclass(frozen=True)
class RequesterCondition(Condition):
    """Matches requests from specific requesters or requester kinds."""

    time_sensitive = False

    requester_ids: Tuple[str, ...] = ()
    kinds: Tuple[RequesterKind, ...] = ()

    def __post_init__(self) -> None:
        if not self.requester_ids and not self.kinds:
            raise PolicyError("RequesterCondition needs ids or kinds")

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        if self.requester_ids and request.requester_id in self.requester_ids:
            return True
        return bool(self.kinds) and request.requester_kind in self.kinds


@dataclass(frozen=True)
class CategoryCondition(Condition):
    """Matches requests for one of the listed data categories."""

    time_sensitive = False

    categories: Tuple[DataCategory, ...]

    def __post_init__(self) -> None:
        if not self.categories:
            raise PolicyError("CategoryCondition needs >= 1 category")

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return request.category in self.categories


@dataclass(frozen=True)
class GranularityCondition(Condition):
    """Matches requests asking for granularity finer than ``threshold``.

    Useful for preferences like "notify me only when precise location
    is requested".
    """

    time_sensitive = False

    finer_than: GranularityLevel

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return request.granularity.rank > self.finer_than.rank


@dataclass(frozen=True)
class SensorTypeCondition(Condition):
    """Matches requests sourced from one of the listed sensor types."""

    time_sensitive = False

    sensor_types: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.sensor_types:
            raise PolicyError("SensorTypeCondition needs >= 1 sensor type")

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return request.sensor_type in self.sensor_types


@dataclass(frozen=True)
class AllOf(Condition):
    """Conjunction; an empty conjunction matches everything."""

    conditions: Tuple[Condition, ...]

    @property
    def time_sensitive(self) -> bool:
        return any(c.time_sensitive for c in self.conditions)

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return all(c.matches(request, context) for c in self.conditions)


@dataclass(frozen=True)
class AnyOf(Condition):
    """Disjunction; an empty disjunction matches nothing."""

    conditions: Tuple[Condition, ...]

    @property
    def time_sensitive(self) -> bool:
        return any(c.time_sensitive for c in self.conditions)

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return any(c.matches(request, context) for c in self.conditions)


@dataclass(frozen=True)
class Not(Condition):
    """Negation."""

    condition: Condition

    @property
    def time_sensitive(self) -> bool:
        return self.condition.time_sensitive

    def matches(self, request: DataRequest, context: EvaluationContext) -> bool:
        return not self.condition.matches(request, context)
