"""Runtime enforcement of resolved policies.

Section V-C: the mapping of high-level policies onto the building
"determines the where (at devices or BMS), when (during capture,
storage, processing, or sharing) and how (accept/deny data access or
add noise) these policies and preferences should be enforced on the
user data".

- :mod:`repro.core.enforcement.mechanisms` -- the "how": granularity
  degradation, field suppression, aggregation, Laplace noise.
- :mod:`repro.core.enforcement.engine` -- the decision point: turns
  observations and queries into :class:`~repro.core.policy.base.DataRequest`
  objects, resolves them, and applies the chosen mechanism.
- :mod:`repro.core.enforcement.audit` -- an append-only audit log of
  every decision, which the IoTA and building admin can inspect.
- :mod:`repro.core.enforcement.compiled` -- the Section V-C
  optimization: decisions compiled into per-user tables, proven
  equivalent to the reference engine by ``tests/differential``.
- :mod:`repro.core.enforcement.tables` -- (de)serialization of compiled
  tables, so they round-trip through the WAL as advisory records.
"""

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.enforcement.cache import CachingEnforcementEngine, time_stable
from repro.core.enforcement.compiled import CompiledEnforcementEngine
from repro.core.enforcement.engine import Decision, EnforcementEngine
from repro.core.enforcement.mechanisms import (
    aggregate_counts,
    coarsen_space,
    degrade_observation,
    laplace_noise,
    suppress_personal_fields,
)
from repro.core.enforcement.tables import export_table, import_table

__all__ = [
    "EnforcementEngine",
    "CachingEnforcementEngine",
    "CompiledEnforcementEngine",
    "Decision",
    "time_stable",
    "export_table",
    "import_table",
    "AuditLog",
    "AuditRecord",
    "coarsen_space",
    "degrade_observation",
    "suppress_personal_fields",
    "aggregate_counts",
    "laplace_noise",
]
