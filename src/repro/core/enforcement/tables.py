"""Serialization of compiled decision tables.

A compiled table is an *advisory* artifact: losing it costs warm-up
misses, never correctness.  That shapes the format and the import
contract:

- :func:`export_table` emits a deterministic JSON-compatible dict
  (shards sorted by subject, rows sorted by encoded key) stamped with
  the store's ``policy_version`` and each shard's preference counter.
- :func:`import_table` adopts **only** shards whose version stamps
  still match the engine's store; everything else is silently skipped.
  An adopted row rebuilds its precomputed audit tail and counter
  binding from the decoded key and resolution, so a round-tripped
  table serves decisions byte-identical to the originals.

The WAL carries tables as ``table`` records
(:meth:`~repro.storage.durable.StorageEngine.log_compiled_table`);
recovery surfaces the latest one on
:attr:`~repro.storage.recovery.RecoveredState.compiled_table`, and
compaction drops table records by construction (the snapshot has no
table file) -- a stale table is garbage, not state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.language.vocabulary import (
    DataCategory,
    GranularityLevel,
    Purpose,
)
from repro.core.policy.base import DecisionPhase, Effect, RequesterKind
from repro.core.reasoner.resolution import Resolution

#: Bumped when the encoded layout changes; :func:`import_table` rejects
#: versions it does not understand.
TABLE_SCHEMA_VERSION = 1


def _encode_key(key: Tuple[Any, ...]) -> List[Any]:
    requester_id, kind, phase, category, space_id, purpose, gran, sensor = key
    return [
        requester_id,
        kind.value,
        phase.value,
        category.value,
        space_id,
        None if purpose is None else purpose.value,
        gran.value,
        sensor,
    ]


def _decode_key(data: List[Any]) -> Tuple[Any, ...]:
    requester_id, kind, phase, category, space_id, purpose, gran, sensor = data
    return (
        requester_id,
        RequesterKind(kind),
        DecisionPhase(phase),
        DataCategory(category),
        space_id,
        None if purpose is None else Purpose(purpose),
        GranularityLevel(gran),
        sensor,
    )


def _encode_resolution(resolution: Resolution) -> Dict[str, Any]:
    return {
        "effect": resolution.effect.value,
        "granularity": resolution.granularity.value,
        "policy_ids": list(resolution.policy_ids),
        "preference_ids": list(resolution.preference_ids),
        "notify_user": resolution.notify_user,
        "reasons": list(resolution.reasons),
    }


def _decode_resolution(data: Dict[str, Any]) -> Resolution:
    return Resolution(
        effect=Effect(data["effect"]),
        granularity=GranularityLevel(data["granularity"]),
        policy_ids=tuple(data["policy_ids"]),
        preference_ids=tuple(data["preference_ids"]),
        notify_user=bool(data["notify_user"]),
        reasons=tuple(data["reasons"]),
    )


def _subject_sort_key(subject: Optional[str]) -> Tuple[bool, str]:
    # The subject-less shard sorts first; JSON has no tuple keys, so
    # shards are a list of objects rather than a mapping.
    return (subject is not None, subject if subject is not None else "")


def export_table(engine: Any) -> Dict[str, Any]:
    """``engine``'s compiled table as a JSON-compatible dict.

    ``engine`` is a
    :class:`~repro.core.enforcement.compiled.CompiledEnforcementEngine`
    (duck-typed to avoid an import cycle).  Output is deterministic for
    a given table, so same-seed runs log byte-identical table records.
    """
    shards = []
    for subject in sorted(engine._shards, key=_subject_sort_key):
        shard = engine._shards[subject]
        rows = sorted(
            ([_encode_key(key), _encode_resolution(row[0])]
             for key, row in shard.rows.items()),
            key=lambda entry: [
                "" if part is None else str(part) for part in entry[0]
            ],
        )
        shards.append(
            {
                "subject": subject,
                "pref_version": shard.pref_version,
                "rows": rows,
            }
        )
    return {
        "schema": TABLE_SCHEMA_VERSION,
        "policy_version": engine.store.policy_version,
        "shards": shards,
    }


def import_table(engine: Any, data: Dict[str, Any]) -> int:
    """Adopt still-valid shards of ``data`` into ``engine``.

    Returns the number of rows adopted.  A shard is adopted only when
    the exported ``policy_version`` matches the store's current one and
    the shard's ``pref_version`` matches the subject's current
    preference counter; a schema the build does not understand raises
    ``ValueError`` (callers treating tables as advisory should catch
    and discard).
    """
    from repro.core.enforcement.compiled import TableShard

    schema = data.get("schema")
    if schema != TABLE_SCHEMA_VERSION:
        raise ValueError(
            "unsupported compiled-table schema %r (this build "
            "understands %d)" % (schema, TABLE_SCHEMA_VERSION)
        )
    store = engine.store
    if data.get("policy_version") != store.policy_version:
        return 0
    # The engine's version snapshots may predate store setup (they are
    # taken at construction); reconcile flushes any stale shards and
    # re-baselines the counters before adopting -- otherwise the next
    # decide would drop the adopted rows too.
    engine._reconcile()
    adopted = 0
    for shard_data in data.get("shards", ()):
        subject = shard_data.get("subject")
        pref_version = shard_data.get("pref_version")
        if pref_version != store.preference_versions.get(subject, 0):
            continue
        if len(engine._shards) >= engine._max_shards:
            break
        shard = engine._shards.get(subject)
        if shard is None:
            shard = engine._shards[subject] = TableShard(pref_version)
        for key_data, resolution_data in shard_data.get("rows", ()):
            if len(shard.rows) >= engine._shard_capacity:
                break
            key = _decode_key(key_data)
            resolution = _decode_resolution(resolution_data)
            if key in shard.rows:
                continue
            row = shard.rows[key] = (
                resolution,
                (
                    key[0],  # requester_id
                    key[2],  # phase
                    key[3].value,  # category
                    subject,
                    key[4],  # space_id
                    resolution.effect,
                    resolution.granularity,
                    resolution.reasons,
                    resolution.notify_user,
                ),
                engine._m_decisions[resolution.effect],
            )
            engine._rows[(subject,) + key] = row
            adopted += 1
            engine._row_count += 1
    engine._m_shards.set(len(engine._shards))
    engine._m_rows.set(engine._row_count)
    return adopted
