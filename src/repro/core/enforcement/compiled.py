"""Compiled enforcement: flattened per-user decision tables.

Section V-C names enforcement cost the obstacle to deploying the
paper's model at building scale.  The reference
:class:`~repro.core.enforcement.engine.EnforcementEngine` re-walks
policy documents and preferences on every request; this module compiles
each (building policy set x user preference set) into a flattened
decision table so a repeat request is a pair of dict probes.

Layout
------

The table is sharded per *subject* (the user the data is about, with a
dedicated shard for subject-less requests), because a user preference
can only ever apply to requests about its own user
(``UserPreference.applies_to`` requires ``request.subject_id ==
user_id``).  Within a shard, rows are keyed by every remaining request
field a rule can consult::

    (requester_id, requester_kind, phase, category,
     space_id, purpose, granularity, sensor_type)

Shards exist for invalidation bookkeeping; serving goes through one
flat dict keyed by ``(subject_id,) + row_key`` so a warm decision is a
single probe.  Every invalidation path keeps the two views in
lockstep.  A row stores the :class:`Resolution` to serve, the
precomputed tail of the :class:`AuditRecord` tuple (everything after
the timestamp), and the decisions counter for the row's effect -- so
the hit path allocates only the two NamedTuples it must return.

Invalidation protocol
---------------------

Correctness never depends on anyone remembering to call a hook.  The
rule store carries monotonic counters
(:attr:`~repro.core.reasoner.index.RuleStore.version`,
:attr:`~repro.core.reasoner.index.RuleStore.policy_version`, and
:attr:`~repro.core.reasoner.index.RuleStore.preference_versions`) that
every mutation bumps.  ``decide`` compares the single global
``version`` per request, and only when it moved reconciles against the
fine-grained counters:

- a policy mutation drops *every* shard (policies affect all users);
- a preference mutation of user U drops exactly U's shard.

The :class:`~repro.tippers.preference_manager.PreferenceManager`
listener hooks additionally call :meth:`invalidate_user` eagerly so a
withdrawn user's rows are reclaimed without waiting for their next
request, and :meth:`invalidate_all` backs context changes (user
profiles feed ``ProfileCondition``, which is time-insensitive and hence
compiled into rows).

Equivalence
-----------

A row is compiled only when no candidate rule for the request is
time-sensitive -- the same exactness proof as the decision cache
(:func:`~repro.core.enforcement.cache.time_stable`) -- so a served row
is bit-for-bit what the reference interpreter would have produced:
same effect, granularity, reasons ordering, notify flag, and audit
record.  Brownout-noted decisions bypass the table in both directions,
and fail-closed denials are never compiled.  ``tests/differential``
holds the harness that proves this against the reference engine as
oracle.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from operator import attrgetter
from typing import Dict, Hashable, Optional, Tuple

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.enforcement.cache import time_stable
from repro.core.enforcement.engine import Decision, EnforcementEngine
from repro.core.policy.base import DataRequest
from repro.core.reasoner.resolution import resolve
from repro.errors import ReproError

_perf_counter = time.perf_counter
_tuple_new = tuple.__new__
#: One C call builds the whole row key (vs eight LOAD_ATTRs).
_row_key = attrgetter(
    "requester_id",
    "requester_kind",
    "phase",
    "category",
    "space_id",
    "purpose",
    "granularity",
    "sensor_type",
)
#: The serving key: subject first, then the row key.  The hit path
#: probes one flat dict with this 9-tuple; the per-subject shards only
#: do invalidation bookkeeping.
_flat_key = attrgetter(
    "subject_id",
    "requester_id",
    "requester_kind",
    "phase",
    "category",
    "space_id",
    "purpose",
    "granularity",
    "sensor_type",
)


class TableShard:
    """The compiled rows for one subject (or the subject-less shard)."""

    __slots__ = ("pref_version", "rows")

    def __init__(self, pref_version: int) -> None:
        #: The subject's preference counter at compile time; a mismatch
        #: against the store means this shard is stale.
        self.pref_version = pref_version
        #: row key -> (resolution, audit_tail, decisions_counter_inc)
        self.rows: Dict[Hashable, tuple] = {}


class CompiledEnforcementEngine(EnforcementEngine):
    """An enforcement engine serving repeat requests from compiled rows.

    Constructed via ``EnforcementEngine(compiled=True, ...)`` (the
    TIPPERS spelling) or directly.  ``shard_capacity`` bounds rows per
    shard (a full shard is recompiled from scratch); ``max_shards``
    bounds distinct subjects (FIFO eviction).
    """

    def __init__(
        self,
        *args: object,
        shard_capacity: int = 4096,
        max_shards: int = 16384,
        **kwargs: object,
    ) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if shard_capacity < 1:
            raise ValueError("shard_capacity must be positive")
        if max_shards < 1:
            raise ValueError("max_shards must be positive")
        self._shards: Dict[Optional[str], TableShard] = {}
        #: Flat serving table: ``_flat_key(request)`` -> row.  Always
        #: the union of every shard's rows (with the subject prefixed);
        #: every invalidation path keeps the two in lockstep.
        self._rows: Dict[Hashable, tuple] = {}
        # These dicts are mutated in place and never replaced, so their
        # bound ``get``s stay valid for the engine's lifetime; binding
        # them here drops attribute hops from the hit path.
        self._rows_get = self._rows.get
        self._shards_get = self._shards.get
        self._pref_version_of = self.store.preference_versions.get
        self._shard_capacity = shard_capacity
        self._max_shards = max_shards
        self._policy_version = self.store.policy_version
        self._store_version = self.store.version
        self._row_count = 0
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self._m_hits = self.metrics.counter(
            "enforcement_table_total", {"result": "hit"}
        )
        self._m_misses = self.metrics.counter(
            "enforcement_table_total", {"result": "miss"}
        )
        self._m_uncacheable = self.metrics.counter(
            "enforcement_table_total", {"result": "uncacheable"}
        )
        self._m_shards = self.metrics.gauge("enforcement_table_shards")
        self._m_rows = self.metrics.gauge("enforcement_table_rows")
        self._m_invalidations = self.metrics.counter(
            "enforcement_table_invalidations_total"
        )

    # The hit path inlines the append for a plain in-memory AuditLog
    # (subclasses -- e.g. the WAL-backed DurableAuditLog -- always get
    # their own ``append`` so no logging is bypassed); the property
    # setter keeps the bindings fresh if anyone swaps the log.  The
    # bound objects are stable for the log's lifetime: ``AuditLog``
    # never replaces its records list (trim is in place) or counters.
    @property
    def audit(self):  # type: ignore[override]
        return self._audit

    @audit.setter
    def audit(self, value) -> None:
        self._audit = value
        if type(value) is AuditLog:
            self._audit_records = value._records
            self._audit_capacity = value._capacity
            self._audit_m_appends = value._m_appends
            self._audit_m_records = value._m_records
        else:
            self._audit_records = None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(
        self, request: DataRequest, notes: Tuple[str, ...] = ()
    ) -> Decision:
        # Noted decisions (brownout-degraded responses) bypass the table
        # in both directions, exactly like the decision cache: a row
        # must not shed its degradation marker, and a marked resolution
        # must not be served later to an un-degraded request.
        if notes:
            return super().decide(request, notes)
        start = _perf_counter()
        store = self.store
        # One integer compare guards the whole table: ``store.version``
        # moves on every rule mutation, and ``_reconcile`` re-checks
        # the fine-grained counters only then.  The invariant between
        # mutations: every resident shard is valid.
        if store.version != self._store_version:
            self._reconcile()
        row = self._rows_get(_flat_key(request))
        if row is not None:
            self.hits += 1
            # Direct .value bumps (not .inc()) -- method-call
            # overhead is measurable at this path's budget.
            self._m_hits.value += 1
            record = _tuple_new(
                AuditRecord, (request.timestamp,) + row[1]
            )
            records = self._audit_records
            if (
                records is not None
                and len(records) < self._audit_capacity
            ):
                # Inlined AuditLog.append below-capacity branch
                # (same bumps, no trim possible).
                records.append(record)
                self._audit_m_appends.value += 1
                self._audit_m_records.value += 1
            else:
                self._audit.append(record)
            row[2].value += 1  # enforcement_decisions_total{effect=...}
            # A hit evaluates zero rules and skips the rules
            # histogram; enforcement_rules_evaluated measures
            # interpreter work only (see docs/BENCHMARKS.md).
            # The latency histogram update is inlined (same
            # arithmetic as Histogram.observe, which property
            # tests pin): the call overhead alone is ~10% of a
            # table hit.
            elapsed = _perf_counter() - start
            latency = self._m_latency
            latency.counts[
                bisect_left(latency.boundaries, elapsed)
            ] += 1
            latency.count += 1
            latency.sum += elapsed
            if latency.min is None or elapsed < latency.min:
                latency.min = elapsed
            if latency.max is None or elapsed > latency.max:
                latency.max = elapsed
            return _tuple_new(Decision, (request, row[0]))

        # Miss: run the reference interpreter, then compile the outcome.
        try:
            match = self._matcher.match(request)
        except ReproError as exc:
            # Fail-closed denials are transient by construction; they
            # are never compiled into the table.
            return self._fail_closed(request, exc, start)
        resolution = resolve(match, self.strategy)
        self._record(request, resolution)
        if time_stable(store, request):
            self.misses += 1
            self._m_misses.inc()
            subject = request.subject_id
            shard = self._shards_get(subject)
            if shard is None:
                shards = self._shards
                if len(shards) >= self._max_shards:
                    self._drop_shard(next(iter(shards)))
                shard = shards[subject] = TableShard(
                    self._pref_version_of(subject, 0)
                )
                self._m_shards.set(len(shards))
            if len(shard.rows) >= self._shard_capacity:
                self._clear_shard_rows(subject, shard)
            key = _row_key(request)
            row = shard.rows[key] = (
                resolution,
                (
                    request.requester_id,
                    request.phase,
                    request.category.value,
                    subject,
                    request.space_id,
                    resolution.effect,
                    resolution.granularity,
                    resolution.reasons,
                    resolution.notify_user,
                ),
                self._m_decisions[resolution.effect],
            )
            self._rows[(subject,) + key] = row
            self._row_count += 1
            self._m_rows.set(self._row_count)
        else:
            self.uncacheable += 1
            self._m_uncacheable.inc()
        self._note_decision(
            resolution,
            len(match.policies) + len(match.preferences),
            _perf_counter() - start,
        )
        return Decision(request=request, resolution=resolution)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _reconcile(self) -> None:
        """Re-validate every shard against the store's fine counters.

        Called when ``store.version`` moved since the last decide: a
        policy change drops everything, a preference change drops
        exactly the mutated users' shards.  Between calls, every
        resident shard is valid, so the hit path needs only the single
        ``store.version`` compare.
        """
        store = self.store
        if store.policy_version != self._policy_version:
            self._drop_all_shards()
            self._policy_version = store.policy_version
        else:
            pref_of = self._pref_version_of
            stale = [
                subject
                for subject, shard in self._shards.items()
                if shard.pref_version != pref_of(subject, 0)
            ]
            for subject in stale:
                self._drop_shard(subject)
        self._store_version = store.version

    def _clear_shard_rows(
        self, subject: Optional[str], shard: TableShard
    ) -> None:
        """Empty ``shard`` and its entries in the flat serving table."""
        rows = self._rows
        for key in shard.rows:
            del rows[(subject,) + key]
        self._row_count -= len(shard.rows)
        shard.rows.clear()

    def _drop_shard(self, subject: Optional[str]) -> None:
        shard = self._shards.pop(subject, None)
        if shard is not None:
            self._clear_shard_rows(subject, shard)
            self._m_invalidations.inc()
            self._m_shards.set(len(self._shards))
            self._m_rows.set(self._row_count)

    def _drop_all_shards(self) -> None:
        if self._shards:
            self._shards.clear()
            self._rows.clear()
            self._row_count = 0
            self._m_invalidations.inc()
            self._m_shards.set(0)
            self._m_rows.set(0)

    def invalidate_user(self, user_id: str) -> None:
        """Drop the compiled shard for ``user_id`` (no-op if absent).

        Wired to the preference manager's submit/withdraw listeners for
        eager reclamation; the per-decide version check would catch the
        staleness anyway.
        """
        self._drop_shard(user_id)

    def invalidate_all(self) -> None:
        """Drop every shard (context changed, e.g. user profiles)."""
        self._drop_all_shards()
        self._policy_version = self.store.policy_version
        self._store_version = self.store.version

    # ------------------------------------------------------------------
    # Serialization (see tables.py)
    # ------------------------------------------------------------------
    def export_table(self) -> Dict[str, object]:
        """The compiled table as a JSON-compatible dict."""
        from repro.core.enforcement.tables import export_table

        return export_table(self)

    def import_table(self, data: Dict[str, object]) -> int:
        """Adopt still-valid shards from an exported table."""
        from repro.core.enforcement.tables import import_table

        return import_table(self, data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_rows(self) -> int:
        return self._row_count

    @property
    def table_shards(self) -> int:
        return len(self._shards)

    def table_stats(self) -> dict:
        total = self.hits + self.misses + self.uncacheable
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hits / total if total else 0.0,
            "shards": len(self._shards),
            "rows": self._row_count,
        }
