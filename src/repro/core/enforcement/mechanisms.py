"""Privacy mechanisms: the "how" of enforcement.

Each mechanism transforms data so it conforms to a granted granularity
level.  They are pure functions (noise takes an explicit RNG) so their
behaviour is reproducible and property-testable.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.language.vocabulary import GranularityLevel
from repro.errors import EnforcementError
from repro.sensors.base import Observation
from repro.sensors.ontology import SensorOntology
from repro.spatial.model import SpaceType, SpatialModel

#: Which spatial level each granularity maps to when coarsening a
#: location: precise keeps the room, coarse reports the floor, building
#: and aggregate report the building.
_GRANULARITY_TO_SPACE_LEVEL = {
    GranularityLevel.COARSE: SpaceType.FLOOR,
    GranularityLevel.BUILDING: SpaceType.BUILDING,
    GranularityLevel.AGGREGATE: SpaceType.BUILDING,
}


def coarsen_space(
    space_id: Optional[str],
    level: GranularityLevel,
    spatial: Optional[SpatialModel],
) -> Optional[str]:
    """The space id reported at ``level``.

    PRECISE keeps the space; NONE hides it entirely; intermediate levels
    walk up the hierarchy.  Without a spatial model (or for spaces above
    the target level already) the original id is kept, which never
    reveals *more* than requested only when callers pass a model -- so a
    missing model falls back to hiding the space for non-precise levels.
    """
    if space_id is None or level is GranularityLevel.PRECISE:
        return space_id
    if level is GranularityLevel.NONE:
        return None
    if spatial is None or space_id not in spatial:
        return None
    target = _GRANULARITY_TO_SPACE_LEVEL[level]
    space = spatial.get(space_id)
    if space.space_type.granularity_rank <= target.granularity_rank:
        return space_id
    ancestor = spatial.ancestor_at_level(space_id, target)
    if ancestor is None:
        # No ancestor at the target level: report the coarsest ancestor.
        path = spatial.path_to_root(space_id)
        return path[-1].space_id
    return ancestor.space_id


def suppress_personal_fields(
    payload: Dict[str, object],
    personal_fields: Sequence[str],
    replacement: object = "[redacted]",
) -> Dict[str, object]:
    """A copy of ``payload`` with person-linked fields redacted."""
    return {
        key: (replacement if key in personal_fields else value)
        for key, value in payload.items()
    }


def degrade_observation(
    observation: Observation,
    level: GranularityLevel,
    spatial: Optional[SpatialModel] = None,
    ontology: Optional[SensorOntology] = None,
) -> Optional[Observation]:
    """``observation`` degraded to ``level``, or ``None`` when dropped.

    - PRECISE: returned unchanged.
    - COARSE: location coarsened to the floor.
    - BUILDING: location coarsened to the building.
    - AGGREGATE: additionally de-identified (subject dropped, personal
      payload fields redacted).
    - NONE: dropped entirely.
    """
    if level is GranularityLevel.NONE:
        return None
    if level is GranularityLevel.PRECISE:
        return observation
    space_id = coarsen_space(observation.space_id, level, spatial)
    payload = dict(observation.payload)
    subject_id = observation.subject_id
    if level is GranularityLevel.AGGREGATE:
        subject_id = None
        personal: List[str] = []
        if ontology is not None and observation.sensor_type in ontology:
            personal = ontology.get(observation.sensor_type).personal_fields
        payload = suppress_personal_fields(payload, personal)
    return Observation(
        observation_id=observation.observation_id,
        sensor_id=observation.sensor_id,
        sensor_type=observation.sensor_type,
        timestamp=observation.timestamp,
        space_id=space_id,
        payload=payload,
        subject_id=subject_id,
        granularity=level.value,
    )


def aggregate_counts(
    observations: Iterable[Observation],
    k: int = 3,
) -> Dict[str, int]:
    """Per-space counts, suppressing groups smaller than ``k``.

    A k-anonymity-style aggregate: spaces with fewer than ``k`` distinct
    subjects are omitted so small groups cannot be singled out.
    """
    if k < 1:
        raise EnforcementError("k must be >= 1")
    subjects_per_space: Dict[str, set] = {}
    for observation in observations:
        if observation.space_id is None or observation.subject_id is None:
            continue
        subjects_per_space.setdefault(observation.space_id, set()).add(
            observation.subject_id
        )
    return {
        space_id: len(subjects)
        for space_id, subjects in subjects_per_space.items()
        if len(subjects) >= k
    }


def laplace_noise(
    value: float,
    sensitivity: float = 1.0,
    epsilon: float = 1.0,
    rng: Optional[random.Random] = None,
) -> float:
    """``value`` plus Laplace(sensitivity/epsilon) noise.

    The classic differential-privacy perturbation used for numeric
    aggregates (e.g. noisy occupancy counts).  ``rng`` defaults to a
    deterministically seeded generator so repeated runs reproduce;
    pass your own for independent noise streams.
    """
    if epsilon <= 0:
        raise EnforcementError("epsilon must be positive")
    if sensitivity <= 0:
        raise EnforcementError("sensitivity must be positive")
    generator = rng if rng is not None else random.Random(0)
    scale = sensitivity / epsilon
    # Inverse-CDF sampling of the Laplace distribution.
    u = generator.random() - 0.5
    return value - scale * math.copysign(1.0, u) * math.log(1.0 - 2.0 * abs(u))


def noisy_counts(
    counts: Dict[str, int],
    epsilon: float = 1.0,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Laplace-noised per-space counts (sensitivity 1 each).

    ``rng`` defaults to a deterministically seeded generator.
    """
    generator = rng if rng is not None else random.Random(0)
    return {
        key: laplace_noise(float(value), 1.0, epsilon, generator)
        for key, value in sorted(counts.items())
    }
