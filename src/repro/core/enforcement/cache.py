"""Decision caching: the second Section V-C optimization.

Most requests in a building are repetitive -- the same service asking
for the same user's location with the same purpose, tick after tick.
:class:`CachingEnforcementEngine` memoizes resolutions keyed on every
request field except the timestamp, and remains *exact*:

- an entry is only written when no candidate rule for the request has a
  time-sensitive condition (so the timestamp provably cannot change the
  outcome), and
- the whole cache is invalidated whenever the rule store's version
  changes (a submitted preference takes effect immediately).

Every decision -- cached or not -- is still written to the audit log,
preserving the "every decision audited" invariant.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Hashable, Tuple

from repro.core.enforcement.engine import Decision, EnforcementEngine
from repro.core.policy.base import DataRequest
from repro.core.reasoner.index import RuleStore
from repro.core.reasoner.resolution import Resolution, resolve
from repro.errors import ReproError


def time_stable(store: RuleStore, request: DataRequest) -> bool:
    """True when no candidate rule's outcome depends on the timestamp.

    The exactness condition shared by the decision cache and the
    compiled table: a memoized resolution may only be reused when every
    candidate rule for the request is time-insensitive, so the
    timestamp provably cannot change the outcome.  A faulted re-fetch
    cannot prove safety; it reads as unstable rather than propagating.
    """
    try:
        for policy in store.candidate_policies(request):
            if policy.condition.time_sensitive:
                return False
        for preference in store.candidate_preferences(request):
            if preference.condition.time_sensitive:
                return False
    except ReproError:
        return False
    return True


class CachingEnforcementEngine(EnforcementEngine):
    """An enforcement engine with an exact decision cache."""

    def __init__(self, *args: object, cache_capacity: int = 50_000, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be positive")
        self._cache: "OrderedDict[Hashable, Resolution]" = OrderedDict()
        self._cache_capacity = cache_capacity
        self._cached_version = self.store.version
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self._m_hits = self.metrics.counter(
            "enforcement_cache_total", {"result": "hit"}
        )
        self._m_misses = self.metrics.counter(
            "enforcement_cache_total", {"result": "miss"}
        )
        self._m_uncacheable = self.metrics.counter(
            "enforcement_cache_total", {"result": "uncacheable"}
        )
        self._m_size = self.metrics.gauge("enforcement_cache_size")
        self._m_invalidations = self.metrics.counter(
            "enforcement_cache_invalidations_total"
        )

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def _key(request: DataRequest) -> Hashable:
        """Every request field except the timestamp (and attributes,
        which no rule consults)."""
        return (
            request.requester_id,
            request.requester_kind,
            request.phase,
            request.category,
            request.subject_id,
            request.space_id,
            request.purpose,
            request.granularity,
            request.sensor_type,
        )

    def _cacheable(self, request: DataRequest) -> bool:
        """True when no candidate rule's outcome depends on time."""
        return time_stable(self.store, request)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decide(
        self, request: DataRequest, notes: Tuple[str, ...] = ()
    ) -> Decision:
        # Noted decisions (brownout-degraded responses) bypass the cache
        # in both directions: a cached resolution must not shed its
        # degradation marker, and a marked resolution must not be served
        # later to an un-degraded request.
        if notes:
            return super().decide(request, notes)
        start = time.perf_counter()
        if self.store.version != self._cached_version:
            self._cache.clear()
            self._cached_version = self.store.version
            self._m_invalidations.inc()
            self._m_size.set(0)

        key = self._key(request)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._m_hits.inc()
            self._cache.move_to_end(key)
            self._record(request, cached)
            # A hit evaluates zero rules; that shows up honestly in the
            # rules-evaluated histogram.
            self._note_decision(cached, 0, time.perf_counter() - start)
            return Decision(request=request, resolution=cached)

        try:
            match = self._matcher.match(request)
        except ReproError as exc:
            # Fail-closed denials are transient by construction; they
            # are never written to the cache.
            return self._fail_closed(request, exc, start)
        resolution = resolve(match, self.strategy)
        self._record(request, resolution)
        if self._cacheable(request):
            self.misses += 1
            self._m_misses.inc()
            self._cache[key] = resolution
            if len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
            self._m_size.set(len(self._cache))
        else:
            self.uncacheable += 1
            self._m_uncacheable.inc()
        self._note_decision(
            resolution,
            len(match.policies) + len(match.preferences),
            time.perf_counter() - start,
        )
        return Decision(request=request, resolution=resolution)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def cache_stats(self) -> dict:
        total = self.hits + self.misses + self.uncacheable
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hits / total if total else 0.0,
            "size": len(self._cache),
        }
