"""The enforcement engine: the building's policy decision point.

One engine instance sits inside TIPPERS.  Sensor managers call
:meth:`EnforcementEngine.enforce_observation` on every reading before it
is stored (capture/storage phases); the request manager calls
:meth:`EnforcementEngine.decide` before answering service queries
(processing/sharing phases).  Every decision lands in the audit log.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, NamedTuple, Optional, Tuple

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.enforcement.mechanisms import degrade_observation
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import (
    DataRequest,
    DecisionPhase,
    Effect,
    RequesterKind,
)
from repro.core.policy.conditions import EvaluationContext
from repro.core.reasoner.index import PolicyIndex, RuleStore
from repro.core.reasoner.matcher import PolicyMatcher
from repro.core.reasoner.resolution import (
    Resolution,
    ResolutionStrategy,
    resolve,
)
from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.sensors.base import Observation
from repro.sensors.ontology import SensorOntology, default_ontology

#: The primary data category an observation of each sensor type yields,
#: used when turning raw observations into data requests at capture
#: time.  Extend (or override via the engine constructor) for custom
#: sensor types.
DEFAULT_SENSOR_CATEGORY: Dict[str, DataCategory] = {
    "wifi_access_point": DataCategory.LOCATION,
    "bluetooth_beacon": DataCategory.LOCATION,
    "camera": DataCategory.PRESENCE,
    "power_meter": DataCategory.ENERGY_USE,
    "temperature_sensor": DataCategory.TEMPERATURE,
    "motion_sensor": DataCategory.OCCUPANCY,
    "hvac_unit": DataCategory.TEMPERATURE,
    "id_card_reader": DataCategory.IDENTITY,
}

#: The purpose attached to capture-time requests per sensor type,
#: reflecting why the building runs that subsystem.
DEFAULT_SENSOR_PURPOSE: Dict[str, Purpose] = {
    "wifi_access_point": Purpose.EMERGENCY_RESPONSE,
    "bluetooth_beacon": Purpose.PROVIDING_SERVICE,
    "camera": Purpose.SECURITY,
    "power_meter": Purpose.ENERGY_MANAGEMENT,
    "temperature_sensor": Purpose.COMFORT,
    "motion_sensor": Purpose.COMFORT,
    "hvac_unit": Purpose.COMFORT,
    "id_card_reader": Purpose.ACCESS_CONTROL,
}


class Decision(NamedTuple):
    """A resolution plus the audit record it produced.

    A ``NamedTuple`` (not a dataclass) so the per-decision construction
    cost stays negligible on the compiled fast path.
    """

    request: DataRequest
    resolution: Resolution

    @property
    def allowed(self) -> bool:
        return self.resolution.allowed

    @property
    def granularity(self) -> GranularityLevel:
        return self.resolution.granularity


class EnforcementEngine:
    """Resolves and applies policies at every decision phase.

    Pass ``compiled=True`` to get a :class:`CompiledEnforcementEngine`
    (see ``enforcement/compiled.py``): same constructor, same decision
    semantics bit-for-bit, but repeat requests are served from a
    flattened per-user decision table instead of re-walking policy
    documents.  The plain class remains the reference interpreter the
    differential test harness treats as the oracle.
    """

    def __new__(cls, *args: object, **kwargs: object) -> "EnforcementEngine":
        if cls is EnforcementEngine and kwargs.get("compiled"):
            from repro.core.enforcement.compiled import (
                CompiledEnforcementEngine,
            )

            return super().__new__(CompiledEnforcementEngine)
        return super().__new__(cls)

    def __init__(
        self,
        store: Optional[RuleStore] = None,
        context: Optional[EvaluationContext] = None,
        strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
        ontology: Optional[SensorOntology] = None,
        sensor_categories: Optional[Dict[str, DataCategory]] = None,
        sensor_purposes: Optional[Dict[str, Purpose]] = None,
        audit: Optional[AuditLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        *,
        compiled: bool = False,
    ) -> None:
        self.store = store if store is not None else PolicyIndex()
        self.context = context if context is not None else EvaluationContext()
        self.strategy = strategy
        self.ontology = ontology if ontology is not None else default_ontology()
        self.sensor_categories = dict(DEFAULT_SENSOR_CATEGORY)
        if sensor_categories:
            self.sensor_categories.update(sensor_categories)
        self.sensor_purposes = dict(DEFAULT_SENSOR_PURPOSE)
        if sensor_purposes:
            self.sensor_purposes.update(sensor_purposes)
        self.audit = audit if audit is not None else AuditLog()
        self._matcher = PolicyMatcher(self.store, self.context)
        # Metric handles are resolved once here; decide() only touches
        # plain attributes so instrumentation stays off the profile.
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_decisions = {
            effect: self.metrics.counter(
                "enforcement_decisions_total", {"effect": effect.value}
            )
            for effect in Effect
        }
        self._m_rules = self.metrics.histogram(
            "enforcement_rules_evaluated", boundaries=DEFAULT_COUNT_BUCKETS
        )
        self._m_latency = self.metrics.histogram("enforcement_decide_seconds")
        self._m_failclosed = self.metrics.counter("enforcement_failclosed_total")

    # ------------------------------------------------------------------
    # Query-path enforcement (steps 9-10 of Figure 1)
    # ------------------------------------------------------------------
    def decide(
        self, request: DataRequest, notes: Tuple[str, ...] = ()
    ) -> Decision:
        """Resolve ``request`` and record the outcome.

        When the policy-fetch path itself fails (the rule store is
        unreachable or faulted), the engine *fails closed*: the request
        is denied, the denial is audited, and
        ``enforcement_failclosed_total`` is incremented.  An outage must
        never widen access.

        ``notes`` are appended to the resolution's reasons and hence to
        the audit record -- the overload layer uses them to mark every
        brownout-degraded response, so a coarsened answer is never
        indistinguishable from a precisely-served one in the audit
        trail.
        """
        start = time.perf_counter()
        try:
            match = self._matcher.match(request)
        except ReproError as exc:
            return self._fail_closed(request, exc, start, notes)
        resolution = resolve(match, self.strategy)
        if notes:
            resolution = dataclasses.replace(
                resolution, reasons=resolution.reasons + notes
            )
            self.metrics.counter("brownout_audited_total").inc()
        self._record(request, resolution)
        self._note_decision(
            resolution,
            len(match.policies) + len(match.preferences),
            time.perf_counter() - start,
        )
        return Decision(request=request, resolution=resolution)

    # ------------------------------------------------------------------
    # Capture-path enforcement (steps 2-3 of Figure 1)
    # ------------------------------------------------------------------
    def request_for_observation(
        self, observation: Observation, phase: DecisionPhase
    ) -> DataRequest:
        """The data request implied by capturing/storing ``observation``."""
        category = self.sensor_categories.get(
            observation.sensor_type, DataCategory.ACTIVITY
        )
        purpose = self.sensor_purposes.get(observation.sensor_type)
        return DataRequest(
            requester_id="building",
            requester_kind=RequesterKind.BUILDING,
            phase=phase,
            category=category,
            subject_id=observation.subject_id,
            space_id=observation.space_id,
            timestamp=observation.timestamp,
            purpose=purpose,
            granularity=GranularityLevel.PRECISE,
            sensor_type=observation.sensor_type,
        )

    def enforce_observation(
        self,
        observation: Observation,
        phase: DecisionPhase = DecisionPhase.STORAGE,
    ) -> Optional[Observation]:
        """``observation`` as it may be stored, or ``None`` if dropped.

        Non-attributable observations about nobody (ambient temperature)
        still pass through policy resolution -- the building must have a
        policy authorizing their collection -- but no user preference
        can apply to them.
        """
        request = self.request_for_observation(observation, phase)
        decision = self.decide(request)
        if not decision.allowed:
            return None
        return degrade_observation(
            observation,
            decision.granularity,
            spatial=self.context.spatial,
            ontology=self.ontology,
        )

    def audit_degraded_denial(
        self,
        method: str,
        exc: Exception,
        now: float,
        subject_id: Optional[str] = None,
    ) -> Tuple[str, ...]:
        """Audit a denial issued because a query's backing store faulted.

        The request manager denies (never best-efforts) when inference
        or the datastore raises mid-query; that denial must be exactly
        as visible in the audit trail as a policy denial, or the
        transparency story has a hole precisely where the system is
        least healthy.  Returns the reasons for the denied response.
        """
        reasons = ("degraded: %s" % exc, "fail-closed deny")
        self.audit.append(
            AuditRecord(
                timestamp=now,
                requester_id="building",
                phase=DecisionPhase.SHARING,
                category="degraded:%s" % method,
                subject_id=subject_id,
                space_id=None,
                effect=Effect.DENY,
                granularity=GranularityLevel.NONE,
                reasons=reasons,
                notify_user=False,
            )
        )
        return reasons

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fail_closed(
        self,
        request: DataRequest,
        exc: ReproError,
        start: float,
        notes: Tuple[str, ...] = (),
    ) -> Decision:
        """Deny, audit, and count a decision whose policy fetch failed."""
        resolution = Resolution(
            effect=Effect.DENY,
            granularity=GranularityLevel.NONE,
            notify_user=False,
            reasons=("policy fetch failed: %s" % exc, "fail-closed deny")
            + notes,
        )
        self._record(request, resolution)
        self._m_failclosed.inc()
        self._note_decision(resolution, 0, time.perf_counter() - start)
        return Decision(request=request, resolution=resolution)

    def _note_decision(
        self, resolution: Resolution, rules_evaluated: int, elapsed_s: float
    ) -> None:
        """Update decision metrics (shared with the caching subclass)."""
        self._m_decisions[resolution.effect].inc()
        self._m_rules.observe(rules_evaluated)
        self._m_latency.observe(elapsed_s)

    def _record(self, request: DataRequest, resolution: Resolution) -> None:
        self.audit.append(
            AuditRecord(
                timestamp=request.timestamp,
                requester_id=request.requester_id,
                phase=request.phase,
                category=request.category.value,
                subject_id=request.subject_id,
                space_id=request.space_id,
                effect=resolution.effect,
                granularity=resolution.granularity,
                reasons=resolution.reasons,
                notify_user=resolution.notify_user,
            )
        )
