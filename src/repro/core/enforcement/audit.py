"""Append-only audit log of enforcement decisions.

Every decision the engine takes is recorded, so users (through their
IoTA) and building admins can review what happened to the data -- the
transparency half of the paper's accountability story.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DataRequest, DecisionPhase, Effect
from repro.obs.metrics import MetricsRegistry, get_registry


class AuditRecord(NamedTuple):
    """One enforcement decision, flattened for storage.

    A ``NamedTuple`` rather than a dataclass: the enforcement hot path
    constructs one record per decision, and tuple construction is an
    order of magnitude cheaper than frozen-dataclass ``__init__``.  The
    field order is part of the compiled-table layout (see
    ``enforcement/compiled.py``): a cached row stores the tail of this
    tuple (everything after ``timestamp``) precomputed.
    """

    timestamp: float
    requester_id: str
    phase: DecisionPhase
    category: str
    subject_id: Optional[str]
    space_id: Optional[str]
    effect: Effect
    granularity: GranularityLevel
    reasons: Tuple[str, ...]
    notify_user: bool

    @property
    def allowed(self) -> bool:
        return self.effect is Effect.ALLOW


class AuditLog:
    """In-memory audit log with query helpers.

    ``capacity`` bounds memory: once full, the oldest half is discarded
    (coarse but O(1) amortized), with ``dropped`` counting the loss.
    """

    def __init__(
        self, capacity: int = 100_000, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self._records: List[AuditRecord] = []
        self._capacity = capacity
        self.dropped = 0
        registry = metrics if metrics is not None else get_registry()
        self._m_appends = registry.counter("audit_appends_total")
        self._m_dropped = registry.counter("audit_dropped_total")
        self._m_records = registry.gauge("audit_records")

    def append(self, record: AuditRecord) -> None:
        records = self._records
        if len(records) >= self._capacity:
            keep = self._capacity // 2
            trimmed = len(records) - keep
            self.dropped += trimmed
            self._m_dropped.inc(trimmed)
            # Trim in place: the list's identity is stable for the
            # log's lifetime, which the compiled engine's hit path
            # relies on (it binds the list once per log).
            del records[:trimmed]
        records.append(record)
        # Direct attribute bumps (not .inc()/.set()) keep this on the
        # compiled fast path's budget; semantics are identical.
        self._m_appends.value += 1
        self._m_records.value = len(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(
        self,
        subject_id: Optional[str] = None,
        requester_id: Optional[str] = None,
        phase: Optional[DecisionPhase] = None,
        predicate: Optional[Callable[[AuditRecord], bool]] = None,
    ) -> List[AuditRecord]:
        """Records matching every provided filter."""
        result = []
        for record in self._records:
            if subject_id is not None and record.subject_id != subject_id:
                continue
            if requester_id is not None and record.requester_id != requester_id:
                continue
            if phase is not None and record.phase is not phase:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def denials(self, subject_id: Optional[str] = None) -> List[AuditRecord]:
        return self.records(
            subject_id=subject_id, predicate=lambda r: r.effect is Effect.DENY
        )

    def notifications_pending(self, subject_id: str) -> List[AuditRecord]:
        """Records whose outcome the subject should be told about."""
        return self.records(subject_id=subject_id, predicate=lambda r: r.notify_user)

    def summary(self) -> Dict[str, int]:
        """Counts by outcome, for dashboards and benchmarks."""
        counts: Counter = Counter()
        for record in self._records:
            counts[record.effect.value] += 1
            if record.allowed and record.granularity is not GranularityLevel.PRECISE:
                counts["degraded"] += 1
            if record.notify_user:
                counts["notify"] += 1
        counts["total"] = len(self._records)
        counts["dropped"] = self.dropped
        return dict(counts)
