"""The paper's primary contribution.

- :mod:`repro.core.language` -- the machine-readable policy language
  (Section IV): schema, vocabulary, durations, documents, builders.
- :mod:`repro.core.policy` -- typed building policies, user
  preferences, conditions, and settings spaces (Section III).
- :mod:`repro.core.reasoner` -- matching, conflict detection and
  resolution, and the policy index (Sections III-B and V-C).
- :mod:`repro.core.enforcement` -- the runtime engine that applies
  resolved policies at capture, storage, processing, and sharing time
  (Section V-C).
"""
