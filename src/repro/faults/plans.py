"""Named fault plans shipped with the chaos harness.

Each builder returns a fresh :class:`~repro.faults.plan.FaultPlan` for
a seed, so ``python -m repro chaos --plan lossy --seed 7`` and the chaos
test suite agree on what a plan means.  Windows are expressed in
logical steps (see :mod:`repro.faults.plan`); the registry/TIPPERS
target names match the chaos scenario's endpoints (``irr-1``,
``tippers``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import FaultError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec


def _lossy(seed: int) -> FaultPlan:
    """A flaky network: random drops plus periodic latency spikes."""
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.DROP, rate=0.25),
            FaultSpec(kind=FaultKind.LATENCY, every=7, latency_s=0.05),
        ],
        seed=seed,
        name="lossy",
    )


def _flaky_registry(seed: int) -> FaultPlan:
    """The IRR flaps: offline on a third of the steps, lossy otherwise."""
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.CRASH, target="irr-1", every=3),
            FaultSpec(kind=FaultKind.DROP, target="irr-1", rate=0.25),
        ],
        seed=seed,
        name="flaky-registry",
    )


def _datastore_brownout(seed: int) -> FaultPlan:
    """Periodic write failures on inserts and erasures."""
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="insert", every=4),
            FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="forget", rate=0.5),
        ],
        seed=seed,
        name="datastore-brownout",
    )


def _policy_outage(seed: int) -> FaultPlan:
    """The rule store goes dark for a window, then flickers."""
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, start=5, stop=60),
            FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, start=60, every=3),
        ],
        seed=seed,
        name="policy-outage",
    )


def _monkey(seed: int) -> FaultPlan:
    """A little of everything, for the full-pipeline chaos run."""
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.DROP, rate=0.2),
            FaultSpec(kind=FaultKind.CORRUPT, every=11, phase=3),
            FaultSpec(kind=FaultKind.LATENCY, every=5, phase=1, latency_s=0.02),
            FaultSpec(kind=FaultKind.CRASH, target="irr-1", every=13, phase=5),
            FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="insert", every=9),
            FaultSpec(kind=FaultKind.SENSOR_STALL, every=6, phase=2),
            FaultSpec(kind=FaultKind.POLICY_FETCH_FAIL, every=4, phase=1),
        ],
        seed=seed,
        name="monkey",
    )


def _torn_storage(seed: int) -> FaultPlan:
    """A torn write mid-run: the WAL loses the record being written.

    The window ``start=200`` (no schedule, no rate) fires on the first
    WAL append at or past logical step 200 -- step numbers are shared
    across sites, so an exact ``at_steps`` might never land on a WAL
    append.  A sprinkle of plain write failures keeps the degraded-path
    accounting honest before the crash.
    """
    return FaultPlan(
        [
            FaultSpec(kind=FaultKind.STORE_WRITE_FAIL, target="insert", every=37),
            FaultSpec(kind=FaultKind.TORN_WRITE, start=200),
        ],
        seed=seed,
        name="torn-storage",
    )


def _crashy_storage(seed: int) -> FaultPlan:
    """A crash just after an append: the frame is durable, memory is not."""
    return FaultPlan(
        [FaultSpec(kind=FaultKind.CRASH_MID_APPEND, start=260)],
        seed=seed,
        name="crashy-storage",
    )


def _rush_hour(seed: int) -> FaultPlan:
    """Morning rush: arrival bursts flood the building's topic queues.

    A sustained burst window drives the admission queues over the high
    watermark (brownout) and, at its peak, past the hard shed
    watermark -- DEFERRABLE traffic sheds, NORMAL queries serve coarser
    answers, CRITICAL calls must all still land.  One access point also
    stalls through the early window, so the sensor health supervisor
    quarantines and later re-admits it.
    """
    return FaultPlan(
        [
            FaultSpec(
                kind=FaultKind.OVERLOAD_BURST,
                start=10,
                stop=600,
                every=2,
                magnitude=2,
            ),
            FaultSpec(
                kind=FaultKind.OVERLOAD_BURST,
                start=120,
                stop=360,
                rate=0.5,
                magnitude=3,
            ),
            FaultSpec(kind=FaultKind.SENSOR_STALL, target="ap-01", stop=400),
        ],
        seed=seed,
        name="rush-hour",
    )


def _campus_storm(seed: int) -> FaultPlan:
    """A bad day for the campus: rush-hour load plus a shard crash.

    Overload bursts stress the shared admission layer (DEFERRABLE
    discovery sheds, CRITICAL policy fetches must all land), a
    mid-append crash takes one building's WAL-backed shard down hard,
    and a stalled access point exercises the quarantine path in a
    building that roamers are visiting.
    """
    return FaultPlan(
        [
            FaultSpec(
                kind=FaultKind.OVERLOAD_BURST,
                start=10,
                stop=3000,
                every=2,
                magnitude=3,
            ),
            FaultSpec(
                kind=FaultKind.OVERLOAD_BURST,
                start=200,
                stop=2400,
                rate=0.6,
                magnitude=4,
            ),
            FaultSpec(kind=FaultKind.CRASH_MID_APPEND, start=260),
            FaultSpec(kind=FaultKind.SENSOR_STALL, target="ap-01", stop=300),
        ],
        seed=seed,
        name="campus-storm",
    )


def _ring_change(seed: int) -> FaultPlan:
    """An elastic-membership day: rebalance under partition and crash.

    The rebalance scenario installs *only* the migration plane on its
    injector, so logical steps count migration-step consults exactly:
    three per migration (copy, import acknowledgement, finalize), in
    plan order.  The windows below are therefore scale-independent, as
    long as the first wave migrates at least three users: steps 3-5 are
    the second migration (its finalize acknowledgement partitions away,
    leaving the user mid-flight and fail-closed until the coordinator
    retries), and step 7 is the third migration's import
    acknowledgement -- the destination shard dies *after* its WAL
    journaled ``committed``, so resumption must take the replay-proved
    finalize-only path.  Every later consult falls past both windows and
    runs clean.
    """
    return FaultPlan(
        [
            FaultSpec(
                kind=FaultKind.CUTOVER_PARTITION,
                target="finalize",
                start=5,
                stop=6,
            ),
            FaultSpec(
                kind=FaultKind.CRASH_MID_MIGRATION,
                target="import",
                start=7,
                stop=8,
            ),
        ],
        seed=seed,
        name="ring-change",
    )


_BUILDERS: Dict[str, Callable[[int], FaultPlan]] = {
    "campus-storm": _campus_storm,
    "ring-change": _ring_change,
    "lossy": _lossy,
    "flaky-registry": _flaky_registry,
    "datastore-brownout": _datastore_brownout,
    "policy-outage": _policy_outage,
    "monkey": _monkey,
    "torn-storage": _torn_storage,
    "crashy-storage": _crashy_storage,
    "rush-hour": _rush_hour,
}


def named_plans() -> Tuple[str, ...]:
    """The names ``build_plan`` accepts, stable order."""
    return tuple(sorted(_BUILDERS))


def build_plan(name: str, seed: int = 0) -> FaultPlan:
    """A fresh instance of the named plan (fresh RNG state)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise FaultError(
            "unknown fault plan %r (have: %s)" % (name, ", ".join(named_plans()))
        ) from None
    return builder(seed)


def describe_plans() -> List[str]:
    """One human-readable line per shipped plan, for the CLI.

    Each line carries the plan's spec count, fault kinds, and the first
    line of its builder's docstring, so ``python -m repro chaos --list``
    explains a plan without the reader opening this file.
    """
    lines = []
    for name in named_plans():
        builder = _BUILDERS[name]
        plan = builder(0)
        kinds = sorted({spec.kind.value for spec in plan.specs})
        doc = (builder.__doc__ or "").strip().splitlines()
        summary = doc[0].strip() if doc else ""
        line = "%s: %d spec(s) [%s]" % (name, len(plan), ", ".join(kinds))
        if summary:
            line += " -- %s" % summary
        lines.append(line)
    return lines
