"""Deterministic fault plans and the traces they produce.

A :class:`FaultPlan` is a seeded schedule of faults over *logical
steps*: the injector advances one step per intercepted operation (a bus
transport attempt, a datastore write, a sensor sample, a policy fetch),
and each :class:`FaultSpec` decides -- purely from the step number, its
target selector, and the plan's seeded RNG -- whether it fires there.
Two runs that perform the same operations under the same plan therefore
fire the same faults at the same steps and produce byte-identical
:class:`FaultTrace` text, which is the property the chaos regression
suite pins.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import FaultError


class FaultKind(enum.Enum):
    """The taxonomy of injectable faults (see docs/RESILIENCE.md)."""

    DROP = "drop"
    """Bus: the message is lost in transit."""

    LATENCY = "latency"
    """Bus: a simulated latency spike is charged to the attempt."""

    CORRUPT = "corrupt"
    """Bus: the payload is mangled so decoding fails."""

    CRASH = "crash"
    """Bus: the target endpoint is offline while the spec is active;
    the window's end is the restart."""

    STORE_WRITE_FAIL = "store_write_fail"
    """Datastore: a write (insert or erasure) fails."""

    SENSOR_STALL = "sensor_stall"
    """Sensors: the sensor produces no observations this sample."""

    POLICY_FETCH_FAIL = "policy_fetch_fail"
    """Rule store: fetching candidate policies fails (the enforcement
    engine must fail closed)."""

    TORN_WRITE = "torn_write"
    """WAL: the process crashes mid-write, leaving a partial frame on
    disk; the record is lost and recovery truncates the tear."""

    CRASH_MID_APPEND = "crash_mid_append"
    """WAL: the process crashes after the frame is durable but before
    the in-memory apply; recovery replays the record."""

    OVERLOAD_BURST = "overload_burst"
    """Admission: ``magnitude`` phantom arrivals land in the target's
    topic queue, driving its load toward the watermarks."""

    CRASH_MID_MIGRATION = "crash_mid_migration"
    """Rebalance: the shard executing the current migration step
    crashes (source on ``copy``/``finalize``, destination on
    ``import``); WAL replay must resume or roll back the migration."""

    CUTOVER_PARTITION = "cutover_partition"
    """Rebalance: the cross-shard link is partitioned at the current
    migration step; the step is skipped, the user stays mid-migration
    (fail-closed), and the coordinator retries after the window."""


#: Which fault kinds each injection site consumes.
BUS_KINDS = frozenset(
    {FaultKind.DROP, FaultKind.LATENCY, FaultKind.CORRUPT, FaultKind.CRASH}
)
DATASTORE_KINDS = frozenset({FaultKind.STORE_WRITE_FAIL})
SENSOR_KINDS = frozenset({FaultKind.SENSOR_STALL})
POLICY_KINDS = frozenset({FaultKind.POLICY_FETCH_FAIL})
WAL_KINDS = frozenset({FaultKind.TORN_WRITE, FaultKind.CRASH_MID_APPEND})
ADMISSION_KINDS = frozenset({FaultKind.OVERLOAD_BURST})
MIGRATION_KINDS = frozenset(
    {FaultKind.CRASH_MID_MIGRATION, FaultKind.CUTOVER_PARTITION}
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Scheduling composes three deterministic triggers inside the active
    window ``[start, stop)``:

    - ``at_steps`` -- fire at exactly these logical steps;
    - ``every``/``phase`` -- fire when ``step % every == phase % every``;
    - ``rate`` -- fire with this probability, drawn from the *plan's*
      seeded RNG (deterministic given the operation sequence).

    A spec with none of the three fires on **every** step in its window
    (the idiom for crash windows).  ``target`` selects what the fault
    applies to -- an endpoint name, sensor id/type, datastore operation
    (``insert``/``forget``), or ``"*"`` for everything at the site.
    """

    kind: FaultKind
    target: str = "*"
    at_steps: Tuple[int, ...] = ()
    every: int = 0
    phase: int = 0
    start: int = 0
    stop: Optional[int] = None
    rate: float = 0.0
    latency_s: float = 0.0
    magnitude: int = 0

    def __post_init__(self) -> None:
        if self.every < 0:
            raise FaultError("every must be non-negative")
        if self.start < 0:
            raise FaultError("start must be non-negative")
        if self.stop is not None and self.stop <= self.start:
            raise FaultError("stop must be greater than start")
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError("rate must lie in [0, 1]")
        if self.latency_s < 0:
            raise FaultError("latency_s must be non-negative")
        if self.kind is FaultKind.LATENCY and self.latency_s == 0:
            raise FaultError("a latency fault needs latency_s > 0")
        if self.magnitude < 0:
            raise FaultError("magnitude must be non-negative")
        if self.kind is FaultKind.OVERLOAD_BURST and self.magnitude == 0:
            raise FaultError("an overload_burst fault needs magnitude > 0")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def matches_target(self, candidates: Sequence[str]) -> bool:
        return self.target == "*" or self.target in candidates

    def in_window(self, step: int) -> bool:
        if step < self.start:
            return False
        return self.stop is None or step < self.stop

    @property
    def unconditional(self) -> bool:
        """Fires on every in-window step (no schedule, no rate)."""
        return not self.at_steps and not self.every and not self.rate

    def scheduled_at(self, step: int) -> bool:
        """The deterministic (non-rate) part of the trigger."""
        if step in self.at_steps:
            return True
        if self.every and step % self.every == self.phase % self.every:
            return True
        return self.unconditional

    # ------------------------------------------------------------------
    # Serialization (docs/RESILIENCE.md carries a JSON example)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind.value, "target": self.target}
        if self.at_steps:
            data["at_steps"] = list(self.at_steps)
        if self.every:
            data["every"] = self.every
            data["phase"] = self.phase
        if self.start:
            data["start"] = self.start
        if self.stop is not None:
            data["stop"] = self.stop
        if self.rate:
            data["rate"] = self.rate
        if self.latency_s:
            data["latency_s"] = self.latency_s
        if self.magnitude:
            data["magnitude"] = self.magnitude
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultError("bad fault spec kind: %s" % exc) from None
        return cls(
            kind=kind,
            target=str(data.get("target", "*")),
            at_steps=tuple(int(s) for s in data.get("at_steps", ())),
            every=int(data.get("every", 0)),
            phase=int(data.get("phase", 0)),
            start=int(data.get("start", 0)),
            stop=None if data.get("stop") is None else int(data["stop"]),
            rate=float(data.get("rate", 0.0)),
            latency_s=float(data.get("latency_s", 0.0)),
            magnitude=int(data.get("magnitude", 0)),
        )


class FaultPlan:
    """A named, seeded collection of fault specs.

    The plan owns the RNG behind rate-based specs, so the full fault
    sequence is a function of ``(seed, operation sequence)`` alone.
    """

    def __init__(
        self, specs: Iterable[FaultSpec], seed: int = 0, name: str = "custom"
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.name = name
        self._rng = random.Random(seed)

    def __len__(self) -> int:
        return len(self.specs)

    def matching(
        self, step: int, kinds: frozenset, targets: Sequence[str]
    ) -> List[FaultSpec]:
        """The specs that fire at ``step`` for one of ``targets``.

        Rate draws happen here, one per eligible rate-spec, in spec
        order -- deterministic for a fixed operation sequence.
        """
        fired: List[FaultSpec] = []
        for spec in self.specs:
            if spec.kind not in kinds:
                continue
            if not spec.matches_target(targets):
                continue
            if not spec.in_window(step):
                continue
            if spec.scheduled_at(step):
                fired.append(spec)
            elif spec.rate and self._rng.random() < spec.rate:
                fired.append(spec)
        return fired

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError("fault plan must be a JSON object")
        specs = data.get("specs")
        if not isinstance(specs, list) or not specs:
            raise FaultError("fault plan needs a non-empty 'specs' list")
        return cls(
            specs=[FaultSpec.from_dict(entry) for entry in specs],
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "custom")),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    step: int
    site: str
    kind: str
    target: str
    detail: str = ""

    def line(self) -> str:
        suffix = " %s" % self.detail if self.detail else ""
        return "step=%06d site=%s kind=%s target=%s%s" % (
            self.step, self.site, self.kind, self.target, suffix,
        )


@dataclass
class FaultTrace:
    """The ordered record of every injected fault in one run."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(
        self, step: int, site: str, kind: FaultKind, target: str, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(
            step=step, site=site, kind=kind.value, target=target, detail=detail
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def lines(self) -> List[str]:
        return [event.line() for event in self.events]

    def to_text(self) -> str:
        """A stable textual rendering; byte-identical across seeded runs."""
        return "".join(line + "\n" for line in self.lines())

    def counts(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for event in self.events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return by_kind
