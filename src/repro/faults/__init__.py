"""Deterministic fault injection for the Figure-1 pipeline.

Compose a seeded :class:`FaultPlan` out of :class:`FaultSpec` entries
(or pick a shipped one with :func:`build_plan`), hand it to a
:class:`FaultInjector`, and install the injector on the components
under test.  Every fault that fires is recorded in a
:class:`FaultTrace` whose text rendering is byte-identical across runs
with the same seed and operation sequence.
"""

from repro.faults.injector import FaultInjector, single_spec_plan
from repro.faults.plan import (
    ADMISSION_KINDS,
    BUS_KINDS,
    DATASTORE_KINDS,
    MIGRATION_KINDS,
    POLICY_KINDS,
    SENSOR_KINDS,
    WAL_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTrace,
)
from repro.faults.plans import build_plan, describe_plans, named_plans

__all__ = [
    "ADMISSION_KINDS",
    "BUS_KINDS",
    "DATASTORE_KINDS",
    "MIGRATION_KINDS",
    "POLICY_KINDS",
    "SENSOR_KINDS",
    "WAL_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTrace",
    "build_plan",
    "describe_plans",
    "named_plans",
    "single_spec_plan",
]
