"""The fault injector: installs a plan's faults onto live components.

The injector owns one global *logical step* counter, advanced once per
intercepted operation (bus transport attempt, datastore write, sensor
sample, policy fetch).  Each interception consults the plan at the
current step and, when a spec fires, records a :class:`FaultEvent` and
applies the fault *inside the component's own accounting* -- a dropped
bus message goes through the same counters as organic loss, a failed
write raises the same :class:`~repro.errors.StorageError` a real
backend would.

Call sites never change: components expose ``install_fault_plane`` /
``remove_fault_plane`` hooks and the injector plugs into them.  The
only wrap-style hook is the policy store's ``candidate_policies``,
replaced by an instance attribute so the enforcement engine's
fail-closed path can be exercised without the core layer knowing about
faults.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import FaultError, StorageError
from repro.faults.plan import (
    ADMISSION_KINDS,
    BUS_KINDS,
    DATASTORE_KINDS,
    MIGRATION_KINDS,
    POLICY_KINDS,
    SENSOR_KINDS,
    WAL_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultTrace,
)
from repro.net.bus import BusFault, MessageBus


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to components."""

    def __init__(self, plan: FaultPlan, trace: Optional[FaultTrace] = None) -> None:
        self.plan = plan
        self.trace = trace if trace is not None else FaultTrace()
        self._step = 0
        self._buses: List[MessageBus] = []
        self._datastores: List[Any] = []
        self._subsystems: List[Any] = []
        self._policy_stores: List[Tuple[Any, Any]] = []
        self._storage_engines: List[Any] = []
        self._admission_controllers: List[Any] = []
        self._rebalancers: List[Any] = []

    @property
    def step(self) -> int:
        """The next logical step number (operations intercepted so far)."""
        return self._step

    def _advance(self) -> int:
        step = self._step
        self._step += 1
        return step

    # ------------------------------------------------------------------
    # Site planes
    # ------------------------------------------------------------------
    def _bus_plane(self, target: str, method: str) -> Optional[BusFault]:
        """Transport plane: one step per bus attempt."""
        step = self._advance()
        fired = self.plan.matching(step, BUS_KINDS, (target, method))
        if not fired:
            return None
        fault = BusFault()
        for spec in fired:
            detail = "method=%s" % method
            if spec.kind is FaultKind.DROP:
                fault = fault.merge(BusFault(drop="injected by plan %r" % self.plan.name))
            elif spec.kind is FaultKind.CRASH:
                fault = fault.merge(BusFault(offline="crashed by plan %r" % self.plan.name))
            elif spec.kind is FaultKind.CORRUPT:
                fault = fault.merge(BusFault(corrupt=True))
            elif spec.kind is FaultKind.LATENCY:
                fault = fault.merge(BusFault(latency_s=spec.latency_s))
                detail += " latency_s=%.3f" % spec.latency_s
            else:  # pragma: no cover - BUS_KINDS filters the rest out
                raise FaultError("unexpected bus fault kind %r" % spec.kind)
            self.trace.record(step, "bus", spec.kind, target, detail)
        return fault

    def _datastore_plane(self, op: str, detail: str) -> bool:
        """Storage plane: one step per write; True fails the write."""
        step = self._advance()
        fired = self.plan.matching(step, DATASTORE_KINDS, (op, detail))
        for spec in fired:
            self.trace.record(step, "datastore", spec.kind, op, "detail=%s" % detail)
        return bool(fired)

    def _wal_plane(self, op: str, record_type: str) -> Optional[str]:
        """Durability plane: one step per WAL append.

        Returning a kind value makes the log crash the simulated
        process (see :data:`repro.storage.wal.WalPlane`); the WAL
        decides whether the frame lands partially (``torn_write``) or
        completely (``crash_mid_append``).
        """
        step = self._advance()
        fired = self.plan.matching(step, WAL_KINDS, (op, record_type))
        if not fired:
            return None
        spec = fired[0]
        self.trace.record(step, "wal", spec.kind, record_type or op)
        return spec.kind.value

    def _admission_plane(self, target: str, method: str) -> Optional[int]:
        """Overload plane: one step per admission check.

        Returns the number of phantom arrivals to inject into the
        target's topic queue (the sum of fired specs' magnitudes), or
        ``None`` when no burst fires.
        """
        step = self._advance()
        fired = self.plan.matching(step, ADMISSION_KINDS, (target, method))
        if not fired:
            return None
        burst = 0
        for spec in fired:
            burst += spec.magnitude
            self.trace.record(
                step,
                "admission",
                spec.kind,
                target,
                "method=%s magnitude=%d" % (method, spec.magnitude),
            )
        return burst

    def _migration_plane(self, op: str, target: str) -> Tuple[str, ...]:
        """Rebalance plane: one step per migration step boundary.

        ``op`` is the migration step about to run (``copy``, ``import``,
        ``finalize``) and ``target`` the migrating user.  Returns the
        fired kind values; the coordinator turns ``crash_mid_migration``
        into a :class:`~repro.errors.SimulatedCrash` of the shard
        executing the step and ``cutover_partition`` into a skipped,
        retried-later step (the user stays mid-migration, fail-closed).
        """
        step = self._advance()
        fired = self.plan.matching(step, MIGRATION_KINDS, (op, target))
        for spec in fired:
            self.trace.record(
                step, "rebalance", spec.kind, op, "user=%s" % target
            )
        return tuple(spec.kind.value for spec in fired)

    def _sensor_plane(self, sensor: Any) -> bool:
        """Sensing plane: one step per sensor sample; True stalls it."""
        step = self._advance()
        fired = self.plan.matching(
            step, SENSOR_KINDS, (sensor.sensor_id, sensor.sensor_type)
        )
        for spec in fired:
            self.trace.record(step, "sensors", spec.kind, sensor.sensor_id)
        return bool(fired)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install_bus(self, bus: MessageBus) -> None:
        bus.install_fault_plane(self._bus_plane)
        self._buses.append(bus)

    def install_datastore(self, datastore: Any) -> None:
        datastore.install_fault_plane(self._datastore_plane)
        self._datastores.append(datastore)

    def install_subsystem(self, subsystem: Any) -> None:
        subsystem.install_fault_plane(self._sensor_plane)
        self._subsystems.append(subsystem)

    def install_sensor_manager(self, manager: Any) -> None:
        """Install on every subsystem the manager currently owns.

        Subsystems created by later deployments are not covered; install
        after the building's sensors are deployed.
        """
        for subsystem in manager.subsystems():
            self.install_subsystem(subsystem)

    def install_admission(self, controller: Any) -> None:
        """Route admission checks through the plan (overload bursts)."""
        controller.install_fault_plane(self._admission_plane)
        self._admission_controllers.append(controller)

    def install_storage_engine(self, engine: Any) -> None:
        """Route WAL appends through the plan (torn writes, crashes)."""
        engine.install_fault_plane(self._wal_plane)
        self._storage_engines.append(engine)

    def install_rebalancer(self, coordinator: Any) -> None:
        """Route migration step boundaries through the plan."""
        coordinator.install_fault_plane(self._migration_plane)
        self._rebalancers.append(coordinator)

    def install_policy_store(self, store: Any) -> None:
        """Make the store's policy fetches fault per the plan.

        ``candidate_policies`` is shadowed with an instance attribute
        that raises :class:`~repro.errors.StorageError` when a
        POLICY_FETCH_FAIL spec fires -- exactly what the enforcement
        engine's fail-closed path must absorb.
        """
        original = store.candidate_policies

        def faulted_candidate_policies(request: Any) -> Any:
            step = self._advance()
            fired = self.plan.matching(step, POLICY_KINDS, ("policy_store",))
            if fired:
                self.trace.record(
                    step, "policy", fired[0].kind, "policy_store"
                )
                raise StorageError(
                    "injected policy fetch failure (plan %r, step %d)"
                    % (self.plan.name, step)
                )
            return original(request)

        store.candidate_policies = faulted_candidate_policies
        self._policy_stores.append((store, original))

    def uninstall(self) -> None:
        """Detach from every component and restore wrapped methods."""
        for bus in self._buses:
            bus.remove_fault_plane(self._bus_plane)
        for datastore in self._datastores:
            datastore.remove_fault_plane(self._datastore_plane)
        for subsystem in self._subsystems:
            subsystem.remove_fault_plane(self._sensor_plane)
        for store, original in self._policy_stores:
            store.candidate_policies = original
        for engine in self._storage_engines:
            engine.remove_fault_plane(self._wal_plane)
        for controller in self._admission_controllers:
            controller.remove_fault_plane(self._admission_plane)
        for coordinator in self._rebalancers:
            coordinator.remove_fault_plane(self._migration_plane)
        del self._rebalancers[:]
        del self._buses[:]
        del self._datastores[:]
        del self._subsystems[:]
        del self._policy_stores[:]
        del self._storage_engines[:]
        del self._admission_controllers[:]


def single_spec_plan(spec: FaultSpec, seed: int = 0, name: str = "single") -> FaultPlan:
    """Convenience used heavily by tests: a plan with one spec."""
    return FaultPlan([spec], seed=seed, name=name)
