"""Resilience primitives: retry policies, deadlines, circuit breakers.

The paper's interaction loop (IRR broadcast -> IoTA discovery -> TIPPERS
enforcement) runs over lossy, intermittently-connected building
infrastructure.  These primitives give every caller a *deterministic*
recovery story:

- :class:`RetryPolicy` -- exponential backoff with seeded jitter and a
  bounded retry budget.  The whole backoff schedule is a pure function
  of the policy's fields, so two runs with the same seed sleep the same
  simulated durations in the same order.
- :class:`Deadline` -- a per-call time budget.  Backoff and simulated
  network latency are charged against it; once exhausted, retrying
  stops with :class:`~repro.errors.DeadlineError`.
- :class:`CircuitBreaker` / :class:`BreakerBoard` -- per-endpoint
  breakers that trip after consecutive transport failures and reject
  calls while open.  Recovery is measured in *logical calls* (rejected
  attempts), never wall-clock time, keeping simulations reproducible.

Nothing here sleeps: delays are accounted (into bus statistics and the
deadline budget), matching the bus's simulated-latency model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CircuitOpenError, DeadlineError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and a retry budget.

    ``max_retries`` is the number of *re*-sends after the first attempt.
    The delay before retry ``n`` (1-based) starts from
    ``base_delay_s * multiplier ** (n - 1)``, is jittered by up to
    ``jitter`` (a fraction, symmetric), and is always clamped to
    ``max_delay_s``.  Jitter is derived from ``seed`` and the attempt
    number only, so :meth:`schedule` is deterministic.
    """

    max_retries: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------
    def base_delay_for(self, attempt: int) -> float:
        """The pre-jitter delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )

    def delay_for(self, attempt: int) -> float:
        """The jittered, capped delay before retry ``attempt`` (1-based)."""
        base = self.base_delay_for(attempt)
        if not self.jitter:
            return base
        # Seeding a fresh RNG from (seed, attempt) keeps the jitter a
        # pure function of the policy, independent of call ordering.
        unit = random.Random("retry:%d:%d" % (self.seed, attempt)).uniform(-1.0, 1.0)
        return max(0.0, min(base * (1.0 + self.jitter * unit), self.max_delay_s))

    def base_schedule(self) -> Tuple[float, ...]:
        """Pre-jitter delays; non-decreasing and capped at the max."""
        return tuple(self.base_delay_for(n) for n in range(1, self.max_retries + 1))

    def schedule(self) -> Tuple[float, ...]:
        """The full jittered backoff schedule, one entry per retry."""
        return tuple(self.delay_for(n) for n in range(1, self.max_retries + 1))

    def schedule_within(self, budget_s: float) -> Tuple[float, ...]:
        """The longest schedule prefix whose total stays within budget."""
        if budget_s < 0:
            raise ValueError("budget_s must be non-negative")
        kept = []
        total = 0.0
        for delay in self.schedule():
            if total + delay > budget_s:
                break
            kept.append(delay)
            total += delay
        return tuple(kept)


class Deadline:
    """A spend-down time budget for one logical call.

    Simulated costs (backoff delays, per-attempt latency) are charged
    against the budget; :meth:`try_charge` refuses charges that would
    overdraw it, and :meth:`charge` raises
    :class:`~repro.errors.DeadlineError` instead.
    """

    def __init__(self, budget_s: float) -> None:
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = float(budget_s)
        self.spent_s = 0.0

    @property
    def remaining_s(self) -> float:
        return max(0.0, self.budget_s - self.spent_s)

    @property
    def expired(self) -> bool:
        return self.spent_s >= self.budget_s

    def try_charge(self, seconds: float) -> bool:
        """Charge ``seconds`` if the budget allows; report success."""
        if seconds < 0:
            raise ValueError("cannot charge a negative duration")
        if self.spent_s + seconds > self.budget_s:
            return False
        self.spent_s += seconds
        return True

    def charge(self, seconds: float) -> None:
        if not self.try_charge(seconds):
            raise DeadlineError(
                "deadline exhausted: %.3fs charge exceeds %.3fs remaining"
                % (seconds, self.remaining_s)
            )


class CircuitBreaker:
    """A deterministic per-endpoint circuit breaker.

    States follow the classic closed -> open -> half-open cycle, but
    the open state cools down after ``cooldown_rejections`` *rejected
    calls* rather than elapsed wall-clock time, so behaviour under a
    seeded simulation replays exactly.  A half-open trial that fails
    re-opens the breaker; one that succeeds closes it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5, cooldown_rejections: int = 8) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_rejections < 1:
            raise ValueError("cooldown_rejections must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_rejections = cooldown_rejections
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.rejections_while_open = 0
        self.times_opened = 0

    def allow(self) -> bool:
        """Whether the next call may proceed (may transition to half-open)."""
        if self.state == self.OPEN:
            self.rejections_while_open += 1
            if self.rejections_while_open >= self.cooldown_rejections:
                self.state = self.HALF_OPEN
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self.rejections_while_open = 0
            self.times_opened += 1

    def reset(self) -> None:
        """Administratively close the breaker (the service was restored).

        Used when an operator *knows* the endpoint is back -- e.g. a
        crashed shard re-registered after WAL recovery -- rather than
        waiting out the rejection-counted cooldown.
        """
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.rejections_while_open = 0


class BreakerBoard:
    """Lazily-created circuit breakers, one per bus target."""

    def __init__(self, failure_threshold: int = 5, cooldown_rejections: int = 8) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_rejections = cooldown_rejections
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, target: str) -> CircuitBreaker:
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_rejections=self.cooldown_rejections,
            )
            self._breakers[target] = breaker
        return breaker

    def check(self, target: str) -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` when open."""
        if not self.breaker(target).allow():
            raise CircuitOpenError("circuit open for endpoint %r" % target)

    def record_success(self, target: str) -> None:
        self.breaker(target).record_success()

    def record_failure(self, target: str) -> None:
        self.breaker(target).record_failure()

    def reset(self, target: str) -> None:
        """Administratively close ``target``'s breaker (service restored)."""
        self.breaker(target).reset()

    def evict(self, target: str) -> bool:
        """Forget ``target``'s breaker entirely (endpoint decommissioned).

        Distinct from :meth:`reset`: a reset keeps the entry because the
        endpoint is expected back; eviction is for endpoints that are
        gone for good, so a long-lived campus that adds and removes
        buildings does not accumulate breaker state without bound.
        Returns whether an entry existed.
        """
        return self._breakers.pop(target, None) is not None

    def states(self) -> Dict[str, str]:
        return {target: b.state for target, b in sorted(self._breakers.items())}

    def open_targets(self) -> Tuple[str, ...]:
        return tuple(
            target
            for target, breaker in sorted(self._breakers.items())
            if breaker.state != CircuitBreaker.CLOSED
        )
