"""Overload protection: admission control, priority shedding, brownout.

The ROADMAP's north star is "heavy traffic from millions of users", and
the paper's building serves every inhabitant's IoTA, policy fetches,
and service queries concurrently -- but an unprotected bus accepts
unbounded call volume and the only degraded mode is fail-closed denial.
This module gives the pipeline a *deterministic* graceful-degradation
story instead:

- :class:`Priority` -- three traffic classes.  CRITICAL traffic
  (enforcement decisions, DSAR handling, policy fetches) is never shed;
  NORMAL traffic (queries, captures) is browned out and only shed at
  the hard watermark; DEFERRABLE traffic (notification discovery,
  registry refresh) is shed first.  Occupant studies (Le et al.) show
  notification delivery is the deferrable class -- users prefer a late
  notification to a building that cannot answer a DSAR.
- :class:`TokenBucket` -- a per-principal rate budget, refilled in
  *logical steps* (one step per admission check) rather than wall-clock
  time, so two seeded runs replay identically.
- :class:`TopicQueue` -- a bounded per-target queue model with
  watermark-driven load levels (NOMINAL / BROWNOUT / OVERLOAD).
- :class:`BrownoutPolicy` -- between the high watermark and hard shed,
  responses are served *coarser* along the policy language's
  granularity lattice (precise location -> room -> floor -> presence)
  instead of not at all.  The lattice is carried here as wire strings
  so the net layer stays below ``core`` in the import DAG.
- :class:`AdmissionController` -- ties the three together and keeps its
  own shed ledger, mirroring the breaker board's rejection accounting
  so the bus identity ``calls == logical_calls + retries`` survives.

Nothing here reads a clock: load decays one drain quantum per admission
check, probabilistic shedding draws from the controller's seeded RNG,
and injected ``overload_burst`` faults arrive through the same fault
planes the rest of the harness uses.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import AdmissionError
from repro.obs.metrics import MetricsRegistry, get_registry


class Priority(enum.Enum):
    """The three traffic classes of the overload-protection layer."""

    CRITICAL = "critical"
    """Enforcement decisions, DSAR handling, policy fetches: never shed."""

    NORMAL = "normal"
    """Service queries and capture traffic: browned out, then shed."""

    DEFERRABLE = "deferrable"
    """Notification discovery and registry refresh: shed first."""


#: Default classification of bus methods into priority classes.  The
#: method name, not the target, carries the class: ``get_policy_document``
#: is CRITICAL whichever endpoint serves it.  Unlisted methods are NORMAL.
DEFAULT_METHOD_PRIORITIES: Dict[str, Priority] = {
    # CRITICAL: the calls a privacy-aware building must never drop.
    "get_policy_document": Priority.CRITICAL,
    "get_settings_document": Priority.CRITICAL,
    "submit_preference": Priority.CRITICAL,
    "submit_selection": Priority.CRITICAL,
    "preview_effects": Priority.CRITICAL,
    "dsar_report": Priority.CRITICAL,
    "dsar_erase": Priority.CRITICAL,
    "register_roaming": Priority.CRITICAL,
    # Migration steps move a principal's policies/preferences/data
    # between shards; shedding one would strand the user mid-migration
    # (fail-closed, so every decision about them would fail too).
    "migrate_export": Priority.CRITICAL,
    "migrate_import": Priority.CRITICAL,
    "migrate_finalize": Priority.CRITICAL,
    # NORMAL: service queries and capture-shaped traffic.
    "locate_user": Priority.NORMAL,
    "room_occupancy": Priority.NORMAL,
    "people_in_space": Priority.NORMAL,
    "occupancy_heatmap": Priority.NORMAL,
    "event_details": Priority.NORMAL,
    "ingest_observation": Priority.NORMAL,
    # DEFERRABLE: discovery sweeps and registry refresh.
    "discover": Priority.DEFERRABLE,
    "publish_resource": Priority.DEFERRABLE,
    "refresh_advertisements": Priority.DEFERRABLE,
    "notify": Priority.DEFERRABLE,
}


#: The brownout axis: each entry degrades to the one after it.  These
#: are the wire spellings of the policy language's GranularityLevel
#: lattice (precise room -> coarse floor -> building-level presence);
#: brownout never degrades past ``building`` -- under load the building
#: serves *coarser* data, never silently no data.
BROWNOUT_LATTICE: Tuple[str, ...] = ("precise", "coarse", "building")


class LoadLevel(enum.Enum):
    """A topic queue's position relative to its watermarks."""

    NOMINAL = "nominal"
    BROWNOUT = "brownout"
    OVERLOAD = "overload"


@dataclass
class TokenBucket:
    """A per-principal budget refilled per logical step, not per second.

    ``capacity`` bounds the burst one principal may issue; every
    admission check (any principal's) refills every bucket by
    ``refill_per_step``, so a greedy principal starves itself, not the
    building.
    """

    capacity: float
    refill_per_step: float
    tokens: float = field(init=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise AdmissionError("token bucket capacity must be positive")
        if self.refill_per_step < 0:
            raise AdmissionError("refill_per_step must be non-negative")
        self.tokens = self.capacity

    def step(self) -> None:
        self.tokens = min(self.capacity, self.tokens + self.refill_per_step)

    def try_take(self, cost: float = 1.0) -> bool:
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


@dataclass
class TopicQueue:
    """A bounded per-target queue with watermark-driven load levels.

    The queue is a *model* of backlog, not a buffer: each admitted or
    phantom arrival adds one unit of depth, and every admission check
    drains ``drain_per_step`` units (the simulated service rate).  A
    burst arriving faster than the drain rate pushes the load across
    the watermarks; when it subsides, the queue drains back to NOMINAL
    deterministically.
    """

    capacity: int = 64
    high_watermark: float = 0.5
    shed_watermark: float = 0.8
    drain_per_step: float = 1.0
    depth: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise AdmissionError("queue capacity must be >= 1")
        if not 0.0 < self.high_watermark < 1.0:
            raise AdmissionError("high_watermark must lie in (0, 1)")
        if not self.high_watermark < self.shed_watermark <= 1.0:
            raise AdmissionError(
                "shed_watermark must lie in (high_watermark, 1]"
            )
        if self.drain_per_step <= 0:
            raise AdmissionError("drain_per_step must be positive")

    @property
    def load(self) -> float:
        """Backlog as a fraction of capacity, in [0, 1]."""
        return min(1.0, self.depth / self.capacity)

    def level(self) -> LoadLevel:
        if self.load >= self.shed_watermark:
            return LoadLevel.OVERLOAD
        if self.load >= self.high_watermark:
            return LoadLevel.BROWNOUT
        return LoadLevel.NOMINAL

    def drain(self) -> None:
        self.depth = max(0.0, self.depth - self.drain_per_step)

    def arrive(self, units: float = 1.0) -> None:
        if units < 0:
            raise AdmissionError("arrivals cannot be negative")
        self.depth = min(float(self.capacity), self.depth + units)


@dataclass(frozen=True)
class BrownoutPolicy:
    """How far responses degrade along the granularity lattice.

    Between the high watermark and the shed watermark the degradation
    deepens linearly: just past ``high`` responses coarsen one level
    (precise -> coarse), approaching ``shed`` they coarsen
    ``max_levels`` (-> building-level presence).  The policy never
    degrades below :data:`BROWNOUT_LATTICE`'s floor.
    """

    max_levels: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.max_levels < len(BROWNOUT_LATTICE):
            raise AdmissionError(
                "max_levels must lie in [1, %d]" % (len(BROWNOUT_LATTICE) - 1)
            )

    def level_for(self, load: float, high: float, shed: float) -> int:
        """The brownout depth (0 = none) for a load between watermarks."""
        if load < high:
            return 0
        if load >= shed:
            return self.max_levels
        ramp = (load - high) / (shed - high)
        return max(1, min(self.max_levels, 1 + int(ramp * self.max_levels)))

    @staticmethod
    def coarsen(granularity: str, levels: int) -> str:
        """``granularity`` degraded ``levels`` steps down the lattice.

        Granularities outside the lattice (``aggregate``, ``none``) are
        already coarser than the brownout floor and pass through.
        """
        if granularity not in BROWNOUT_LATTICE or levels <= 0:
            return granularity
        index = BROWNOUT_LATTICE.index(granularity)
        return BROWNOUT_LATTICE[min(index + levels, len(BROWNOUT_LATTICE) - 1)]


#: An overload fault plane: consulted once per admission check with
#: ``(target, method)``; returning a positive number injects that many
#: phantom arrivals into the target's topic queue (the harness's
#: ``overload_burst`` fault kind).
OverloadPlane = Callable[[str, str], Optional[int]]


@dataclass(frozen=True)
class AdmissionTicket:
    """The controller's verdict on one logical call."""

    admitted: bool
    priority: Priority
    load: float
    brownout_level: int = 0
    reason: str = ""

    @property
    def browned_out(self) -> bool:
        return self.admitted and self.brownout_level > 0


@dataclass
class AdmissionLedger:
    """The controller's own accounting, mirrored onto the registry.

    Shed calls never become bus logical calls (the bus raises before
    its counters), so the ledger is the source of truth for shed rates:
    ``checked == admitted + shed`` always holds.
    """

    checked: int = 0
    admitted: int = 0
    shed: int = 0
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    admitted_by_class: Dict[str, int] = field(default_factory=dict)
    brownouts: int = 0
    injected_arrivals: int = 0

    def shed_rate(self, priority: Optional[Priority] = None) -> float:
        if priority is None:
            return self.shed / self.checked if self.checked else 0.0
        shed = self.shed_by_class.get(priority.value, 0)
        admitted = self.admitted_by_class.get(priority.value, 0)
        total = shed + admitted
        return shed / total if total else 0.0


class AdmissionController:
    """Seeded admission control with priority load shedding.

    One controller guards one bus.  Every :meth:`admit` call is one
    logical step: all topic queues drain one quantum, all principal
    buckets refill one quantum, installed overload planes are consulted
    (injected bursts arrive as phantom backlog), and the verdict is
    computed purely from (seed, call sequence) -- two same-seed runs
    shed the same calls at the same steps.

    Shedding order under load:

    1. DEFERRABLE calls shed probabilistically once the target's load
       crosses ``high_watermark`` (the probability ramps 0 -> 1 toward
       ``shed_watermark``, drawn from the seeded RNG) and always shed
       past it.
    2. NORMAL calls are admitted *browned out* between the watermarks
       (the ticket carries a granularity-degradation level) and shed
       past ``shed_watermark``.
    3. CRITICAL calls are always admitted, whatever the load.

    Independently, per-principal token buckets bound what any one
    principal may issue; an exhausted budget sheds that principal's
    NORMAL and DEFERRABLE calls only.
    """

    def __init__(
        self,
        seed: int = 0,
        queue_capacity: int = 64,
        high_watermark: float = 0.5,
        shed_watermark: float = 0.8,
        drain_per_step: float = 1.0,
        principal_capacity: float = 8.0,
        principal_refill_per_step: float = 0.5,
        method_priorities: Optional[Mapping[str, Priority]] = None,
        brownout: Optional[BrownoutPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self.queue_capacity = queue_capacity
        self.high_watermark = high_watermark
        self.shed_watermark = shed_watermark
        self.drain_per_step = drain_per_step
        self.principal_capacity = principal_capacity
        self.principal_refill_per_step = principal_refill_per_step
        self.method_priorities = dict(DEFAULT_METHOD_PRIORITIES)
        if method_priorities:
            self.method_priorities.update(method_priorities)
        self.brownout = brownout if brownout is not None else BrownoutPolicy()
        # Validate the watermark geometry once, through a probe queue.
        TopicQueue(
            capacity=queue_capacity,
            high_watermark=high_watermark,
            shed_watermark=shed_watermark,
            drain_per_step=drain_per_step,
        )
        self._queues: Dict[str, TopicQueue] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._planes: List[OverloadPlane] = []
        self.ledger = AdmissionLedger()
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_checked = self.metrics.counter("admission_checked_total")
        self._m_injected = self.metrics.counter("admission_injected_arrivals_total")
        self._m_brownouts = self.metrics.counter("brownout_responses_total")

    # ------------------------------------------------------------------
    # Fault planes (the injector's overload_burst hook)
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: OverloadPlane) -> None:
        """Attach an overload plane (see :data:`OverloadPlane`)."""
        self._planes.append(plane)

    def remove_fault_plane(self, plane: OverloadPlane) -> None:
        if plane in self._planes:
            self._planes.remove(plane)

    # ------------------------------------------------------------------
    # Lazily-created components
    # ------------------------------------------------------------------
    def queue(self, target: str) -> TopicQueue:
        queue = self._queues.get(target)
        if queue is None:
            queue = TopicQueue(
                capacity=self.queue_capacity,
                high_watermark=self.high_watermark,
                shed_watermark=self.shed_watermark,
                drain_per_step=self.drain_per_step,
            )
            self._queues[target] = queue
        return queue

    def bucket(self, principal: str) -> TokenBucket:
        bucket = self._buckets.get(principal)
        if bucket is None:
            bucket = TokenBucket(
                capacity=self.principal_capacity,
                refill_per_step=self.principal_refill_per_step,
            )
            self._buckets[principal] = bucket
        return bucket

    def classify(self, target: str, method: str) -> Priority:
        return self.method_priorities.get(method, Priority.NORMAL)

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def admit(
        self, target: str, method: str, principal: Optional[str] = None
    ) -> AdmissionTicket:
        """One admission check; advances the controller one logical step."""
        self.ledger.checked += 1
        self._m_checked.inc()
        for queue in self._queues.values():
            queue.drain()
        for bucket in self._buckets.values():
            bucket.step()
        queue = self.queue(target)
        for plane in self._planes:
            burst = plane(target, method)
            if burst:
                queue.arrive(burst)
                self.ledger.injected_arrivals += burst
                self._m_injected.inc(burst)
        priority = self.classify(target, method)
        queue.arrive(1.0)
        load = queue.load
        ticket = self._verdict(target, method, principal, priority, load)
        self._note(target, ticket)
        return ticket

    def _verdict(
        self,
        target: str,
        method: str,
        principal: Optional[str],
        priority: Priority,
        load: float,
    ) -> AdmissionTicket:
        bucket = self.bucket(principal if principal is not None else "_shared")
        in_budget = bucket.try_take(1.0)
        if priority is Priority.CRITICAL:
            # Never shed: a building that cannot answer a DSAR or fetch
            # the policy it must enforce has failed at privacy, not
            # merely at latency.
            return AdmissionTicket(admitted=True, priority=priority, load=load)
        if not in_budget:
            return AdmissionTicket(
                admitted=False,
                priority=priority,
                load=load,
                reason="principal %r over budget" % (principal or "_shared"),
            )
        if priority is Priority.DEFERRABLE:
            if load >= self.shed_watermark:
                return self._shed_ticket(priority, load, "past shed watermark")
            if load >= self.high_watermark:
                ramp = (load - self.high_watermark) / (
                    self.shed_watermark - self.high_watermark
                )
                if self._rng.random() < ramp:
                    return self._shed_ticket(
                        priority, load, "deferred under brownout"
                    )
            return AdmissionTicket(admitted=True, priority=priority, load=load)
        # NORMAL: brownout between the watermarks, shed past the hard one.
        if load >= self.shed_watermark:
            return self._shed_ticket(priority, load, "past shed watermark")
        level = self.brownout.level_for(
            load, self.high_watermark, self.shed_watermark
        )
        return AdmissionTicket(
            admitted=True, priority=priority, load=load, brownout_level=level
        )

    @staticmethod
    def _shed_ticket(priority: Priority, load: float, reason: str) -> AdmissionTicket:
        return AdmissionTicket(
            admitted=False, priority=priority, load=load, reason=reason
        )

    def _note(self, target: str, ticket: AdmissionTicket) -> None:
        labels = {"target": target, "class": ticket.priority.value}
        if ticket.admitted:
            self.ledger.admitted += 1
            by_class = self.ledger.admitted_by_class
            by_class[ticket.priority.value] = by_class.get(ticket.priority.value, 0) + 1
            self.metrics.counter("admission_admitted_total", labels).inc()
            if ticket.brownout_level:
                self.ledger.brownouts += 1
                self._m_brownouts.inc()
                self.metrics.counter(
                    "brownout_degraded_total", {"target": target}
                ).inc()
        else:
            self.ledger.shed += 1
            by_class = self.ledger.shed_by_class
            by_class[ticket.priority.value] = by_class.get(ticket.priority.value, 0) + 1
            self.metrics.counter("admission_shed_total", labels).inc()
        self.metrics.gauge(
            "admission_queue_load", {"target": target}
        ).set(round(self.queue(target).load, 6))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def loads(self) -> Dict[str, float]:
        """Current per-topic load fractions, stable order."""
        return {
            target: round(queue.load, 6)
            for target, queue in sorted(self._queues.items())
        }

    def levels(self) -> Dict[str, str]:
        return {
            target: queue.level().value
            for target, queue in sorted(self._queues.items())
        }
