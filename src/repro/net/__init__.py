"""In-process message bus standing in for the deployment network.

In the real deployment, IoTAs talk to IRRs and to TIPPERS over
JSON-based REST APIs.  Here all components run in one process, but all
inter-component traffic still crosses a serialization boundary: every
request and response is encoded to JSON text and decoded again, so a
type that would not survive the wire fails loudly in tests.

The bus also injects configurable latency and message loss so
experiments can study the framework under imperfect networks.
"""

from repro.net.admission import (
    AdmissionController,
    AdmissionLedger,
    AdmissionTicket,
    BrownoutPolicy,
    LoadLevel,
    Priority,
    TokenBucket,
    TopicQueue,
)
from repro.net.bus import Endpoint, MessageBus, RpcError
from repro.net.codec import decode_message, encode_message

__all__ = [
    "MessageBus",
    "Endpoint",
    "RpcError",
    "encode_message",
    "decode_message",
    "AdmissionController",
    "AdmissionLedger",
    "AdmissionTicket",
    "BrownoutPolicy",
    "LoadLevel",
    "Priority",
    "TokenBucket",
    "TopicQueue",
]
