"""Request/response message bus with loss and latency injection."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    AdmissionShedError,
    CircuitOpenError,
    DeadlineError,
    NetworkError,
)
from repro.net.admission import AdmissionController
from repro.net.codec import decode_message, encode_message
from repro.net.resilience import BreakerBoard, Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer


class RpcError(NetworkError):
    """An application-level error raised by the remote endpoint."""

    def __init__(self, target: str, method: str, message: str) -> None:
        super().__init__("%s.%s failed: %s" % (target, method, message))
        self.target = target
        self.method = method
        self.remote_message = message


class Endpoint:
    """Something addressable on the bus.

    Subclasses implement :meth:`handle`; unhandled methods raise
    :class:`NetworkError`, which the bus reports to the caller as an
    :class:`RpcError`.
    """

    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise NetworkError("method %r not handled" % method)


@dataclass
class BusFault:
    """What an installed fault plane wants done to one transport attempt.

    Returned by a plane callable (``plane(target, method) -> Optional[BusFault]``).
    ``drop`` and ``offline`` carry a reason string and lose the message;
    ``corrupt`` mangles the wire bytes so decoding fails; ``latency_s``
    adds simulated network latency.  Effects compose across planes.
    """

    drop: Optional[str] = None
    offline: Optional[str] = None
    corrupt: bool = False
    latency_s: float = 0.0

    def merge(self, other: "BusFault") -> "BusFault":
        return BusFault(
            drop=self.drop if self.drop is not None else other.drop,
            offline=self.offline if self.offline is not None else other.offline,
            corrupt=self.corrupt or other.corrupt,
            latency_s=self.latency_s + other.latency_s,
        )


#: A transport-level interception point: consulted once per attempt,
#: inside the bus's own accounting, so injected faults reconcile with
#: the attempt/retry counters exactly like organic loss does.
FaultPlane = Callable[[str, str], Optional[BusFault]]


class _CallableEndpoint(Endpoint):
    def __init__(self, handler: Callable[[str, Dict[str, Any]], Dict[str, Any]]) -> None:
        self._handler = handler

    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._handler(method, payload)


@dataclass
class BusStats:
    """Counters for experiments and debugging.

    ``calls`` counts transport *attempts* (each retry is an attempt);
    ``logical_calls`` counts :meth:`MessageBus.call` invocations, and
    ``retries`` the re-sent attempts after simulated loss, so
    ``calls == logical_calls + retries`` always holds.  Keeping the
    historical attempt-counting name ``calls`` preserves every existing
    reader; rate computations should divide by the counter matching
    their denominator (attempts for loss rates, logical calls for
    request failure rates).
    """

    calls: int = 0
    dropped: int = 0
    errors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    simulated_latency_s: float = 0.0
    logical_calls: int = 0
    retries: int = 0
    #: Attempts lost to an *injected* fault (drop/offline/corrupt);
    #: always a subset of ``dropped``.
    faulted: int = 0
    #: Messages mangled in transit by a fault plane (subset of ``faulted``).
    corrupted: int = 0
    #: Calls refused by an open circuit breaker before becoming a
    #: logical call (so ``calls == logical_calls + retries`` still holds).
    rejected: int = 0
    #: Calls shed by admission control before becoming a logical call
    #: (its own ledger, same identity-preserving position as ``rejected``).
    shed: int = 0

    @property
    def attempts(self) -> int:
        """Alias making the attempt-counting semantics of ``calls`` explicit."""
        return self.calls


class MessageBus:
    """Connects named endpoints through a JSON boundary.

    ``drop_rate`` is the probability a call is lost (raising
    :class:`NetworkError` at the caller); ``latency_s`` is accumulated
    in :attr:`stats` rather than slept, so simulations can account for
    network time without wall-clock cost.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        latency_s: float = 0.0,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        breakers: Optional[BreakerBoard] = None,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise NetworkError("drop_rate must lie in [0, 1)")
        if latency_s < 0:
            raise NetworkError("latency_s must be non-negative")
        self._endpoints: Dict[str, Endpoint] = {}
        self.drop_rate = drop_rate
        self.latency_s = latency_s
        self._rng = rng if rng is not None else random.Random(0)
        self.stats = BusStats()
        self.breakers = breakers
        self.admission = admission
        self._fault_planes: List[FaultPlane] = []
        self.metrics = metrics if metrics is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._m_attempts = self.metrics.counter("bus_attempts_total")
        self._m_dropped = self.metrics.counter("bus_dropped_total")
        self._m_errors = self.metrics.counter("bus_errors_total")
        self._m_bytes_sent = self.metrics.counter("bus_bytes_sent_total")
        self._m_bytes_received = self.metrics.counter("bus_bytes_received_total")
        self._m_sim_latency = self.metrics.counter("bus_simulated_latency_seconds_total")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, endpoint: Endpoint) -> None:
        if not name:
            raise NetworkError("endpoint name must be non-empty")
        if name in self._endpoints:
            raise NetworkError("endpoint %r already registered" % name)
        self._endpoints[name] = endpoint

    def register_handler(
        self, name: str, handler: Callable[[str, Dict[str, Any]], Dict[str, Any]]
    ) -> None:
        self.register(name, _CallableEndpoint(handler))

    def unregister(self, name: str, evict_breaker: bool = False) -> None:
        """Remove an endpoint; optionally drop its breaker entry too.

        ``evict_breaker=False`` (the default) is for *temporary*
        darkness -- a crashed shard keeps its breaker state because the
        open breaker is live health information for callers.  Pass
        ``True`` when the endpoint is decommissioned for good, so the
        board does not grow unboundedly as endpoints come and go.
        """
        self._endpoints.pop(name, None)
        if evict_breaker and self.breakers is not None:
            self.breakers.evict(name)

    def endpoints(self) -> Dict[str, Endpoint]:
        return dict(self._endpoints)

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # ------------------------------------------------------------------
    # Fault planes
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: FaultPlane) -> None:
        """Attach a transport-level fault plane (see :data:`FaultPlane`)."""
        self._fault_planes.append(plane)

    def remove_fault_plane(self, plane: FaultPlane) -> None:
        if plane in self._fault_planes:
            self._fault_planes.remove(plane)

    def _consult_planes(self, target: str, method: str) -> Optional[BusFault]:
        fault: Optional[BusFault] = None
        for plane in self._fault_planes:
            verdict = plane(target, method)
            if verdict is None:
                continue
            fault = verdict if fault is None else fault.merge(verdict)
        return fault

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(
        self,
        target: str,
        method: str,
        payload: Optional[Dict[str, Any]] = None,
        retries: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        deadline: Optional[Deadline] = None,
        principal: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Invoke ``method`` on ``target`` with a JSON round-trip.

        ``retries`` re-sends on simulated loss (not on remote errors);
        passing ``retry_policy`` supersedes ``retries`` and additionally
        charges the policy's deterministic backoff schedule as simulated
        latency.  ``deadline`` bounds the call: backoff delays that would
        overdraw the budget abort retrying with
        :class:`~repro.errors.DeadlineError`.  When the bus carries a
        :class:`~repro.net.resilience.BreakerBoard`, calls to a target
        whose breaker is open are refused up front with
        :class:`~repro.errors.CircuitOpenError` (counted in
        ``stats.rejected``, never as a logical call).  When it carries
        an :class:`~repro.net.admission.AdmissionController`, every call
        is admission-checked first: shed calls raise
        :class:`~repro.errors.AdmissionShedError` (counted in
        ``stats.shed``, never as a logical call), and browned-out calls
        proceed with a ``brownout_level`` hint injected into the payload
        so privacy-aware endpoints can serve coarser data.  ``principal``
        names the caller for per-principal admission budgets.

        Raises :class:`NetworkError` on loss/unknown targets and
        :class:`RpcError` when the endpoint itself fails.
        """
        if self.admission is not None:
            ticket = self.admission.admit(target, method, principal)
            if not ticket.admitted:
                self.stats.shed += 1
                self.metrics.counter(
                    "bus_admission_shed_total",
                    {"target": target, "class": ticket.priority.value},
                ).inc()
                raise AdmissionShedError(
                    "call %s.%s shed by admission control (%s, load %.2f): %s"
                    % (target, method, ticket.priority.value, ticket.load,
                       ticket.reason)
                )
            if ticket.browned_out:
                payload = dict(payload or {})
                payload["brownout_level"] = ticket.brownout_level
        if self.breakers is not None:
            try:
                self.breakers.check(target)
            except CircuitOpenError:
                self.stats.rejected += 1
                self.metrics.counter(
                    "bus_breaker_rejected_total", {"target": target}
                ).inc()
                raise
        self.stats.logical_calls += 1
        call_labels = {"target": target, "method": method}
        self.metrics.counter("bus_calls_total", call_labels).inc()
        latency = self.metrics.histogram("bus_call_seconds", call_labels)
        start = time.perf_counter()
        schedule = retry_policy.schedule() if retry_policy is not None else None
        max_attempts = (len(schedule) if schedule is not None else retries) + 1
        try:
            with self.tracer.span("bus.call", target=target, method=method):
                last_error: Optional[NetworkError] = None
                for attempt in range(max_attempts):
                    if attempt:
                        backoff = schedule[attempt - 1] if schedule is not None else 0.0
                        if deadline is not None and not deadline.try_charge(backoff):
                            self.metrics.counter(
                                "bus_deadline_exhausted_total", {"target": target}
                            ).inc()
                            raise DeadlineError(
                                "deadline exhausted calling %s.%s after %d attempt(s)"
                                % (target, method, attempt)
                            ) from last_error
                        self.stats.retries += 1
                        self.metrics.counter(
                            "bus_retries_total", {"target": target}
                        ).inc()
                        if backoff:
                            self.stats.simulated_latency_s += backoff
                            self._m_sim_latency.inc(backoff)
                            self.metrics.counter(
                                "bus_backoff_seconds_total", {"target": target}
                            ).inc(backoff)
                    try:
                        result = self._call_once(target, method, payload or {})
                    except RpcError:
                        # The endpoint answered (with an application
                        # error): the transport is healthy.
                        if self.breakers is not None:
                            self.breakers.record_success(target)
                        raise
                    except NetworkError as exc:
                        last_error = exc
                        if self.breakers is not None:
                            self.breakers.record_failure(target)
                        continue
                    if self.breakers is not None:
                        self.breakers.record_success(target)
                    return result
                assert last_error is not None
                raise last_error
        finally:
            latency.observe(time.perf_counter() - start)

    def _drop_attempt(self, target: str, metric: str, reason: str) -> None:
        """Account one lost attempt and raise the transport error."""
        self.stats.dropped += 1
        self._m_dropped.inc()
        self.metrics.counter("bus_dropped_by_target_total", {"target": target}).inc()
        if metric:
            self.stats.faulted += 1
            self.metrics.counter(metric, {"target": target}).inc()
        raise NetworkError(reason)

    def _call_once(
        self, target: str, method: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        self.stats.calls += 1
        self._m_attempts.inc()
        self.stats.simulated_latency_s += self.latency_s
        self._m_sim_latency.inc(self.latency_s)
        fault = self._consult_planes(target, method)
        if fault is not None and fault.latency_s:
            self.stats.simulated_latency_s += fault.latency_s
            self._m_sim_latency.inc(fault.latency_s)
            self.metrics.counter(
                "bus_fault_latency_seconds_total", {"target": target}
            ).inc(fault.latency_s)
        wire_request = encode_message(
            {"target": target, "method": method, "payload": payload}
        )
        self.stats.bytes_sent += len(wire_request)
        self._m_bytes_sent.inc(len(wire_request))
        if fault is not None and fault.offline is not None:
            self._drop_attempt(
                target,
                "bus_endpoint_offline_total",
                "endpoint %r offline: %s" % (target, fault.offline),
            )
        if fault is not None and fault.drop is not None:
            self._drop_attempt(
                target,
                "bus_fault_dropped_total",
                "message to %r dropped: %s" % (target, fault.drop),
            )
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self._drop_attempt(target, "", "message to %r dropped" % target)
        if fault is not None and fault.corrupt:
            # Truncation garbles the JSON framing; the decode below
            # fails exactly the way a torn datagram would.
            wire_request = wire_request[: max(1, len(wire_request) // 2)]
            self.stats.corrupted += 1
            self.metrics.counter("bus_corrupted_total", {"target": target}).inc()
        try:
            request = decode_message(wire_request)
        except NetworkError:
            self._drop_attempt(
                target,
                "bus_fault_dropped_total",
                "message to %r corrupted in transit" % target,
            )
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            self.stats.errors += 1
            self._m_errors.inc()
            raise NetworkError("no endpoint %r" % target)
        try:
            response = endpoint.handle(request["method"], request["payload"])
        except NetworkError as exc:
            self.stats.errors += 1
            self._m_errors.inc()
            self.metrics.counter(
                "bus_rpc_errors_total", {"target": target, "method": method}
            ).inc()
            raise RpcError(target, method, str(exc)) from None
        wire_response = encode_message({"payload": response if response is not None else {}})
        self.stats.bytes_received += len(wire_response)
        self._m_bytes_received.inc(len(wire_response))
        return decode_message(wire_response)["payload"]
