"""Request/response message bus with loss and latency injection."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import NetworkError
from repro.net.codec import decode_message, encode_message
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer


class RpcError(NetworkError):
    """An application-level error raised by the remote endpoint."""

    def __init__(self, target: str, method: str, message: str) -> None:
        super().__init__("%s.%s failed: %s" % (target, method, message))
        self.target = target
        self.method = method
        self.remote_message = message


class Endpoint:
    """Something addressable on the bus.

    Subclasses implement :meth:`handle`; unhandled methods raise
    :class:`NetworkError`, which the bus reports to the caller as an
    :class:`RpcError`.
    """

    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise NetworkError("method %r not handled" % method)


class _CallableEndpoint(Endpoint):
    def __init__(self, handler: Callable[[str, Dict[str, Any]], Dict[str, Any]]) -> None:
        self._handler = handler

    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._handler(method, payload)


@dataclass
class BusStats:
    """Counters for experiments and debugging.

    ``calls`` counts transport *attempts* (each retry is an attempt);
    ``logical_calls`` counts :meth:`MessageBus.call` invocations, and
    ``retries`` the re-sent attempts after simulated loss, so
    ``calls == logical_calls + retries`` always holds.  Keeping the
    historical attempt-counting name ``calls`` preserves every existing
    reader; rate computations should divide by the counter matching
    their denominator (attempts for loss rates, logical calls for
    request failure rates).
    """

    calls: int = 0
    dropped: int = 0
    errors: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    simulated_latency_s: float = 0.0
    logical_calls: int = 0
    retries: int = 0

    @property
    def attempts(self) -> int:
        """Alias making the attempt-counting semantics of ``calls`` explicit."""
        return self.calls


class MessageBus:
    """Connects named endpoints through a JSON boundary.

    ``drop_rate`` is the probability a call is lost (raising
    :class:`NetworkError` at the caller); ``latency_s`` is accumulated
    in :attr:`stats` rather than slept, so simulations can account for
    network time without wall-clock cost.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        latency_s: float = 0.0,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise NetworkError("drop_rate must lie in [0, 1)")
        if latency_s < 0:
            raise NetworkError("latency_s must be non-negative")
        self._endpoints: Dict[str, Endpoint] = {}
        self.drop_rate = drop_rate
        self.latency_s = latency_s
        self._rng = rng if rng is not None else random.Random(0)
        self.stats = BusStats()
        self.metrics = metrics if metrics is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._m_attempts = self.metrics.counter("bus_attempts_total")
        self._m_dropped = self.metrics.counter("bus_dropped_total")
        self._m_errors = self.metrics.counter("bus_errors_total")
        self._m_bytes_sent = self.metrics.counter("bus_bytes_sent_total")
        self._m_bytes_received = self.metrics.counter("bus_bytes_received_total")
        self._m_sim_latency = self.metrics.counter("bus_simulated_latency_seconds_total")

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, endpoint: Endpoint) -> None:
        if not name:
            raise NetworkError("endpoint name must be non-empty")
        if name in self._endpoints:
            raise NetworkError("endpoint %r already registered" % name)
        self._endpoints[name] = endpoint

    def register_handler(
        self, name: str, handler: Callable[[str, Dict[str, Any]], Dict[str, Any]]
    ) -> None:
        self.register(name, _CallableEndpoint(handler))

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoints(self) -> Dict[str, Endpoint]:
        return dict(self._endpoints)

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(
        self,
        target: str,
        method: str,
        payload: Optional[Dict[str, Any]] = None,
        retries: int = 0,
    ) -> Dict[str, Any]:
        """Invoke ``method`` on ``target`` with a JSON round-trip.

        ``retries`` re-sends on simulated loss (not on remote errors).
        Raises :class:`NetworkError` on loss/unknown targets and
        :class:`RpcError` when the endpoint itself fails.
        """
        self.stats.logical_calls += 1
        call_labels = {"target": target, "method": method}
        self.metrics.counter("bus_calls_total", call_labels).inc()
        latency = self.metrics.histogram("bus_call_seconds", call_labels)
        start = time.perf_counter()
        try:
            with self.tracer.span("bus.call", target=target, method=method):
                last_error: Optional[NetworkError] = None
                for attempt in range(retries + 1):
                    if attempt:
                        self.stats.retries += 1
                        self.metrics.counter(
                            "bus_retries_total", {"target": target}
                        ).inc()
                    try:
                        return self._call_once(target, method, payload or {})
                    except RpcError:
                        raise
                    except NetworkError as exc:
                        last_error = exc
                assert last_error is not None
                raise last_error
        finally:
            latency.observe(time.perf_counter() - start)

    def _call_once(
        self, target: str, method: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        self.stats.calls += 1
        self._m_attempts.inc()
        self.stats.simulated_latency_s += self.latency_s
        self._m_sim_latency.inc(self.latency_s)
        wire_request = encode_message(
            {"target": target, "method": method, "payload": payload}
        )
        self.stats.bytes_sent += len(wire_request)
        self._m_bytes_sent.inc(len(wire_request))
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.stats.dropped += 1
            self._m_dropped.inc()
            self.metrics.counter("bus_dropped_by_target_total", {"target": target}).inc()
            raise NetworkError("message to %r dropped" % target)
        request = decode_message(wire_request)
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            self.stats.errors += 1
            self._m_errors.inc()
            raise NetworkError("no endpoint %r" % target)
        try:
            response = endpoint.handle(request["method"], request["payload"])
        except NetworkError as exc:
            self.stats.errors += 1
            self._m_errors.inc()
            self.metrics.counter(
                "bus_rpc_errors_total", {"target": target, "method": method}
            ).inc()
            raise RpcError(target, method, str(exc)) from None
        wire_response = encode_message({"payload": response if response is not None else {}})
        self.stats.bytes_received += len(wire_response)
        self._m_bytes_received.inc(len(wire_response))
        return decode_message(wire_response)["payload"]
