"""JSON wire codec.

Only JSON-representable payloads may cross the bus; anything else is a
programming error surfaced as :class:`NetworkError` at send time (not
as a confusing failure on the receiving side).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import NetworkError


def encode_message(message: Dict[str, Any]) -> str:
    """Serialize a message dict to compact JSON text."""
    try:
        return json.dumps(message, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise NetworkError("payload is not JSON-serializable: %s" % exc) from None


def decode_message(text: str) -> Dict[str, Any]:
    """Parse JSON text back into a message dict."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise NetworkError("malformed message: %s" % exc) from None
    if not isinstance(data, dict):
        raise NetworkError("message must be a JSON object, got %r" % type(data).__name__)
    return data
