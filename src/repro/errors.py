"""Exception hierarchy shared across the package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at integration boundaries while tests
assert on the precise subclass.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SpatialError(ReproError):
    """Invalid spatial model operation (unknown space, bad hierarchy)."""


class SchemaError(ReproError):
    """A policy document failed schema validation or parsing."""


class PolicyError(ReproError):
    """A policy or preference object is malformed or inconsistent."""


class ConflictError(ReproError):
    """A policy/preference conflict could not be resolved."""


class EnforcementError(ReproError):
    """The enforcement engine could not reach a decision."""


class SensorError(ReproError):
    """Invalid sensor configuration or actuation request."""


class RegistryError(ReproError):
    """IoT Resource Registry registration/discovery failure."""


class ServiceError(ReproError):
    """A building service request was malformed or unauthorized."""


class NetworkError(ReproError):
    """Simulated network failure (timeout, dropped message)."""


class DeadlineError(NetworkError):
    """A call's deadline budget was exhausted before it completed."""


class CircuitOpenError(NetworkError):
    """A call was rejected because the target's circuit breaker is open."""


class AdmissionError(ReproError):
    """An admission controller or brownout policy is misconfigured."""


class AdmissionShedError(NetworkError):
    """A call was shed by admission control before reaching its target."""


class FaultError(ReproError):
    """A fault plan or fault injector is misconfigured."""


class StorageError(ReproError):
    """Datastore failure (unknown stream, bad query window)."""


class SimulatedCrash(ReproError):
    """A fault-injected process crash (the chaos ``--recover`` harness).

    Deliberately *not* a :class:`StorageError`: graceful-degradation
    paths that absorb storage failures must not absorb a crash -- it has
    to propagate to the top of the run, killing the simulated process so
    recovery can be exercised.
    """


class FederationError(ReproError):
    """A federation router or campus shard set is misconfigured."""


class AnalysisError(ReproError):
    """Static-analysis misuse (unknown rule ids, unreadable paths)."""


class BenchError(ReproError):
    """A benchmark record is malformed or a trajectory operation failed."""
