"""Shared finding/severity/reporting core of the static analyzers.

Both analyzers -- the policy lint over IRR advertisement sets and the
AST lint over the codebase -- emit :class:`Finding` objects tagged with
a rule from the process-wide :data:`RULES` registry, so one reporter,
one suppression syntax, and one exit-code policy serve both.

Suppression: a source line carrying ``# repro: noqa=C002`` (comma-
separate several ids; ``ALL`` silences every rule) suppresses findings
the code linter anchors to that line.  Policy findings have no source
line and cannot be suppressed; fix the document instead.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.errors import AnalysisError


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Lower is more severe (error=0, warning=1, info=2)."""
        return (Severity.ERROR, Severity.WARNING, Severity.INFO).index(self)


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    rule_id: str
    name: str
    severity: Severity
    summary: str

    def __post_init__(self) -> None:
        if not re.match(r"^[CFP]\d{3}$", self.rule_id):
            raise AnalysisError(
                "rule id %r must look like C001, F001, or P001" % self.rule_id
            )


#: Process-wide rule registry: rule id -> :class:`Rule`.  Populated at
#: import time by :mod:`repro.analysis.policy_lint` (P-rules) and
#: :mod:`repro.analysis.code_lint` (C-rules).
RULES: Dict[str, Rule] = {}


def register_rule(rule_id: str, name: str, severity: Severity, summary: str) -> Rule:
    """Add a rule to :data:`RULES`; duplicate ids are a bug."""
    if rule_id in RULES:
        raise AnalysisError("rule %r registered twice" % rule_id)
    rule = Rule(rule_id, name, severity, summary)
    RULES[rule_id] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (imports every analyzer)."""
    # Importing for the registration side effect keeps the registry
    # complete even when the caller only imported this module.
    from repro.analysis import code_lint, policy_lint  # noqa: F401
    from repro.analysis.flow import analyzer  # noqa: F401

    return [RULES[rule_id] for rule_id in sorted(RULES)]


@dataclass(frozen=True)
class Finding:
    """One analyzer finding."""

    rule_id: str
    severity: Severity
    message: str
    subject: str = ""
    """What the finding is about: a policy/advertisement/preference id
    for policy findings, empty for code findings."""

    file: str = ""
    line: int = 0

    @property
    def rule_name(self) -> str:
        rule = RULES.get(self.rule_id)
        return rule.name if rule is not None else self.rule_id

    def location(self) -> str:
        if self.file:
            return "%s:%d" % (self.file, self.line) if self.line else self.file
        return self.subject

    def __str__(self) -> str:
        prefix = self.location()
        body = "%s %s [%s] %s" % (
            self.rule_id,
            self.rule_name,
            self.severity.value,
            self.message,
        )
        return "%s: %s" % (prefix, body) if prefix else body


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic order: file/subject, line, severity, rule id."""
    return sorted(
        findings,
        key=lambda f: (f.file, f.line, f.subject, f.severity.rank, f.rule_id),
    )


# ----------------------------------------------------------------------
# Rule selection (--select)
# ----------------------------------------------------------------------
def expand_selection(select: Optional[str]) -> Optional[Set[str]]:
    """Parse a ``--select`` expression into a set of rule ids.

    Comma-separated; each token is a full rule id (``C003``) or a
    prefix (``C`` selects every code rule, ``P00`` every P00x rule).
    ``None``/empty means "all rules" and returns ``None``.
    """
    if not select:
        return None
    known = {rule.rule_id for rule in all_rules()}
    chosen: Set[str] = set()
    for token in select.split(","):
        token = token.strip().upper()
        if not token:
            continue
        matched = {rule_id for rule_id in known if rule_id.startswith(token)}
        if not matched:
            raise AnalysisError("--select %r matches no registered rule" % token)
        chosen |= matched
    return chosen


def selected(finding: Finding, selection: Optional[Set[str]]) -> bool:
    return selection is None or finding.rule_id in selection


# ----------------------------------------------------------------------
# Suppression (# repro: noqa=RULE)
# ----------------------------------------------------------------------
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa=([A-Za-z0-9,\s]+)")


def suppressions_in(source: str) -> Dict[int, Set[str]]:
    """1-based line number -> rule ids suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        ids = {token.strip().upper() for token in match.group(1).split(",")}
        table[number] = {token for token in ids if token}
    return table


def is_suppressed(finding: Finding, suppressions: Mapping[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    if not ids:
        return False
    return "ALL" in ids or finding.rule_id in ids


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> List[str]:
    """One line per finding plus a summary tail line."""
    lines = [str(finding) for finding in findings]
    if findings:
        by_severity: Dict[str, int] = {}
        for finding in findings:
            by_severity[finding.severity.value] = (
                by_severity.get(finding.severity.value, 0) + 1
            )
        summary = ", ".join(
            "%d %s" % (count, name)
            for name, count in sorted(by_severity.items())
        )
        lines.append("%d finding(s): %s" % (len(findings), summary))
    return lines


def render_json(findings: Sequence[Finding]) -> Dict[str, object]:
    """A ``json.dumps``-ready payload mirroring the text report."""
    return {
        "findings": [
            {
                "rule_id": f.rule_id,
                "rule": f.rule_name,
                "severity": f.severity.value,
                "message": f.message,
                "subject": f.subject,
                "file": f.file,
                "line": f.line,
            }
            for f in findings
        ],
        "count": len(findings),
    }


def exit_code(findings: Sequence[Finding]) -> int:
    """0 when clean, 1 when any finding survived suppression."""
    return 1 if findings else 0
