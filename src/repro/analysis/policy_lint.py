"""Static analyzer for policy artifacts (Section III-B's reasoner).

The paper calls for a *policy reasoner* that detects disagreements
before any request is served.  The runtime only ever checks one
building-policy/user-preference pair when a preference is submitted;
this module audits whole artifact sets ahead of time -- every
advertisement in an :class:`~repro.irr.registry.IoTResourceRegistry`,
every :class:`BuildingPolicy`, every stored preference -- the way P3P
deployments learned the hard way that machine-readable policies rot
without tooling that lints them as artifacts.

Rules (ids P001-P010; see ``docs/ANALYSIS.md`` for the full catalog):

========  =========================  =========================================
P001      dangling-space             space reference not in the spatial model
P002      unknown-sensor             sensor type not in the ontology
P003      unknown-purpose            purpose key outside the taxonomy
P004      dangling-inference         inferred category outside the vocabulary
P005      shadowed-rule              rule unreachable behind a covering rule
P006      contradictory-effects      identical selectors, opposite effects
P007      retention-beyond-purpose   retention longer than the purpose allows
P008      settings-beyond-data       setting offers finer data than declared
P009      hard-conflict              mandatory policy vs user opt-out
P010      duplicate-advertisement    advertisement set repeats itself
========  =========================  =========================================

Advertisements are duck-typed: anything with ``advertisement_id`` /
``kind`` / ``coverage_space_id`` / ``document`` / ``settings``
attributes (or a dict with those keys) audits, so wire-form dicts from
a remote registry lint without reconstructing registry objects.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    Finding,
    Severity,
    register_rule,
    selected,
    sort_findings,
)
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import UserPreference
from repro.core.reasoner.analysis import scope_covers
from repro.core.reasoner.conflicts import ConflictKind, detect_conflicts_by_user
from repro.sensors.ontology import SensorOntology, default_ontology
from repro.spatial.model import SpatialModel

register_rule(
    "P001", "dangling-space", Severity.ERROR,
    "A coverage space or policy space selector names a space the spatial "
    "model does not contain; discovery and matching can never reach it.",
)
register_rule(
    "P002", "unknown-sensor", Severity.ERROR,
    "A resource document or policy names a sensor type the ontology does "
    "not define; its settings can never be validated or actuated.",
)
register_rule(
    "P003", "unknown-purpose", Severity.WARNING,
    "A purpose key is outside the purpose taxonomy, so its sensitivity "
    "and sharing class are unknown to the notification model.",
)
register_rule(
    "P004", "dangling-inference", Severity.WARNING,
    "An observation declares an inferred data category outside the "
    "vocabulary; preferences cannot be expressed against it.",
)
register_rule(
    "P005", "shadowed-rule", Severity.ERROR,
    "An allowing policy is unreachable: an earlier mandatory or "
    "same-or-higher-priority denying policy covers its whole scope.",
)
register_rule(
    "P006", "contradictory-effects", Severity.ERROR,
    "Two policies with identical selectors declare opposite effects; "
    "the outcome depends on evaluation order, not policy.",
)
register_rule(
    "P007", "retention-beyond-purpose", Severity.WARNING,
    "Declared retention exceeds what the document's purpose class "
    "plausibly needs.",
)
register_rule(
    "P008", "settings-beyond-data", Severity.WARNING,
    "A settings option offers data at finer granularity than any "
    "observation the advertisement declares for that group.",
)
register_rule(
    "P009", "hard-conflict", Severity.ERROR,
    "A mandatory building policy overlaps a stored opt-out preference; "
    "the preference can never be honoured.",
)
register_rule(
    "P010", "duplicate-advertisement", Severity.WARNING,
    "The advertisement set repeats an advertisement id or an identical "
    "document; discovery returns redundant entries.",
)


#: The longest retention each purpose class plausibly needs.  Documents
#: declaring more are flagged by P007 -- the taxonomy counterpart of the
#: runtime retention sweeper.
PURPOSE_MAX_RETENTION: Dict[Purpose, Duration] = {
    Purpose.EMERGENCY_RESPONSE: Duration.parse("P1Y"),
    Purpose.PROVIDING_SERVICE: Duration.parse("P1Y"),
    Purpose.SECURITY: Duration.parse("P1Y"),
    Purpose.LOGGING: Duration.parse("P90D"),
    Purpose.COMFORT: Duration.parse("P30D"),
    Purpose.ENERGY_MANAGEMENT: Duration.parse("P1Y"),
    Purpose.ACCESS_CONTROL: Duration.parse("P2Y"),
    Purpose.RESEARCH: Duration.parse("P3Y"),
    Purpose.MARKETING: Duration.parse("P30D"),
    Purpose.LAW_ENFORCEMENT: Duration.parse("P1Y"),
}

#: Sensor-less resource entries compiled from pure sharing policies use
#: this placeholder type; it is not a dangling reference.
_SENSORLESS = {"", "none"}

_DATA_CATEGORY_VALUES = {category.value for category in DataCategory}


def _normalize_purpose(key: str) -> str:
    return key.strip().lower().replace(" ", "_")


def _known_purpose(key: str) -> bool:
    try:
        Purpose(_normalize_purpose(key))
        return True
    except ValueError:
        return False


class _Adv:
    """Uniform view over Advertisement objects and wire-form dicts."""

    def __init__(self, raw: Any) -> None:
        if isinstance(raw, dict):
            self.advertisement_id = str(raw.get("advertisement_id", ""))
            self.kind = str(raw.get("kind", ""))
            self.coverage_space_id = str(raw.get("coverage_space_id", ""))
            self.document = raw.get("document") or {}
            self.settings = raw.get("settings")
        else:
            self.advertisement_id = raw.advertisement_id
            self.kind = raw.kind
            self.coverage_space_id = raw.coverage_space_id
            self.document = raw.document
            self.settings = raw.settings


class PolicyLinter:
    """Audits advertisement sets, policies, and preference collections.

    ``spatial`` enables space-reference checks (P001) and spatial
    conflict overlap; ``ontology`` defaults to the DBH ontology and
    drives the sensor checks (P002).  ``select`` is a pre-expanded set
    of rule ids to keep (``None`` keeps all).
    """

    def __init__(
        self,
        spatial: Optional[SpatialModel] = None,
        ontology: Optional[SensorOntology] = None,
        select: Optional[Set[str]] = None,
    ) -> None:
        self._spatial = spatial
        self._ontology = ontology if ontology is not None else default_ontology()
        self._select = select

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def lint_registry(self, registry: Any) -> List[Finding]:
        """Audit a whole advertisement set.

        ``registry`` is anything with an ``advertisements()`` hook (the
        IRR), or a plain iterable of advertisements / wire dicts.
        """
        hook = getattr(registry, "advertisements", None)
        raw = hook() if callable(hook) else list(registry)
        advertisements = [_Adv(item) for item in raw]
        findings: List[Finding] = []
        for advertisement in advertisements:
            findings.extend(self.lint_advertisement(advertisement))
        findings.extend(self._check_duplicates(advertisements))
        return self._done(findings)

    def lint_building(
        self,
        policies: Sequence[BuildingPolicy],
        preferences: Sequence[UserPreference] = (),
        registry: Any = None,
    ) -> List[Finding]:
        """One-stop audit: policy set + conflicts + advertisements."""
        findings = list(self.lint_policies(policies))
        findings.extend(self.lint_conflicts(policies, preferences))
        if registry is not None:
            findings.extend(self.lint_registry(registry))
        return self._done(findings)

    # ------------------------------------------------------------------
    # Advertisements / documents
    # ------------------------------------------------------------------
    def lint_advertisement(self, advertisement: Any) -> List[Finding]:
        adv = advertisement if isinstance(advertisement, _Adv) else _Adv(advertisement)
        subject = adv.advertisement_id or "<advertisement>"
        findings: List[Finding] = []
        if self._spatial is not None and adv.coverage_space_id not in self._spatial:
            findings.append(self._finding(
                "P001", subject,
                "coverage space %r is not in the spatial model"
                % adv.coverage_space_id,
            ))
        if adv.kind == "resource":
            findings.extend(self.lint_resource_document(adv.document, subject))
        elif adv.kind == "service":
            findings.extend(self.lint_service_document(adv.document, subject))
        if adv.settings is not None:
            findings.extend(
                self._check_settings(adv.settings, adv.document, subject)
            )
        return self._done(findings)

    def lint_resource_document(
        self, data: Dict[str, Any], subject: str = "<resource-document>"
    ) -> List[Finding]:
        """Audit a Figure-2 dict (schema validity is assumed/lazy)."""
        findings: List[Finding] = []
        for entry in data.get("resources", ()):
            name = entry.get("info", {}).get("name", subject)
            where = "%s:%s" % (subject, name) if subject != name else subject
            sensor_type = entry.get("sensor", {}).get("type", "")
            if sensor_type not in _SENSORLESS and sensor_type not in self._ontology:
                findings.append(self._finding(
                    "P002", where,
                    "sensor type %r is not in the ontology" % sensor_type,
                ))
            findings.extend(self._check_purposes(entry.get("purpose", {}), where))
            findings.extend(
                self._check_observations(entry.get("observations", ()), where)
            )
            retention = entry.get("retention", {}).get("duration")
            if retention:
                findings.extend(self._check_retention(
                    retention, entry.get("purpose", {}), where
                ))
        return self._done(findings)

    def lint_service_document(
        self, data: Dict[str, Any], subject: str = "<service-document>"
    ) -> List[Finding]:
        """Audit a Figure-3 dict."""
        findings: List[Finding] = []
        purposes = {
            key: value
            for key, value in data.get("purpose", {}).items()
            if key != "service_id"
        }
        findings.extend(self._check_purposes(purposes, subject))
        findings.extend(
            self._check_observations(data.get("observations", ()), subject)
        )
        return self._done(findings)

    # ------------------------------------------------------------------
    # Policy sets and preference collections
    # ------------------------------------------------------------------
    def lint_policies(self, policies: Sequence[BuildingPolicy]) -> List[Finding]:
        findings: List[Finding] = []
        for policy in policies:
            if self._spatial is not None:
                for space_id in policy.space_ids:
                    if space_id not in self._spatial:
                        findings.append(self._finding(
                            "P001", policy.policy_id,
                            "space selector %r is not in the spatial model"
                            % space_id,
                        ))
            for sensor_type in policy.sensor_types:
                if sensor_type not in self._ontology:
                    findings.append(self._finding(
                        "P002", policy.policy_id,
                        "sensor type %r is not in the ontology" % sensor_type,
                    ))
            retention = policy.retention
            if retention is not None and policy.purposes:
                allowed = max(
                    (
                        PURPOSE_MAX_RETENTION[purpose].total_seconds()
                        for purpose in policy.purposes
                    ),
                )
                if retention.total_seconds() > allowed:
                    findings.append(self._finding(
                        "P007", policy.policy_id,
                        "retention %s exceeds the %ds its purposes allow"
                        % (retention.isoformat(), allowed),
                    ))
        findings.extend(self._check_shadowing(policies))
        findings.extend(self._check_contradictions(policies))
        return self._done(findings)

    def lint_conflicts(
        self,
        policies: Sequence[BuildingPolicy],
        preferences: Sequence[UserPreference],
        context: Optional[EvaluationContext] = None,
    ) -> List[Finding]:
        """All-pairs HARD conflicts over the whole preference store."""
        if not policies or not preferences:
            return []
        if context is None:
            context = EvaluationContext(spatial=self._spatial)
        findings: List[Finding] = []
        by_user = detect_conflicts_by_user(
            policies, preferences, context, kinds=(ConflictKind.HARD,)
        )
        for user_id in sorted(by_user):
            for conflict in by_user[user_id]:
                findings.append(self._finding(
                    "P009", conflict.policy.policy_id,
                    "mandatory policy overlaps opt-out preference %r of "
                    "user %s; the preference can never be honoured"
                    % (conflict.preference.preference_id, user_id),
                ))
        return self._done(findings)

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def _check_purposes(
        self, purposes: Dict[str, Any], subject: str
    ) -> List[Finding]:
        findings = []
        for key in purposes:
            if not _known_purpose(key):
                findings.append(self._finding(
                    "P003", subject,
                    "purpose %r is outside the purpose taxonomy" % key,
                ))
        return findings

    def _check_observations(
        self, observations: Sequence[Dict[str, Any]], subject: str
    ) -> List[Finding]:
        findings = []
        for observation in observations:
            for inferred in observation.get("inferred", ()):
                if inferred not in _DATA_CATEGORY_VALUES:
                    findings.append(self._finding(
                        "P004", subject,
                        "observation %r infers %r, which is not a data "
                        "category" % (observation.get("name", "?"), inferred),
                    ))
        return findings

    def _check_retention(
        self, duration_text: str, purposes: Dict[str, Any], subject: str
    ) -> List[Finding]:
        try:
            retention = Duration.parse(duration_text)
        except Exception:
            return []  # malformed durations are the schema's to reject
        named = [
            Purpose(_normalize_purpose(key))
            for key in purposes
            if _known_purpose(key)
        ]
        if not named:
            return []
        allowed = max(
            PURPOSE_MAX_RETENTION[purpose].total_seconds() for purpose in named
        )
        if retention.total_seconds() > allowed:
            return [self._finding(
                "P007", subject,
                "retention %s exceeds the %ds its purposes allow"
                % (retention.isoformat(), allowed),
            )]
        return []

    def _check_settings(
        self, settings: Dict[str, Any], document: Dict[str, Any], subject: str
    ) -> List[Finding]:
        """P008: options must not promise finer data than is declared.

        A settings group named after an observation (e.g. ``location``)
        whose options include a granularity finer than the finest that
        observation is declared at advertises a cap the resource cannot
        produce data under -- the user would be choosing among lies.
        """
        declared: Dict[str, int] = {}
        for entry in document.get("resources", ()):
            for observation in entry.get("observations", ()):
                granularity = observation.get("granularity")
                if granularity is None:
                    continue
                rank = GranularityLevel.from_string(granularity).rank
                name = observation.get("name", "")
                declared[name] = max(declared.get(name, -1), rank)
        findings = []
        for group in settings.get("settings", ()):
            name = group.get("name", "")
            if name not in declared:
                continue
            for option in group.get("select", ()):
                granularity = option.get("granularity")
                if granularity is None:
                    continue
                rank = GranularityLevel.from_string(granularity).rank
                if rank > declared[name]:
                    findings.append(self._finding(
                        "P008", subject,
                        "settings group %r offers %s but the document "
                        "declares %r at most at rank %d"
                        % (name, granularity, name, declared[name]),
                    ))
        return findings

    def _check_shadowing(
        self, policies: Sequence[BuildingPolicy]
    ) -> List[Finding]:
        findings = []
        for shadowed in policies:
            for shadower in policies:
                if shadower.policy_id == shadowed.policy_id:
                    continue
                blocking = (
                    shadower.effect is not shadowed.effect
                    and (shadower.mandatory or shadower.priority >= shadowed.priority)
                    and not shadowed.mandatory
                )
                if blocking and scope_covers(shadower, shadowed):
                    findings.append(self._finding(
                        "P005", shadowed.policy_id,
                        "%r can never take effect: %r covers its whole "
                        "scope with the opposite effect"
                        % (shadowed.policy_id, shadower.policy_id),
                    ))
        return findings

    def _check_contradictions(
        self, policies: Sequence[BuildingPolicy]
    ) -> List[Finding]:
        findings = []
        seen: Dict[Tuple, BuildingPolicy] = {}
        for policy in policies:
            key = (
                frozenset(policy.categories),
                frozenset(policy.sensor_types),
                frozenset(policy.space_ids),
                frozenset(policy.phases),
                frozenset(policy.purposes),
            )
            other = seen.get(key)
            if other is not None and other.effect is not policy.effect:
                findings.append(self._finding(
                    "P006", policy.policy_id,
                    "%r and %r select identical requests but declare "
                    "opposite effects" % (other.policy_id, policy.policy_id),
                ))
            else:
                seen[key] = policy
        return findings

    def _check_duplicates(self, advertisements: List[_Adv]) -> List[Finding]:
        findings = []
        by_id: Dict[str, _Adv] = {}
        by_body: Dict[str, str] = {}
        for adv in advertisements:
            if adv.advertisement_id in by_id:
                findings.append(self._finding(
                    "P010", adv.advertisement_id,
                    "advertisement id %r appears more than once"
                    % adv.advertisement_id,
                ))
                continue
            by_id[adv.advertisement_id] = adv
            body = repr((adv.kind, adv.coverage_space_id, adv.document))
            if body in by_body:
                findings.append(self._finding(
                    "P010", adv.advertisement_id,
                    "advertisement %r duplicates the document of %r"
                    % (adv.advertisement_id, by_body[body]),
                ))
            else:
                by_body[body] = adv.advertisement_id
        return findings

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _finding(self, rule_id: str, subject: str, message: str) -> Finding:
        from repro.analysis.findings import RULES

        return Finding(
            rule_id=rule_id,
            severity=RULES[rule_id].severity,
            message=message,
            subject=subject,
        )

    def _done(self, findings: List[Finding]) -> List[Finding]:
        return sort_findings(
            finding for finding in findings if selected(finding, self._select)
        )


def lint_dbh_scenario(select: Optional[Set[str]] = None) -> List[Finding]:
    """Audit the shipped DBH deployment exactly as Figure 1 builds it.

    Policies, the compiled resource advertisement, the Figure-4 settings
    document, and the concierge service advertisement all pass through
    the linter; the result is the repo's own lint gate (and must stay
    empty).
    """
    from repro.core.policy import catalog
    from repro.irr.registry import IoTResourceRegistry
    from repro.services.concierge import SmartConcierge
    from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
    from repro.spatial.model import SpaceType

    tippers = make_dbh_tippers()
    rooms = [
        s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)
    ]
    meeting_rooms = [
        s.space_id
        for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)
        if s.attributes.get("meeting_room") == "yes"
    ]
    for policy in (
        catalog.policy_1_comfort(rooms),
        catalog.policy_2_emergency_location(BUILDING_ID),
        catalog.policy_3_meeting_room_access(meeting_rooms),
        catalog.policy_service_sharing(BUILDING_ID),
    ):
        tippers.define_policy(policy)
    registry = IoTResourceRegistry("irr-dbh", tippers.spatial)
    registry.publish_resource(
        "dbh-building-policies",
        BUILDING_ID,
        tippers.policy_manager.compile_policy_document(),
        settings=tippers.policy_manager.settings_space.to_document(),
    )
    registry.publish_service(
        "dbh-concierge", BUILDING_ID, SmartConcierge(tippers).policy_document()
    )
    linter = PolicyLinter(spatial=tippers.spatial, select=select)
    return linter.lint_building(
        tippers.policy_manager.policies(), registry=registry
    )
