"""Static analysis: policy lint, AST code lint, and privacy-flow lint.

Three analyzers share one finding/severity/reporting core
(:mod:`repro.analysis.findings`):

- :class:`PolicyLinter` audits whole advertisement registries and
  policy documents statically (rules ``P001``--``P010``).
- :class:`CodeLinter` runs stdlib-``ast`` rules over the codebase
  itself (rules ``C001``--``C007``).
- :class:`~repro.analysis.flow.FlowAnalyzer` runs the interprocedural
  privacy-flow rules (``F001``--``F006``) over a module-level call
  graph, proving that no observation path bypasses enforcement (see
  :mod:`repro.analysis.flow`).

All three are exposed through ``python -m repro lint``.
"""

from repro.analysis.code_lint import CodeLinter, lint_paths
from repro.analysis.findings import (
    Finding,
    Rule,
    Severity,
    all_rules,
    expand_selection,
    exit_code,
    render_json,
    render_text,
    sort_findings,
)
from repro.analysis.flow import (
    FlowAnalyzer,
    FlowBaseline,
    analyze_flow_paths,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.analysis.policy_lint import (
    PURPOSE_MAX_RETENTION,
    PolicyLinter,
    lint_dbh_scenario,
)

__all__ = [
    "CodeLinter",
    "Finding",
    "FlowAnalyzer",
    "FlowBaseline",
    "PolicyLinter",
    "PURPOSE_MAX_RETENTION",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_flow_paths",
    "apply_baseline",
    "baseline_from_findings",
    "exit_code",
    "expand_selection",
    "lint_dbh_scenario",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_findings",
    "write_baseline",
]
