"""Static analysis: policy-set lint and a custom AST lint pass.

Two analyzers share one finding/severity/reporting core
(:mod:`repro.analysis.findings`):

- :class:`PolicyLinter` audits whole advertisement registries and
  policy documents statically (rules ``P001``--``P010``).
- :class:`CodeLinter` runs stdlib-``ast`` rules over the codebase
  itself (rules ``C001``--``C006``).

Both are exposed through ``python -m repro lint``.
"""

from repro.analysis.code_lint import CodeLinter, lint_paths
from repro.analysis.findings import (
    Finding,
    Rule,
    Severity,
    all_rules,
    expand_selection,
    exit_code,
    render_json,
    render_text,
    sort_findings,
)
from repro.analysis.policy_lint import (
    PURPOSE_MAX_RETENTION,
    PolicyLinter,
    lint_dbh_scenario,
)

__all__ = [
    "CodeLinter",
    "Finding",
    "PolicyLinter",
    "PURPOSE_MAX_RETENTION",
    "Rule",
    "Severity",
    "all_rules",
    "exit_code",
    "expand_selection",
    "lint_dbh_scenario",
    "lint_paths",
    "render_json",
    "render_text",
    "sort_findings",
]
