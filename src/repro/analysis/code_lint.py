"""AST lint pass enforcing repo invariants the test suite cannot.

The simulation layer takes injected clocks and RNGs precisely so runs
are reproducible; one stray ``time.time()`` or unseeded ``random``
call silently breaks that property without failing any test.  These
rules pin the invariants statically, the way sanitizers shift races
and leaks from production traffic to the build:

========  ====================  ========================================
C001      wall-clock            ``time.time()`` / ``datetime.now()``
C002      unseeded-random       module-level ``random`` or ``Random()``
C003      bare-except           ``except:`` swallows everything
C004      mutable-default       list/dict/set literal as a default
C005      metric-name           metric names must be dotted.snake_case
C006      layer-import          module-level import violating the DAG
C007      unbounded-call        bus call without a deadline (clients)
========  ====================  ========================================

Suppress a finding by putting ``# repro: noqa=C002`` on the flagged
line (with a justification comment -- the gate reviews them).  Only
absolute ``repro.*`` imports are layer-checked, which is the repo's
idiom; function-local imports are the sanctioned escape hatch for
wiring code (and what ``__main__`` already does), so C006 looks at
module level only.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    Finding,
    Severity,
    is_suppressed,
    register_rule,
    selected,
    sort_findings,
    suppressions_in,
)

register_rule(
    "C001", "wall-clock", Severity.ERROR,
    "Reads an ambient clock (time.time, time.monotonic, datetime.now, "
    "...), directly or via an import-time alias; inject a clock or "
    "simulation timestamp instead so runs are reproducible.",
)
register_rule(
    "C002", "unseeded-random", Severity.ERROR,
    "Uses the process-global random module or an unseeded Random(); "
    "accept an injected random.Random or seed one explicitly.",
)
register_rule(
    "C003", "bare-except", Severity.ERROR,
    "A bare 'except:' also swallows KeyboardInterrupt and SystemExit; "
    "catch the narrowest exception that can actually occur.",
)
register_rule(
    "C004", "mutable-default", Severity.ERROR,
    "A mutable default argument is shared across calls; default to "
    "None (or a dataclass field factory) instead.",
)
register_rule(
    "C005", "metric-name", Severity.WARNING,
    "Metric and span names passed to repro.obs must be dotted.snake "
    "(lowercase segments of [a-z0-9_], joined by dots).",
)
register_rule(
    "C006", "layer-import", Severity.ERROR,
    "A module-level import crosses the layer DAG (e.g. core importing "
    "tippers); depend downward only or inject the collaborator.",
)
register_rule(
    "C007", "unbounded-call", Severity.WARNING,
    "A bus call in a client layer (services, iota) has no deadline=; "
    "under overload it can retry unbounded -- pass a Deadline so the "
    "admission controller and breakers can shed it predictably.",
)

#: Layers whose bus calls C007 requires to carry a deadline.  Building
#: infrastructure (tippers, irr) answers calls; these layers originate
#: them, so they own the time budget.
_DEADLINE_LAYERS = frozenset({"services", "iota"})

#: Wall-clock call paths banned by C001 (resolved through import *and*
#: module-level assignment aliases, so ``from datetime import datetime
#: as dt; dt.now()`` and ``_now = time.time; _now()`` are both
#: caught).  ``time.monotonic`` is banned alongside ``time.time``: it
#: is still an ambient clock the simulation cannot control.
#: ``time.perf_counter`` is deliberately allowed: it measures
#: durations inside one process run, not simulated time.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: ``random`` module functions that consume the shared global RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})
_METRIC_FUNCTIONS = frozenset({"timed", "span"})
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

#: The import DAG between top-level ``repro`` packages.  A package may
#: import itself, anything listed here, and nothing else at module
#: level.  Top-level modules (``errors``, ``__main__``) are exempt.
LAYER_DAG: Dict[str, Set[str]] = {
    "errors": set(),
    "obs": set(),
    "spatial": {"errors"},
    "users": {"errors"},
    "sensors": {"errors"},
    "net": {"errors", "obs"},
    "faults": {"errors", "net", "obs"},
    "core": {"errors", "obs", "sensors", "spatial"},
    "analysis": {"core", "errors", "obs", "sensors", "spatial"},
    "tippers": {"core", "errors", "net", "obs", "sensors", "spatial", "users"},
    "irr": {"core", "errors", "net", "obs", "spatial", "tippers"},
    "iota": {"core", "errors", "net", "obs", "spatial"},
    "services": {"core", "errors", "net", "obs", "spatial", "tippers"},
    "federation": {
        "core", "errors", "irr", "net", "obs", "sensors", "spatial",
        "tippers", "users",
    },
    "simulation": {
        "analysis", "core", "errors", "faults", "federation", "iota",
        "irr", "net", "obs", "sensors", "services", "spatial",
        "tippers", "users",
    },
}


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Maps local names to the absolute dotted path they stand for.

    Besides imports, module-level assignments that merely rebind a
    dotted path (``_now = time.time``, ``R = random.Random``) are
    followed, chaining through earlier aliases in source order -- an
    import-time alias must not launder a banned call past C001/C002.
    """

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def collect(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = "%s.%s" % (node.module, alias.name)
        # Assignment aliases: module body only, in source order, so
        # chains (``t = time; now = t.time``) resolve left to right.
        for node in tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            resolved = self.resolve(_dotted(node.value))
            if resolved is not None:
                self.aliases[target.id] = resolved

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """The absolute path a local dotted reference stands for."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return "%s.%s" % (base, rest) if rest else base


class CodeLinter:
    """Runs the C-rules over python sources."""

    def __init__(self, select: Optional[Set[str]] = None) -> None:
        self._select = select

    def lint_source(self, source: str, filename: str = "<string>") -> List[Finding]:
        """Findings for one module's source text.

        ``filename`` is echoed into findings and, when it contains a
        ``repro/<package>/`` component under ``src``, drives the
        layering rule.
        """
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return [Finding(
                rule_id="C006",
                severity=Severity.ERROR,
                message="cannot parse: %s" % exc.msg,
                file=filename,
                line=exc.lineno or 0,
            )]
        imports = _ImportTable()
        imports.collect(tree)
        findings: List[Finding] = []
        findings.extend(self._check_calls(tree, imports, filename))
        findings.extend(self._check_excepts(tree, filename))
        findings.extend(self._check_defaults(tree, filename))
        findings.extend(self._check_layering(tree, filename))
        findings.extend(self._check_deadlines(tree, filename))
        suppressions = suppressions_in(source)
        kept = [
            finding
            for finding in findings
            if selected(finding, self._select)
            and not is_suppressed(finding, suppressions)
        ]
        return sort_findings(kept)

    def lint_file(self, path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as handle:
            return self.lint_source(handle.read(), filename=path)

    # ------------------------------------------------------------------
    # C001 / C002 / C005: call-shaped rules
    # ------------------------------------------------------------------
    def _check_calls(
        self, tree: ast.AST, imports: _ImportTable, filename: str
    ) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(_dotted(node.func))
            if resolved in _WALL_CLOCK_CALLS:
                findings.append(self._finding(
                    "C001", filename, node.lineno,
                    "%s() reads the wall clock; inject a clock instead"
                    % resolved,
                ))
            elif resolved is not None and resolved.startswith("random."):
                member = resolved[len("random."):]
                if member in _GLOBAL_RANDOM_FNS:
                    findings.append(self._finding(
                        "C002", filename, node.lineno,
                        "random.%s() uses the shared global RNG; pass a "
                        "seeded random.Random" % member,
                    ))
                elif member == "Random" and not node.args and not node.keywords:
                    findings.append(self._finding(
                        "C002", filename, node.lineno,
                        "random.Random() without a seed is "
                        "nondeterministic; seed it or inject the RNG",
                    ))
            findings.extend(self._check_metric_name(node, imports, filename))
        return findings

    def _check_metric_name(
        self, node: ast.Call, imports: _ImportTable, filename: str
    ) -> List[Finding]:
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method not in _METRIC_METHODS and method not in _METRIC_FUNCTIONS:
                return []
        elif isinstance(node.func, ast.Name):
            method = node.func.id
            if method not in _METRIC_FUNCTIONS:
                return []
            resolved = imports.resolve(method)
            if resolved is None or not resolved.startswith("repro."):
                return []
        else:
            return []
        if not node.args:
            return []
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return []
        if _METRIC_NAME_RE.match(first.value):
            return []
        return [self._finding(
            "C005", filename, node.lineno,
            "metric/span name %r is not dotted.snake_case" % first.value,
        )]

    # ------------------------------------------------------------------
    # C003: bare except
    # ------------------------------------------------------------------
    def _check_excepts(self, tree: ast.AST, filename: str) -> List[Finding]:
        return [
            self._finding(
                "C003", filename, node.lineno,
                "bare 'except:' swallows every exception",
            )
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None
        ]

    # ------------------------------------------------------------------
    # C004: mutable defaults
    # ------------------------------------------------------------------
    def _check_defaults(self, tree: ast.AST, filename: str) -> List[Finding]:
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable_literal(default):
                    findings.append(self._finding(
                        "C004", filename, default.lineno,
                        "mutable default argument in %r is shared across "
                        "calls" % node.name,
                    ))
        return findings

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set"} and not node.args
        return False

    # ------------------------------------------------------------------
    # C006: layering
    # ------------------------------------------------------------------
    @staticmethod
    def _layer_of(filename: str) -> Optional[str]:
        """The repo layer a file belongs to, from its path."""
        parts = filename.replace("\\", "/").split("/")
        try:
            index = len(parts) - 1 - parts[::-1].index("repro")
        except ValueError:
            return None
        remainder = parts[index + 1:]
        if len(remainder) < 2:
            return None  # top-level module (errors.py, __main__.py)
        return remainder[0]

    def _check_layering(self, tree: ast.Module, filename: str) -> List[Finding]:
        layer = self._layer_of(filename)
        if layer not in LAYER_DAG:
            return []
        allowed = LAYER_DAG[layer] | {layer}
        findings = []
        for node in tree.body:  # module level only
            targets: List[Tuple[str, int]] = []
            if isinstance(node, ast.Import):
                targets = [(alias.name, node.lineno) for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                targets = [(node.module, node.lineno)]
            for target, lineno in targets:
                parts = target.split(".")
                if parts[0] != "repro" or len(parts) < 2:
                    continue
                imported = parts[1]
                if imported in LAYER_DAG and imported not in allowed:
                    findings.append(self._finding(
                        "C006", filename, lineno,
                        "layer %r must not import %r (allowed: %s)"
                        % (layer, imported, ", ".join(sorted(allowed))),
                    ))
        return findings

    # ------------------------------------------------------------------
    # C007: bus calls without a deadline (client layers)
    # ------------------------------------------------------------------
    def _check_deadlines(self, tree: ast.AST, filename: str) -> List[Finding]:
        """Flag ``<bus>.call(...)`` without ``deadline=`` in client layers.

        The receiver is matched by name: the last dotted segment before
        ``.call`` must end with ``bus`` (``self.bus``, ``self._bus``, a
        local ``bus``), which is the repo's naming idiom for
        :class:`~repro.net.bus.MessageBus` handles.  A ``**kwargs``
        splat is given the benefit of the doubt.
        """
        if self._layer_of(filename) not in _DEADLINE_LAYERS:
            return []
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "call"):
                continue
            receiver = _dotted(func.value)
            if receiver is None:
                continue
            if not receiver.split(".")[-1].lower().endswith("bus"):
                continue
            keywords = {kw.arg for kw in node.keywords}
            if "deadline" in keywords or None in keywords:
                continue
            findings.append(self._finding(
                "C007", filename, node.lineno,
                "%s.call(...) has no deadline=; pass a Deadline so the "
                "call cannot retry unbounded under overload" % receiver,
            ))
        return findings

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _finding(rule_id: str, filename: str, line: int, message: str) -> Finding:
        from repro.analysis.findings import RULES

        return Finding(
            rule_id=rule_id,
            severity=RULES[rule_id].severity,
            message=message,
            file=filename,
            line=line,
        )


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths`` (files or directories)."""
    import os

    from repro.errors import AnalysisError

    linter = CodeLinter(select=select)
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise AnalysisError("no such file or directory: %r" % path)
    findings: List[Finding] = []
    for filename in files:
        findings.extend(linter.lint_file(filename))
    return sort_findings(findings)
