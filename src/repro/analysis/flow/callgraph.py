"""Module-level call graph over the tree, built from stdlib ``ast``.

The graph is deliberately *approximate* -- python cannot be resolved
exactly without running it -- but it is approximate in a controlled,
deterministic way:

- Functions and methods become nodes named by fully-qualified
  qualnames (``repro.tippers.bms.TIPPERS.locate_user``).  A class name
  itself is a pseudo-node standing for its constructor.  Nested
  functions, lambdas, and comprehensions are flattened into the
  enclosing module-level function or method.
- Call sites resolve receivers through, in order: ``self`` and the
  enclosing class's base chain; local variables assigned a constructor
  or a class alias; parameter type annotations (including ``Optional``
  and string annotations); instance-attribute types inferred from
  ``self.x = ...`` assignments; and finally a receiver-name hint match
  (``self._engine`` ~ ``EnforcementEngine``).  Generic container
  method names (:data:`~repro.analysis.flow.model.GENERIC_METHOD_NAMES`)
  never resolve -- they are stdlib noise.
- Bus ``call``/``publish`` sites with a constant topic become a direct
  edge to the registered endpoint's ``handle`` method, resolved via a
  topic map scanned from ``bus.register(...)`` sites (with configured
  fallback hints).  Registrations of the form ``PREFIX + suffix``
  where ``PREFIX`` is a resolvable string constant (module-local or
  imported, e.g. the federation's ``SHARD_ENDPOINT_PREFIX``) feed a
  *prefix* map, and call sites whose topic shares a registered prefix
  resolve through it -- longest prefix wins.  Only targets that stay
  non-constant with no known prefix are recorded as *dynamic* sites,
  which rule F006 reports on tainted paths.
- A call through the ``cls`` parameter of a ``@classmethod`` resolves
  to the enclosing class's constructor pseudo-node instead of being
  flagged dynamic.
- Every collection iterates files, functions, and candidates in sorted
  order, so the same tree always produces the same graph.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.code_lint import _dotted, _ImportTable
from repro.analysis.findings import suppressions_in
from repro.analysis.flow.model import GENERIC_METHOD_NAMES, FlowModel
from repro.errors import AnalysisError

#: Receiver attributes treated as message-bus traffic when the receiver
#: name ends with ``bus``.
_BUS_CALL_ATTRS = frozenset({"call", "publish"})
_BUS_REGISTER_ATTRS = frozenset({"register", "register_handler"})


@dataclass(frozen=True)
class FunctionNode:
    """One node: a function, method, or class constructor pseudo-node."""

    qualname: str
    module: str
    name: str
    file: str
    lineno: int
    class_name: Optional[str] = None
    is_class: bool = False


@dataclass(frozen=True)
class CallSite:
    """One resolved (or dynamic) call inside a function node."""

    caller: str
    file: str
    line: int
    attr: str
    candidates: Tuple[str, ...]
    #: "used", "discarded" (bare expression statement), or
    #: "assigned-unread" (bound to a name never loaded afterward).
    usage: str = "used"
    dynamic: bool = False
    reason: str = ""


@dataclass
class ClassInfo:
    name: str
    qualname: str
    module: str
    file: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class _ModuleScan:
    name: str
    file: str
    tree: ast.Module
    imports: _ImportTable
    #: local symbol -> qualname for classes/functions defined here.
    symbols: Dict[str, str] = field(default_factory=dict)
    #: module-level string constants (topic names).
    constants: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """The assembled graph plus the symbol tables used to build it."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.sites: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, List[str]] = {}
        #: topic -> endpoint qualname (``Class.handle`` or a function).
        self.topics: Dict[str, str] = {}
        #: topic prefix -> endpoint qualname, from ``PREFIX + suffix``
        #: registrations (sharded endpoints like ``tippers-<building>``).
        self.topic_prefixes: Dict[str, str] = {}
        #: file -> {line -> suppressed rule ids} (# repro: noqa).
        self.suppressions: Dict[str, Dict[int, Set[str]]] = {}
        #: function params named brownout_level that are never read.
        self.unread_params: Dict[str, List[Tuple[str, int]]] = {}

    def sites_of(self, qualname: str) -> List[CallSite]:
        return self.sites.get(qualname, [])

    def callers_of(self, qualname: str) -> List[str]:
        return self.callers.get(qualname, [])

    def _finish(self) -> None:
        """Derive reverse edges; sort everything for determinism."""
        reverse: Dict[str, Set[str]] = {}
        for caller in sorted(self.sites):
            self.sites[caller].sort(key=lambda s: (s.line, s.attr))
            for site in self.sites[caller]:
                for candidate in site.candidates:
                    reverse.setdefault(candidate, set()).add(caller)
        self.callers = {
            callee: sorted(names) for callee, names in sorted(reverse.items())
        }


def _module_name_for(path: str) -> str:
    """Dotted module name from a file path (``repro.…`` when under it)."""
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part]
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    try:
        index = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return stem
    inner = parts[index + 1:-1]
    pieces = ["repro"] + inner
    if stem != "__init__":
        pieces.append(stem)
    return ".".join(pieces)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Every ``*.py`` under ``paths``, in sorted walk order."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise AnalysisError("no such file or directory: %r" % path)
    return files


class _GraphBuilder:
    def __init__(self, model: FlowModel) -> None:
        self._model = model
        self._graph = CallGraph()
        self._scans: List[_ModuleScan] = []
        #: simple class name -> sorted class qualnames.
        self._classes_by_name: Dict[str, List[str]] = {}
        #: method name -> sorted owning class qualnames.
        self._method_owners: Dict[str, List[str]] = {}
        self._return_cache: Dict[str, Tuple[str, ...]] = {}
        #: absolute dotted constant name -> string value, across every
        #: module, so imported endpoint prefixes resolve at call sites.
        self._module_constants: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Pass 1: declarations
    # ------------------------------------------------------------------
    def add_module(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(
                "cannot parse %s:%s: %s" % (path, exc.lineno, exc.msg)
            )
        imports = _ImportTable()
        imports.collect(tree)
        scan = _ModuleScan(
            name=_module_name_for(path), file=path, tree=tree, imports=imports
        )
        self._graph.suppressions[path] = suppressions_in(source)
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    scan.constants[target.id] = node.value.value
                    self._module_constants[
                        "%s.%s" % (scan.name, target.id)
                    ] = node.value.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._declare_function(scan, node, class_info=None)
            elif isinstance(node, ast.ClassDef):
                self._declare_class(scan, node)
        self._scans.append(scan)

    def _declare_function(
        self,
        scan: _ModuleScan,
        node: ast.AST,
        class_info: Optional[ClassInfo],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if class_info is None:
            qualname = "%s.%s" % (scan.name, node.name)
            scan.symbols[node.name] = qualname
        else:
            qualname = "%s.%s" % (class_info.qualname, node.name)
            class_info.methods[node.name] = qualname
        self._graph.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=scan.name,
            name=node.name,
            file=scan.file,
            lineno=node.lineno,
            class_name=class_info.name if class_info else None,
        )

    def _declare_class(self, scan: _ModuleScan, node: ast.ClassDef) -> None:
        qualname = "%s.%s" % (scan.name, node.name)
        scan.symbols[node.name] = qualname
        info = ClassInfo(
            name=node.name,
            qualname=qualname,
            module=scan.name,
            file=scan.file,
            lineno=node.lineno,
        )
        self._graph.classes[qualname] = info
        self._graph.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=scan.name,
            name=node.name,
            file=scan.file,
            lineno=node.lineno,
            class_name=node.name,
            is_class=True,
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._declare_function(scan, child, class_info=info)
        self._classes_by_name.setdefault(node.name, []).append(qualname)

    # ------------------------------------------------------------------
    # Pass 2: symbol tables that need every declaration
    # ------------------------------------------------------------------
    def _link_declarations(self) -> None:
        for name in self._classes_by_name:
            self._classes_by_name[name].sort()
        owners: Dict[str, Set[str]] = {}
        for info in self._graph.classes.values():
            for method in info.methods:
                owners.setdefault(method, set()).add(info.qualname)
        self._method_owners = {
            method: sorted(classes) for method, classes in owners.items()
        }
        for scan in self._scans:
            for node in scan.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = self._graph.classes[
                        "%s.%s" % (scan.name, node.name)
                    ]
                    info.bases = [
                        base
                        for base in (
                            self._resolve_symbol(scan, _dotted(expr))
                            for expr in node.bases
                        )
                        if base is not None and base in self._graph.classes
                    ]
        for scan in self._scans:
            for node in scan.tree.body:
                if isinstance(node, ast.ClassDef):
                    info = self._graph.classes[
                        "%s.%s" % (scan.name, node.name)
                    ]
                    info.attr_types = self._infer_attr_types(scan, node)

    def _resolve_symbol(
        self, scan: _ModuleScan, dotted: Optional[str]
    ) -> Optional[str]:
        """A local dotted reference -> declared qualname, if known."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        local = scan.symbols.get(head)
        if local is not None:
            candidate = "%s.%s" % (local, rest) if rest else local
            if candidate in self._graph.functions:
                return candidate
            if not rest:
                return local
            if local in self._graph.classes and "." not in rest:
                return self._find_method(local, rest)
            return None
        absolute = scan.imports.resolve(dotted)
        if absolute is None:
            absolute = dotted if dotted.startswith("repro.") else None
        if absolute is None:
            return None
        if absolute in self._graph.functions:
            return absolute
        # ``module.Class.method`` via an imported class.
        head_path, _, attr = absolute.rpartition(".")
        if head_path in self._graph.classes:
            found = self._find_method(head_path, attr)
            if found is not None:
                return found
        return None

    def _find_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Method lookup along the base chain (cycle-safe)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._graph.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def _annotation_classes(
        self, scan: _ModuleScan, annotation: Optional[ast.AST]
    ) -> Tuple[str, ...]:
        """Class qualnames named by a parameter/attribute annotation."""
        if annotation is None:
            return ()
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            resolved = self._resolve_symbol(scan, annotation.value.strip("'\""))
            return (resolved,) if resolved in self._graph.classes else ()
        if isinstance(annotation, ast.Subscript):
            head = _dotted(annotation.value)
            if head is not None and head.split(".")[-1] == "Optional":
                return self._annotation_classes(scan, annotation.slice)
            return ()
        resolved = self._resolve_symbol(scan, _dotted(annotation))
        return (resolved,) if resolved in self._graph.classes else ()

    def _value_classes(
        self,
        scan: _ModuleScan,
        value: ast.AST,
        params: Dict[str, Tuple[str, ...]],
        local_aliases: Dict[str, Tuple[str, ...]],
    ) -> Tuple[str, ...]:
        """Class qualnames a value expression may evaluate to."""
        if isinstance(value, ast.IfExp):
            return tuple(sorted(
                set(self._value_classes(scan, value.body, params, local_aliases))
                | set(self._value_classes(scan, value.orelse, params, local_aliases))
            ))
        if isinstance(value, ast.Call):
            target = _dotted(value.func)
            if isinstance(value.func, ast.Name) and value.func.id in local_aliases:
                return local_aliases[value.func.id]
            resolved = self._resolve_symbol(scan, target)
            if resolved in self._graph.classes:
                return (resolved,)
            if resolved in self._graph.functions:
                return self._function_return_classes(resolved)
            return ()
        if isinstance(value, ast.Name):
            if value.id in params:
                return params[value.id]
            if value.id in local_aliases:
                return local_aliases[value.id]
            resolved = self._resolve_symbol(scan, value.id)
            if resolved in self._graph.classes:
                return (resolved,)
            return ()
        resolved = self._resolve_symbol(scan, _dotted(value))
        if resolved in self._graph.classes:
            return (resolved,)
        return ()

    def _function_return_classes(self, qualname: str) -> Tuple[str, ...]:
        """One-hop return-type inference for factory functions."""
        cached = self._return_cache.get(qualname)
        if cached is not None:
            return cached
        self._return_cache[qualname] = ()  # cycle guard
        node = self._graph.functions.get(qualname)
        result: Set[str] = set()
        if node is not None and not node.is_class:
            scan = self._scan_for(node.module)
            definition = self._definition_of(node) if scan else None
            if scan is not None and definition is not None:
                locals_seen: Dict[str, Tuple[str, ...]] = {}
                for stmt in definition.body:
                    for inner in ast.walk(stmt):
                        if (
                            isinstance(inner, ast.Assign)
                            and len(inner.targets) == 1
                            and isinstance(inner.targets[0], ast.Name)
                        ):
                            classes = self._value_classes(
                                scan, inner.value, {}, locals_seen
                            )
                            if classes:
                                locals_seen[inner.targets[0].id] = classes
                        elif isinstance(inner, ast.Return) and inner.value is not None:
                            result |= set(self._value_classes(
                                scan, inner.value, {}, locals_seen
                            ))
        resolved = tuple(sorted(result))
        self._return_cache[qualname] = resolved
        return resolved

    def _scan_for(self, module: str) -> Optional[_ModuleScan]:
        for scan in self._scans:
            if scan.name == module:
                return scan
        return None

    def _definition_of(self, node: FunctionNode) -> Optional[ast.AST]:
        scan = self._scan_for(node.module)
        if scan is None:
            return None
        for stmt in scan.tree.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == node.name
                and node.class_name is None
            ):
                return stmt
            if isinstance(stmt, ast.ClassDef) and stmt.name == node.class_name:
                for child in stmt.body:
                    if (
                        isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and child.name == node.name
                    ):
                        return child
        return None

    def _infer_attr_types(
        self, scan: _ModuleScan, class_node: ast.ClassDef
    ) -> Dict[str, Tuple[str, ...]]:
        """``self.x`` -> class qualnames, scanned from every method."""
        attr_types: Dict[str, Set[str]] = {}
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = self._param_types(scan, method)
            local_aliases: Dict[str, Tuple[str, ...]] = {}
            for stmt in method.body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                    ):
                        classes = self._value_classes(
                            scan, node.value, params, local_aliases
                        )
                        if classes:
                            local_aliases[node.targets[0].id] = classes
                    targets: List[Tuple[ast.AST, Optional[ast.AST], Optional[ast.AST]]] = []
                    if isinstance(node, ast.Assign):
                        targets = [(t, node.value, None) for t in node.targets]
                    elif isinstance(node, ast.AnnAssign):
                        targets = [(node.target, node.value, node.annotation)]
                    for target, value, annotation in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        classes: Set[str] = set(
                            self._annotation_classes(scan, annotation)
                        )
                        if value is not None:
                            classes |= set(self._value_classes(
                                scan, value, params, local_aliases
                            ))
                        if classes:
                            attr_types.setdefault(target.attr, set()).update(
                                classes
                            )
        return {
            attr: tuple(sorted(classes))
            for attr, classes in attr_types.items()
        }

    def _param_types(
        self, scan: _ModuleScan, definition: ast.AST
    ) -> Dict[str, Tuple[str, ...]]:
        assert isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = definition.args
        every = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        result: Dict[str, Tuple[str, ...]] = {}
        for arg in every:
            classes = self._annotation_classes(scan, arg.annotation)
            if classes:
                result[arg.arg] = classes
        return result

    # ------------------------------------------------------------------
    # Pass 3: topics, then call sites
    # ------------------------------------------------------------------
    def _scan_topics(self) -> None:
        for scan in self._scans:
            for owner, definition in self._iter_definitions(scan):
                params = self._param_types(scan, definition)
                local_aliases = self._local_aliases(scan, definition, params)
                for stmt in definition.body:
                    for node in ast.walk(stmt):
                        if not isinstance(node, ast.Call):
                            continue
                        func = node.func
                        if not (
                            isinstance(func, ast.Attribute)
                            and func.attr in _BUS_REGISTER_ATTRS
                        ):
                            continue
                        receiver = _dotted(func.value)
                        if receiver is None or not (
                            receiver.split(".")[-1].lower().endswith("bus")
                        ):
                            continue
                        if len(node.args) < 2:
                            continue
                        topic = self._constant_str(scan, node.args[0])
                        prefix = (
                            None if topic is not None
                            else self._constant_prefix(scan, node.args[0])
                        )
                        if topic is None and prefix is None:
                            continue
                        endpoint = node.args[1]
                        target: Optional[str] = None
                        classes = self._value_classes(
                            scan, endpoint, params, local_aliases
                        )
                        if classes:
                            handle = self._find_method(classes[0], "handle")
                            target = handle or classes[0]
                        elif func.attr == "register_handler":
                            target = self._resolve_symbol(scan, _dotted(endpoint))
                        if target is None:
                            continue
                        if topic is not None:
                            if topic not in self._graph.topics:
                                self._graph.topics[topic] = target
                        elif prefix not in self._graph.topic_prefixes:
                            self._graph.topic_prefixes[prefix] = target
        for topic, hint in sorted(self._model.topic_hints.items()):
            if topic not in self._graph.topics:
                handle = self._find_method(hint, "handle")
                if handle is not None:
                    self._graph.topics[topic] = handle

    def _constant_str(self, scan: _ModuleScan, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            local = scan.constants.get(node.id)
            if local is not None:
                return local
            absolute = scan.imports.resolve(node.id)
            if absolute is not None:
                return self._module_constants.get(absolute)
            return None
        if isinstance(node, ast.Attribute):
            absolute = scan.imports.resolve(_dotted(node))
            if absolute is not None:
                return self._module_constants.get(absolute)
        return None

    def _constant_prefix(self, scan: _ModuleScan, node: ast.AST) -> Optional[str]:
        """The constant left edge of a ``PREFIX + suffix`` expression."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self._constant_str(scan, node.left)
        return None

    def _prefix_target(self, topic: str) -> Optional[str]:
        """The longest registered endpoint prefix covering ``topic``."""
        best: Optional[str] = None
        best_len = -1
        for prefix in sorted(self._graph.topic_prefixes):
            if topic.startswith(prefix) and len(prefix) > best_len:
                best = self._graph.topic_prefixes[prefix]
                best_len = len(prefix)
        return best

    def _iter_definitions(self, scan: _ModuleScan):
        for stmt in scan.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self._graph.functions["%s.%s" % (scan.name, stmt.name)], stmt
            elif isinstance(stmt, ast.ClassDef):
                info = self._graph.classes["%s.%s" % (scan.name, stmt.name)]
                for child in stmt.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield (
                            self._graph.functions[info.methods[child.name]],
                            child,
                        )

    def _local_aliases(
        self,
        scan: _ModuleScan,
        definition: ast.AST,
        params: Dict[str, Tuple[str, ...]],
    ) -> Dict[str, Tuple[str, ...]]:
        assert isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_aliases: Dict[str, Tuple[str, ...]] = {}
        for stmt in definition.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    classes = self._value_classes(
                        scan, node.value, params, local_aliases
                    )
                    if classes:
                        local_aliases[node.targets[0].id] = classes
        return local_aliases

    def _collect_sites(self) -> None:
        for scan in self._scans:
            for owner, definition in self._iter_definitions(scan):
                self._collect_function_sites(scan, owner, definition)

    def _collect_function_sites(
        self, scan: _ModuleScan, owner: FunctionNode, definition: ast.AST
    ) -> None:
        assert isinstance(definition, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = self._param_types(scan, definition)
        param_names = {
            arg.arg
            for arg in (
                list(definition.args.posonlyargs)
                + list(definition.args.args)
                + list(definition.args.kwonlyargs)
            )
        }
        local_aliases = self._local_aliases(scan, definition, params)
        cls_target: Optional[str] = None
        if owner.class_name is not None and any(
            isinstance(dec, ast.Name) and dec.id == "classmethod"
            for dec in definition.decorator_list
        ):
            cls_target = "%s.%s" % (owner.module, owner.class_name)
        usage: Dict[int, str] = {}
        loads: Set[str] = set()
        assigned_names: Dict[int, str] = {}
        for stmt in definition.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    usage[id(node.value)] = "discarded"
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    assigned_names[id(node.value)] = node.targets[0].id
                elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
        sites = self._graph.sites.setdefault(owner.qualname, [])
        for stmt in definition.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                site = self._resolve_call(
                    scan, owner, node, params, param_names, local_aliases,
                    cls_target,
                )
                if site is None:
                    continue
                bound = assigned_names.get(id(node))
                if bound is not None and (bound == "_" or bound not in loads):
                    site_usage = "assigned-unread"
                else:
                    site_usage = usage.get(id(node), "used")
                sites.append(CallSite(
                    caller=owner.qualname,
                    file=owner.file,
                    line=node.lineno,
                    attr=site[0],
                    candidates=site[1],
                    usage=site_usage,
                    dynamic=site[2],
                    reason=site[3],
                ))
        # Track brownout parameters the function body never reads.
        if "brownout_level" in param_names and "brownout_level" not in loads:
            self._graph.unread_params.setdefault(owner.qualname, []).append(
                ("brownout_level", definition.lineno)
            )

    def _resolve_call(
        self,
        scan: _ModuleScan,
        owner: FunctionNode,
        node: ast.Call,
        params: Dict[str, Tuple[str, ...]],
        param_names: Set[str],
        local_aliases: Dict[str, Tuple[str, ...]],
        cls_target: Optional[str] = None,
    ) -> Optional[Tuple[str, Tuple[str, ...], bool, str]]:
        """(attr, candidates, dynamic, reason) for one call, or None."""
        func = node.func
        if isinstance(func, ast.Call):
            inner = _dotted(func.func)
            if inner is not None and inner.split(".")[-1] == "getattr":
                return ("<getattr>", (), True, "getattr() result called")
            return None
        if isinstance(func, ast.Name):
            if func.id in param_names and self._resolve_symbol(scan, func.id) is None:
                if func.id == "cls" and cls_target is not None:
                    # ``cls(...)`` inside a @classmethod is the
                    # enclosing class's constructor, not open dispatch.
                    return (func.id, (cls_target,), False, "")
                return (func.id, (), True, "call through parameter %r" % func.id)
            resolved = self._resolve_symbol(scan, func.id)
            if resolved is None:
                return None
            return (func.id, (resolved,), False, "")
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = _dotted(func.value)
        # Bus traffic: resolve constant topics to the endpoint's handle.
        if (
            receiver is not None
            and receiver.split(".")[-1].lower().endswith("bus")
            and attr in _BUS_CALL_ATTRS
        ):
            topic = self._constant_str(scan, node.args[0]) if node.args else None
            if topic is not None:
                target = self._graph.topics.get(topic)
                if target is None:
                    target = self._prefix_target(topic)
                if target is None:
                    return None
                return (attr, (target,), False, "")
            prefix = (
                self._constant_prefix(scan, node.args[0])
                if node.args else None
            )
            if prefix is not None:
                target = self._prefix_target(prefix)
                if target is not None:
                    return (attr, (target,), False, "")
            return (attr, (), True, "bus target is not a constant topic")
        # Full dotted resolution (imported functions, Class.method).
        resolved = self._resolve_symbol(scan, _dotted(func))
        if resolved is not None:
            return (attr, (resolved,), False, "")
        receiver_classes = self._receiver_classes(
            scan, owner, func.value, params, local_aliases
        )
        if receiver_classes:
            found = sorted({
                method
                for method in (
                    self._find_method(cls, attr) for cls in receiver_classes
                )
                if method is not None
            })
            if found:
                return (attr, tuple(found), False, "")
            return None
        if attr in GENERIC_METHOD_NAMES:
            return None
        owners = self._method_owners.get(attr)
        if owners and receiver is not None:
            hinted = self._hint_match(receiver, owners)
            if hinted:
                found = sorted({
                    method
                    for method in (
                        self._find_method(cls, attr) for cls in hinted
                    )
                    if method is not None
                })
                if found:
                    return (attr, tuple(found), False, "")
        return None

    def _receiver_classes(
        self,
        scan: _ModuleScan,
        owner: FunctionNode,
        receiver: ast.AST,
        params: Dict[str, Tuple[str, ...]],
        local_aliases: Dict[str, Tuple[str, ...]],
    ) -> Tuple[str, ...]:
        """The classes a call receiver expression may be."""
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and owner.class_name is not None:
                return ("%s.%s" % (owner.module, owner.class_name),)
            if receiver.id in local_aliases:
                return local_aliases[receiver.id]
            if receiver.id in params:
                return params[receiver.id]
            return ()
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
        ):
            base_classes: Tuple[str, ...] = ()
            if receiver.value.id == "self" and owner.class_name is not None:
                base_classes = (
                    "%s.%s" % (owner.module, owner.class_name),
                )
            elif receiver.value.id in local_aliases:
                base_classes = local_aliases[receiver.value.id]
            elif receiver.value.id in params:
                base_classes = params[receiver.value.id]
            result: Set[str] = set()
            for cls in base_classes:
                for ancestor in self._ancestry(cls):
                    info = self._graph.classes.get(ancestor)
                    if info is not None and receiver.attr in info.attr_types:
                        result |= set(info.attr_types[receiver.attr])
                        break
            return tuple(sorted(result))
        return ()

    def _ancestry(self, class_qualname: str) -> List[str]:
        seen: List[str] = []
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            info = self._graph.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return seen

    @staticmethod
    def _hint_match(receiver: str, owners: List[str]) -> List[str]:
        """Classes whose name matches the receiver's naming hint."""
        hint = receiver.split(".")[-1].strip("_").lower().replace("_", "")
        if not hint:
            return []
        trimmed = hint[:-1] if hint.endswith("s") else hint
        matched = []
        for qualname in owners:
            cls = qualname.split(".")[-1].lower()
            if (
                hint in cls or cls in hint
                or trimmed in cls or cls in trimmed
            ):
                matched.append(qualname)
        return matched

    def _constructor_edges(self) -> None:
        """Calling a class runs its ``__init__``: add the pseudo-edge."""
        for qualname in sorted(self._graph.classes):
            init = self._find_method(qualname, "__init__")
            if init is None:
                continue
            node = self._graph.functions[qualname]
            self._graph.sites.setdefault(qualname, []).append(CallSite(
                caller=qualname,
                file=node.file,
                line=node.lineno,
                attr="__init__",
                candidates=(init,),
            ))

    def build(self) -> CallGraph:
        self._link_declarations()
        self._scan_topics()
        self._collect_sites()
        self._constructor_edges()
        self._graph._finish()
        return self._graph


def build_call_graph(
    paths: Sequence[str], model: FlowModel
) -> CallGraph:
    """Parse every python file under ``paths`` into one call graph."""
    builder = _GraphBuilder(model)
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            builder.add_module(path, handle.read())
    return builder.build()


def build_call_graph_from_sources(
    sources: Dict[str, str], model: FlowModel
) -> CallGraph:
    """Testing hook: build from ``{path: source}`` without touching disk."""
    builder = _GraphBuilder(model)
    for path in sorted(sources):
        builder.add_module(path, sources[path])
    return builder.build()
