"""The flow model: what counts as a source, sink, or sanitizer.

The analyzer itself (``analyzer.py``) is generic graph machinery; this
module pins the repo-specific facts.  Every spec is a regular
expression matched against fully-qualified function names of the form
``repro.tippers.bms.TIPPERS.locate_user`` (``module.Class.method`` or
``module.function``; a bare class qualname stands for its constructor).

Three taint roles:

**Sources** produce observation-derived data: sensor sampling entry
points and datastore/WAL reads of observation payloads.

**Sinks** release data beyond the enforcement boundary: query-response
construction, storage appends of observations, and IoTA notifications.
Bus publishes to non-constant targets are handled structurally (F006),
not by name.

**Sanitizers** are the enforcement crossings: ``engine.decide`` (and
the caching subclass), capture-phase ``enforce_observation``, audited
fail-closed denials, and brownout coarsening.  A function that
*directly* calls a sanitizer is a *sanitizing wrapper* and blocks taint
-- directly, not transitively, so a rogue parallel path inside a
wrapper's caller is still caught.

The model also carries the **excluded module prefixes**: harness and
transport layers (simulation, bench, faults, analysis itself, obs,
errors, bus/codec internals) whose orchestration code would otherwise
manufacture false source-to-sink paths.  Their files still parse and
their bus registrations still feed the topic map; they just do not
join the taint graph.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Pattern, Sequence, Tuple


def _compile(specs: Sequence[str]) -> Tuple[Pattern[str], ...]:
    return tuple(re.compile(spec) for spec in specs)


@dataclass(frozen=True)
class FlowModel:
    """One configuration of the privacy-flow analyzer."""

    source_specs: Tuple[str, ...]
    sink_specs: Tuple[str, ...]
    sanitizer_specs: Tuple[str, ...]
    #: Functions recording an audited denial; F004 accepts these (or a
    #: sanitizer) on any path that returns a denied response.
    audit_specs: Tuple[str, ...]
    #: Module prefixes excluded from the taint graph entirely.
    excluded_module_prefixes: Tuple[str, ...] = ()
    #: Qualnames allowed to contain unresolvable dynamic dispatch on a
    #: tainted path without tripping F006.  Entries that match no
    #: function containing a dynamic call site are reported as stale.
    dynamic_allowlist: Tuple[str, ...] = ()
    #: Fallback ``topic -> class qualname`` hints for bus registrations
    #: whose endpoint expression the call-graph builder cannot type.
    topic_hints: Dict[str, str] = field(default_factory=dict)

    def source_patterns(self) -> Tuple[Pattern[str], ...]:
        return _compile(self.source_specs)

    def sink_patterns(self) -> Tuple[Pattern[str], ...]:
        return _compile(self.sink_specs)

    def sanitizer_patterns(self) -> Tuple[Pattern[str], ...]:
        return _compile(self.sanitizer_specs)

    def audit_patterns(self) -> Tuple[Pattern[str], ...]:
        return _compile(self.audit_specs)

    def excludes(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.excluded_module_prefixes
        )


#: Method names so generic that an unresolved ``obj.<name>(...)`` call
#: is assumed to be a container/stdlib operation, not dispatch into the
#: privacy pipeline.  Keeps the call graph from exploding on ``append``
#: and friends.
GENERIC_METHOD_NAMES = frozenset({
    "add", "append", "clear", "copy", "count", "discard", "encode",
    "decode", "endswith", "extend", "find", "format", "get", "index",
    "inc", "isdigit", "items", "join", "keys", "lower", "lstrip",
    "observe", "partition", "pop", "popleft", "read", "remove",
    "replace", "rstrip", "set", "setdefault", "sort", "split",
    "splitlines", "startswith", "strip", "title", "update", "upper",
    "values", "write",
})
# NOTE: ``observe`` above is the *histogram* method; the sensor-side
# capture entry points are ``sample``/``sample_all``, which the default
# model marks as sources by qualname, so nothing is lost.

#: The repo's own model.  Kept as data so tests can build narrow
#: models and future layers can extend the specs without touching the
#: analyzer.
DEFAULT_MODEL = FlowModel(
    source_specs=(
        # Sensor capture entry points.
        r"^repro\.sensors\.[a-z_.]+\.[A-Za-z_]*Sensor[A-Za-z_]*\.sample$",
        r"^repro\.sensors\.subsystem\.SensorSubsystem\.sample_all$",
        r"^repro\.sensors\.drivers\.[A-Za-z_]+\.sample$",
        # Datastore reads of observation payloads.
        r"^repro\.tippers\.datastore\.Datastore\.(query|latest)$",
        # WAL segment reads (recovery/compaction replaying payloads).
        r"^repro\.storage\.wal\.scan_segment$",
    ),
    sink_specs=(
        # Query responses released to services.
        r"^repro\.tippers\.request_manager\.QueryResponse(\.denied)?$",
        # Storage appends of observations.
        r"^repro\.tippers\.datastore\.Datastore\.(insert|insert_many)$",
        r"^repro\.storage\.durable\.StorageEngine\.log_observation$",
        # IoTA notifications shown to the user.
        r"^repro\.iota\.notifications\.NotificationManager\.offer$",
    ),
    sanitizer_specs=(
        r"^repro\.core\.enforcement\.engine\.EnforcementEngine\."
        r"(decide|enforce_observation|audit_degraded_denial)$",
        r"^repro\.core\.enforcement\.cache\.CachingEnforcementEngine\.decide$",
        # Audited fail-closed denial (internal, but a legitimate block).
        r"^repro\.core\.enforcement\.engine\.EnforcementEngine\._fail_closed$",
        # Brownout coarsening degrades before release.
        r"^repro\.tippers\.request_manager\._brownout_granularity$",
        r"^repro\.core\.enforcement\.mechanisms\.degrade_observation$",
    ),
    audit_specs=(
        r"^repro\.core\.enforcement\.audit\.AuditLog\.append$",
        r"^repro\.storage\.durable\.DurableAuditLog\.append$",
        r"^repro\.core\.enforcement\.engine\.EnforcementEngine\._record$",
    ),
    excluded_module_prefixes=(
        "repro.analysis",
        "repro.bench",
        "repro.errors",
        "repro.faults",
        "repro.net.bus",
        "repro.net.codec",
        "repro.obs",
        "repro.simulation",
    ),
    dynamic_allowlist=(
        # The IoTA's one generic bus caller: its targets are the
        # building registries it discovered, all of which answer with
        # enforced data; reviewed 2026-08.
        "repro.iota.assistant.IoTAssistant._call",
        # Filter predicates over already-audited records: the caller
        # supplies a pure selector, never a release path; reviewed
        # 2026-08.
        "repro.core.enforcement.audit.AuditLog.records",
        # Capture gate is the enforcement hook itself (wired to
        # engine.enforce_observation by the subsystem's owner);
        # reviewed 2026-08.
        "repro.sensors.subsystem.SensorSubsystem.sample_all",
        # Query predicates filter rows in place; results still cross
        # the request manager's decide() before release; reviewed
        # 2026-08.
        "repro.tippers.datastore.Datastore.query",
        # Torn-tail diagnostics callback: carries segment offsets, not
        # observation payloads; reviewed 2026-08.
        "repro.tippers.persistence._report_torn_tail",
    ),
    topic_hints={
        # scenario wiring registers endpoints via factory returns the
        # builder cannot always type; pin the paper's fixed topics.
        "tippers": "repro.tippers.bms.TIPPERS",
    },
)
