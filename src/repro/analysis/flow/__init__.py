"""Interprocedural privacy-flow analysis (rules ``F001``--``F006``).

The paper's central guarantee -- captured sensor data reaches consumers
only *after* policy/preference enforcement -- is enforced dynamically by
tests and scenarios.  This package proves it statically: it builds a
module-level call graph over the tree, marks taint **sources** (sensor
capture entry points, datastore/WAL reads of observation payloads),
**sinks** (query responses, storage appends, IoTA notifications, bus
publishes leaving the TIPPERS boundary), and **sanitizers**
(``engine.decide``, brownout coarsening, audited fail-closed denials),
and reports every source-to-sink path that does not cross enforcement.

Entry points:

- :func:`analyze_flow_paths` -- run the analyzer over files/directories.
- :class:`FlowAnalyzer` -- the analysis itself, for embedding.
- :mod:`repro.analysis.flow.baseline` -- the committed
  ``flow_baseline.json`` that pins accepted pre-existing flows.
- :func:`render_sarif` -- SARIF 2.1.0 rendering for CI artifacts.
"""

from repro.analysis.flow.analyzer import FlowAnalyzer, analyze_flow_paths
from repro.analysis.flow.baseline import (
    FLOW_BASELINE_VERSION,
    BaselineEntry,
    FlowBaseline,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.model import DEFAULT_MODEL, FlowModel
from repro.analysis.flow.sarif import render_sarif

__all__ = [
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_MODEL",
    "FLOW_BASELINE_VERSION",
    "FlowAnalyzer",
    "FlowBaseline",
    "FlowModel",
    "analyze_flow_paths",
    "apply_baseline",
    "baseline_from_findings",
    "build_call_graph",
    "load_baseline",
    "render_sarif",
    "write_baseline",
]
