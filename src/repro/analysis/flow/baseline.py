"""The committed ``flow_baseline.json``: accepted pre-existing flows.

The flow analyzer gates CI, but a gate is only adoptable if the
current tree passes it -- so findings that predate the analyzer (or
are deliberate, reviewed behaviour) are pinned here with a written
justification.  A baselined finding is subtracted from the report; a
*new* finding still fails the build; a baseline entry matching nothing
is reported as stale so the file cannot rot.

Same discipline as ``src/repro/bench/schema.py``:

- **Versioned and validated.**  ``FLOW_BASELINE_VERSION`` is checked
  before anything else; every entry's fields are validated on load and
  on dump, and an empty justification is rejected -- the whole point
  of the file is the recorded reasoning.
- **Deterministic serialization.**  Sorted entries, sorted-key
  indented JSON, trailing newline; written atomically via a temp file
  and ``os.replace`` so a crash cannot leave a torn baseline.

Matching is by ``(rule_id, file, function)`` -- line numbers are
deliberately excluded so unrelated edits above a pinned finding do not
invalidate the baseline.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

#: Bump when the baseline shape changes; ``load_baseline`` rejects others.
FLOW_BASELINE_VERSION = 1

_RULE_ID_RE = re.compile(r"^F\d{3}$")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AnalysisError(message)


def _string(value: Any, name: str, allow_empty: bool = False) -> str:
    _require(isinstance(value, str), "%s must be a string, got %r" % (name, value))
    if not allow_empty:
        _require(bool(value.strip()), "%s must not be empty" % name)
    return value


def _normalize_path(path: str) -> str:
    """Slash-normalized, ``./``-stripped path for stable matching."""
    normalized = path.replace("\\", "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding, pinned with its justification."""

    rule_id: str
    file: str
    function: str
    justification: str

    def validate(self, context: str) -> None:
        _require(
            bool(_RULE_ID_RE.match(self.rule_id)),
            "%s.rule_id %r must look like F001" % (context, self.rule_id),
        )
        _string(self.file, "%s.file" % context)
        _string(self.function, "%s.function" % context)
        _string(self.justification, "%s.justification" % context)

    def key(self) -> Tuple[str, str, str]:
        return (self.rule_id, _normalize_path(self.file), self.function)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "file": _normalize_path(self.file),
            "function": self.function,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], context: str) -> "BaselineEntry":
        _require(isinstance(data, Mapping), "%s must be an object" % context)
        for key in ("rule_id", "file", "function", "justification"):
            _require(key in data, "%s is missing %r" % (context, key))
        entry = cls(
            rule_id=_string(data["rule_id"], "%s.rule_id" % context),
            file=_string(data["file"], "%s.file" % context),
            function=_string(data["function"], "%s.function" % context),
            justification=_string(
                data["justification"], "%s.justification" % context
            ),
        )
        entry.validate(context)
        return entry


@dataclass(frozen=True)
class FlowBaseline:
    """The full baseline: a version plus its pinned entries."""

    entries: Tuple[BaselineEntry, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        ordered = sorted(self.entries, key=lambda e: e.key())
        return {
            "schema_version": FLOW_BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in ordered],
        }

    def dumps(self) -> str:
        for index, entry in enumerate(self.entries):
            entry.validate("entries[%d]" % index)
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowBaseline":
        _require(isinstance(data, Mapping), "baseline must be a JSON object")
        # The version gate comes first: a newer schema must be rejected
        # before any other field is interpreted.
        _require("schema_version" in data, "baseline is missing 'schema_version'")
        version = data["schema_version"]
        _require(
            isinstance(version, int) and not isinstance(version, bool),
            "schema_version must be an integer, got %r" % (version,),
        )
        _require(
            version == FLOW_BASELINE_VERSION,
            "unsupported baseline schema_version %d (this build reads %d)"
            % (version, FLOW_BASELINE_VERSION),
        )
        raw_entries = data.get("entries")
        _require(isinstance(raw_entries, list), "'entries' must be a list")
        entries = tuple(
            BaselineEntry.from_dict(item, "entries[%d]" % index)
            for index, item in enumerate(raw_entries)
        )
        seen: Dict[Tuple[str, str, str], int] = {}
        for index, entry in enumerate(entries):
            _require(
                entry.key() not in seen,
                "entries[%d] duplicates entries[%d] (%s)"
                % (index, seen.get(entry.key(), -1), "/".join(entry.key())),
            )
            seen[entry.key()] = index
        return cls(entries=entries)


def load_baseline(path: str) -> FlowBaseline:
    """Read and validate a baseline file (version gate first)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as exc:
        raise AnalysisError("cannot read baseline %s: %s" % (path, exc))
    try:
        data = json.loads(raw)
    except ValueError as exc:
        raise AnalysisError("baseline %s is not valid JSON: %s" % (path, exc))
    return FlowBaseline.from_dict(data)


def write_baseline(baseline: FlowBaseline, path: str) -> None:
    """Atomic write: temp file in the same directory, then replace."""
    payload = baseline.dumps()
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(
        directory, ".%s.tmp" % os.path.basename(path)
    )
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        raise AnalysisError("cannot write baseline %s: %s" % (path, exc))


def baseline_from_findings(
    findings: Sequence[Finding],
    justification: str = "accepted pre-existing flow; review before removing",
) -> FlowBaseline:
    """A baseline pinning every given finding (deduplicated).

    Findings without a file/function anchor -- stale-allowlist reports
    -- cannot be matched by key and are skipped: fix those by editing
    the model, not by baselining.
    """
    seen: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        if not finding.file or not finding.subject:
            continue
        entry = BaselineEntry(
            rule_id=finding.rule_id,
            file=_normalize_path(finding.file),
            function=finding.subject,
            justification=justification,
        )
        seen.setdefault(entry.key(), entry)
    return FlowBaseline(entries=tuple(
        seen[key] for key in sorted(seen)
    ))


def apply_baseline(
    findings: Sequence[Finding], baseline: FlowBaseline
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """``(kept findings, stale entries)`` after subtracting the baseline.

    A baseline entry absorbs *every* finding with its key (one pinned
    function may trip the same rule on several lines).  Entries that
    absorb nothing are returned as stale so the caller can surface
    them; staleness never changes the exit code.
    """
    keys = {entry.key() for entry in baseline.entries}
    used: set = set()
    kept: List[Finding] = []
    for finding in findings:
        key = (finding.rule_id, _normalize_path(finding.file), finding.subject)
        if key in keys:
            used.add(key)
        else:
            kept.append(finding)
    stale = [
        entry for entry in sorted(baseline.entries, key=lambda e: e.key())
        if entry.key() not in used
    ]
    return kept, stale
