"""Minimal SARIF 2.1.0 rendering of analyzer findings.

SARIF is what CI code-scanning UIs ingest; the flow lint job uploads
this as an artifact.  Only the stable core of the format is emitted --
tool metadata, the rule catalog for rules that actually fired, and one
result per finding -- rendered with sorted keys so same-tree runs are
byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.findings import RULES, Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(rule_id: str) -> Dict[str, Any]:
    rule = RULES.get(rule_id)
    if rule is None:
        return {"id": rule_id}
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    if finding.file:
        region: Dict[str, Any] = {}
        if finding.line:
            region["startLine"] = finding.line
        location: Dict[str, Any] = {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.file.replace("\\", "/"),
                },
            },
        }
        if region:
            location["physicalLocation"]["region"] = region
        if finding.subject:
            location["logicalLocations"] = [
                {"fullyQualifiedName": finding.subject}
            ]
        result["locations"] = [location]
    elif finding.subject:
        result["locations"] = [
            {"logicalLocations": [{"fullyQualifiedName": finding.subject}]}
        ]
    return result


def render_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """A ``json.dumps``-ready SARIF 2.1.0 log of ``findings``."""
    fired = sorted({finding.rule_id for finding in findings})
    rules: List[Dict[str, Any]] = [_rule_descriptor(rule_id) for rule_id in fired]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/ANALYSIS.md"
                        ),
                        "rules": rules,
                    },
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }
