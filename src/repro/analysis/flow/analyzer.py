"""Rules F001--F006: interprocedural privacy-flow analysis.

========  ====================  ========================================
F001      unenforced-flow       source-to-sink path with no enforcement
F002      unchecked-decision    enforcement result discarded/unchecked
F003      suppressed-source     sink still reachable from a suppressed
                                flow (residual warning for noqa'd F001)
F004      unaudited-deny        deny path with no audit write
F005      brownout-dropped      brownout level dropped before the sink
F006      dynamic-dispatch      unresolvable dispatch on a tainted path
========  ====================  ========================================

Taint discipline (a CFL-reachability approximation): taint propagates
*up* from a source (return values, callee to caller) zero or more
times, then *down* (arguments, caller to callee) -- never down then
back up -- and both directions stop at *sanitizing* nodes: sanitizers
themselves and functions that **directly** call one.  Direct matters:
``tick`` calling the sanitizing ``_ingest`` does not shield a second,
parallel path inside ``tick`` that skips enforcement.

Every pass iterates nodes, edges, and findings in sorted order and
consumes no wall clock or unseeded RNG, so the same tree always
produces byte-identical output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    Finding,
    Severity,
    is_suppressed,
    register_rule,
    selected,
    sort_findings,
)
from repro.analysis.flow.callgraph import (
    CallGraph,
    build_call_graph,
    build_call_graph_from_sources,
)
from repro.analysis.flow.model import DEFAULT_MODEL, FlowModel

register_rule(
    "F001", "unenforced-flow", Severity.ERROR,
    "Observation data can flow from a capture/storage source to an "
    "external sink without crossing engine.decide (or an audited "
    "fail-closed deny); route the path through the enforcement engine.",
)
register_rule(
    "F002", "unchecked-decision", Severity.ERROR,
    "An enforcement decision is computed but discarded or never read; "
    "branch on decision.allowed (and use decision.granularity) before "
    "releasing data.",
)
register_rule(
    "F003", "suppressed-source", Severity.WARNING,
    "A sink stays reachable from a flow whose F001 error was "
    "suppressed with # repro: noqa; the suppression is visible here so "
    "reviews see the residual exposure at the source.",
)
register_rule(
    "F004", "unaudited-deny", Severity.ERROR,
    "A code path returns a denied response without any audit write or "
    "enforcement call in the same function; deny through the engine "
    "(or record the denial) so the audit trail stays complete.",
)
register_rule(
    "F005", "brownout-dropped", Severity.WARNING,
    "A brownout level reaches this function but is dropped before the "
    "sink; thread brownout_level through (or degrade explicitly) so "
    "overload responses stay coarsened and audit-marked.",
)
register_rule(
    "F006", "dynamic-dispatch", Severity.WARNING,
    "Unresolvable dynamic dispatch on a tainted path; the analyzer "
    "cannot prove the callee enforces. Make the target static, or add "
    "the function to the reviewed dynamic-dispatch allowlist.",
)


class FlowAnalyzer:
    """Runs the F-rules over a :class:`CallGraph`."""

    def __init__(
        self,
        model: Optional[FlowModel] = None,
        select: Optional[Set[str]] = None,
    ) -> None:
        self._model = model if model is not None else DEFAULT_MODEL
        self._select = select

    # ------------------------------------------------------------------
    # Role classification
    # ------------------------------------------------------------------
    def _classify(
        self, graph: CallGraph
    ) -> Tuple[Set[str], Set[str], Set[str], Set[str]]:
        sources: Set[str] = set()
        sinks: Set[str] = set()
        sanitizers: Set[str] = set()
        audits: Set[str] = set()
        source_pats = self._model.source_patterns()
        sink_pats = self._model.sink_patterns()
        sanitizer_pats = self._model.sanitizer_patterns()
        audit_pats = self._model.audit_patterns()
        for qualname in graph.functions:
            if any(pat.search(qualname) for pat in source_pats):
                sources.add(qualname)
            if any(pat.search(qualname) for pat in sink_pats):
                sinks.add(qualname)
            if any(pat.search(qualname) for pat in sanitizer_pats):
                sanitizers.add(qualname)
            if any(pat.search(qualname) for pat in audit_pats):
                audits.add(qualname)
        return sources, sinks, sanitizers, audits

    def _excluded(self, graph: CallGraph, qualname: str) -> bool:
        node = graph.functions.get(qualname)
        return node is None or self._model.excludes(node.module)

    def _wrappers(self, graph: CallGraph, sanitizers: Set[str]) -> Set[str]:
        """Functions that directly call a sanitizer."""
        wrappers: Set[str] = set()
        for caller in graph.sites:
            for site in graph.sites[caller]:
                if set(site.candidates) & sanitizers:
                    wrappers.add(caller)
                    break
        return wrappers

    # ------------------------------------------------------------------
    # Taint propagation
    # ------------------------------------------------------------------
    def _propagate(
        self,
        graph: CallGraph,
        sources: Set[str],
        sinks: Set[str],
        blocked: Set[str],
    ) -> Dict[str, Tuple[str, ...]]:
        """Tainted qualname -> witness path back to a source.

        Up-closure first (return values flowing to callers), then
        down-closure (tainted data passed into callees); both stop at
        blocked (sanitizing) nodes.  BFS over sorted frontiers with
        first-writer-wins parents keeps paths deterministic.
        """
        paths: Dict[str, Tuple[str, ...]] = {}
        frontier = sorted(
            s for s in sources if not self._excluded(graph, s)
        )
        for source in frontier:
            paths[source] = (source,)
        # Upward: callee -> caller.
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for caller in graph.callers_of(current):
                    if caller in paths or caller in blocked:
                        continue
                    if self._excluded(graph, caller):
                        continue
                    paths[caller] = paths[current] + (caller,)
                    next_frontier.append(caller)
            frontier = sorted(next_frontier)
        # Downward: caller -> callee, from every node tainted so far.
        frontier = sorted(paths)
        while frontier:
            next_frontier = []
            for current in frontier:
                for site in graph.sites_of(current):
                    for callee in site.candidates:
                        if callee in paths or callee in blocked:
                            continue
                        if callee in sinks or callee in sources:
                            continue
                        if self._excluded(graph, callee):
                            continue
                        paths[callee] = paths[current] + (callee,)
                        next_frontier.append(callee)
            frontier = sorted(next_frontier)
        return paths

    # ------------------------------------------------------------------
    # The rules
    # ------------------------------------------------------------------
    def analyze(self, graph: CallGraph) -> List[Finding]:
        """All findings after suppression and selection filtering."""
        sources, sinks, sanitizers, audits = self._classify(graph)
        wrappers = self._wrappers(graph, sanitizers)
        blocked = sanitizers | wrappers
        tainted = self._propagate(graph, sources, sinks, blocked)

        findings: List[Finding] = []
        findings.extend(
            self._check_f001_f003(graph, tainted, sources, sinks)
        )
        findings.extend(self._check_f002(graph, sanitizers))
        findings.extend(self._check_f004(graph, sinks, sanitizers, audits))
        findings.extend(self._check_f005(graph))
        findings.extend(self._check_f006(graph, tainted))
        kept = [
            finding for finding in findings
            if selected(finding, self._select)
        ]
        return sort_findings(kept)

    def _suppressed(self, graph: CallGraph, finding: Finding) -> bool:
        table = graph.suppressions.get(finding.file, {})
        return is_suppressed(finding, table)

    def _check_f001_f003(
        self,
        graph: CallGraph,
        tainted: Dict[str, Tuple[str, ...]],
        sources: Set[str],
        sinks: Set[str],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(tainted):
            if qualname in sinks:
                continue
            node = graph.functions[qualname]
            for site in graph.sites_of(qualname):
                hit = sorted(set(site.candidates) & sinks)
                if not hit:
                    continue
                path = tainted[qualname]
                finding = Finding(
                    rule_id="F001",
                    severity=Severity.ERROR,
                    message=(
                        "observation data reaches sink %s with no "
                        "enforcement call on the path %s"
                        % (hit[0], " -> ".join(path))
                    ),
                    subject=qualname,
                    file=node.file,
                    line=site.line,
                )
                if not self._suppressed(graph, finding):
                    findings.append(finding)
                    continue
                # F003: the error is suppressed, but the exposure is
                # real; surface a residual warning at the source.
                source = graph.functions.get(path[0])
                if source is None:
                    continue
                residual = Finding(
                    rule_id="F003",
                    severity=Severity.WARNING,
                    message=(
                        "sink %s is still reachable from this source; "
                        "the F001 error was suppressed at %s:%d"
                        % (hit[0], node.file, site.line)
                    ),
                    subject=source.qualname,
                    file=source.file,
                    line=source.lineno,
                )
                if not self._suppressed(graph, residual):
                    findings.append(residual)
        return findings

    def _check_f002(
        self, graph: CallGraph, sanitizers: Set[str]
    ) -> List[Finding]:
        """Decision-returning sanitizer calls whose result is unread."""
        findings: List[Finding] = []
        for qualname in sorted(graph.sites):
            if self._excluded(graph, qualname):
                continue
            node = graph.functions[qualname]
            for site in graph.sites_of(qualname):
                if not (set(site.candidates) & sanitizers):
                    continue
                if site.attr not in ("decide", "enforce_observation"):
                    continue
                if site.usage == "used":
                    continue
                how = (
                    "discarded" if site.usage == "discarded"
                    else "assigned but never read"
                )
                finding = Finding(
                    rule_id="F002",
                    severity=Severity.ERROR,
                    message=(
                        "the %s() decision is %s; check .allowed and "
                        "apply .granularity before releasing data"
                        % (site.attr, how)
                    ),
                    subject=qualname,
                    file=node.file,
                    line=site.line,
                )
                if not self._suppressed(graph, finding):
                    findings.append(finding)
        return findings

    def _check_f004(
        self,
        graph: CallGraph,
        sinks: Set[str],
        sanitizers: Set[str],
        audits: Set[str],
    ) -> List[Finding]:
        """Denial construction in functions with no audit anywhere."""
        deny_names = {"denied"}
        findings: List[Finding] = []
        for qualname in sorted(graph.sites):
            if self._excluded(graph, qualname):
                continue
            node = graph.functions[qualname]
            if qualname in sinks or node.is_class:
                continue
            site_list = graph.sites_of(qualname)
            protected = any(
                set(site.candidates) & (sanitizers | audits)
                for site in site_list
            )
            if protected:
                continue
            for site in site_list:
                if site.attr not in deny_names:
                    continue
                if not any(
                    candidate.split(".")[-1] in deny_names
                    and candidate in sinks
                    for candidate in site.candidates
                ):
                    continue
                finding = Finding(
                    rule_id="F004",
                    severity=Severity.ERROR,
                    message=(
                        "denied response built with no audit write or "
                        "enforcement call in %s; record the denial so "
                        "the audit trail stays complete" % node.name
                    ),
                    subject=qualname,
                    file=node.file,
                    line=site.line,
                )
                if not self._suppressed(graph, finding):
                    findings.append(finding)
        return findings

    def _check_f005(self, graph: CallGraph) -> List[Finding]:
        """brownout_level parameters the function body never reads."""
        findings: List[Finding] = []
        for qualname in sorted(graph.unread_params):
            if self._excluded(graph, qualname):
                continue
            node = graph.functions[qualname]
            for name, line in graph.unread_params[qualname]:
                finding = Finding(
                    rule_id="F005",
                    severity=Severity.WARNING,
                    message=(
                        "parameter %r is accepted but never read; the "
                        "brownout degradation is silently dropped" % name
                    ),
                    subject=qualname,
                    file=node.file,
                    line=line,
                )
                if not self._suppressed(graph, finding):
                    findings.append(finding)
        return findings

    def _check_f006(
        self, graph: CallGraph, tainted: Dict[str, Tuple[str, ...]]
    ) -> List[Finding]:
        """Dynamic dispatch on tainted paths + stale allowlist entries."""
        allowlist = set(self._model.dynamic_allowlist)
        used: Set[str] = set()
        has_dynamic: Set[str] = set()
        findings: List[Finding] = []
        for qualname in sorted(graph.sites):
            for site in graph.sites_of(qualname):
                if not site.dynamic:
                    continue
                has_dynamic.add(qualname)
                if qualname not in tainted:
                    continue
                if qualname in allowlist:
                    used.add(qualname)
                    continue
                node = graph.functions[qualname]
                finding = Finding(
                    rule_id="F006",
                    severity=Severity.WARNING,
                    message=(
                        "%s on a tainted path; the callee cannot be "
                        "proven to enforce" % site.reason
                    ),
                    subject=qualname,
                    file=node.file,
                    line=site.line,
                )
                if not self._suppressed(graph, finding):
                    findings.append(finding)
        for entry in sorted(allowlist):
            if entry not in has_dynamic:
                findings.append(Finding(
                    rule_id="F006",
                    severity=Severity.WARNING,
                    message=(
                        "stale dynamic-dispatch allowlist entry: %r "
                        "contains no dynamic call site; remove it from "
                        "the model's allowlist" % entry
                    ),
                    subject=entry,
                    file="",
                    line=0,
                ))
        return findings


def analyze_flow_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    model: Optional[FlowModel] = None,
) -> List[Finding]:
    """Build the call graph under ``paths`` and run every F-rule."""
    resolved = model if model is not None else DEFAULT_MODEL
    graph = build_call_graph(paths, resolved)
    return FlowAnalyzer(model=resolved, select=select).analyze(graph)


def analyze_flow_sources(
    sources: Dict[str, str],
    select: Optional[Set[str]] = None,
    model: Optional[FlowModel] = None,
) -> List[Finding]:
    """Testing hook: analyze in-memory ``{path: source}`` modules."""
    resolved = model if model is not None else DEFAULT_MODEL
    graph = build_call_graph_from_sources(sources, resolved)
    return FlowAnalyzer(model=resolved, select=select).analyze(graph)
