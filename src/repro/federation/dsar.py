"""Campus-wide DSAR handling: fan-out, deterministic merge, compaction.

A data-subject request at campus scale cannot stop at the subject's
home shard: a roaming inhabitant leaves observations, audit records,
and re-pushed preferences in every building they visited.  The fan-out
set is the campus presence ledger plus the home shard (preferences live
there even for subjects never captured), each shard is reached through
the admission-controlled bus (``dsar_report``/``dsar_erase`` are
CRITICAL: they are never shed), and the merged report is deterministic
-- shards are visited in sorted order and carry only counts.

Erasure is WAL-durable per shard: with ``compact_storage=True`` each
shard logs the erase record, then compacts, so the subject's
observations are *physically* absent from the compacted generation,
not merely masked (see ``docs/STORAGE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import NetworkError
from repro.federation.campus import Campus


@dataclass
class CampusAccessReport:
    """A merged subject-access report across every observing shard."""

    user_id: str
    home_building: str
    buildings: Tuple[str, ...] = ()
    observations_total: int = 0
    decisions_total: int = 0
    per_building: Dict[str, Dict[str, int]] = field(default_factory=dict)
    unreachable: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "home_building": self.home_building,
            "buildings": list(self.buildings),
            "observations_total": self.observations_total,
            "decisions_total": self.decisions_total,
            "per_building": {
                building: dict(counts)
                for building, counts in sorted(self.per_building.items())
            },
            "unreachable": list(self.unreachable),
        }


@dataclass
class CampusErasureReceipt:
    """One campus-wide right-to-be-forgotten execution."""

    user_id: str
    home_building: str
    buildings: Tuple[str, ...] = ()
    erased_observations: int = 0
    withdrawn_preferences: int = 0
    compacted_buildings: Tuple[str, ...] = ()
    per_building: Dict[str, Dict[str, int]] = field(default_factory=dict)
    unreachable: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "home_building": self.home_building,
            "buildings": list(self.buildings),
            "erased_observations": self.erased_observations,
            "withdrawn_preferences": self.withdrawn_preferences,
            "compacted_buildings": list(self.compacted_buildings),
            "per_building": {
                building: dict(counts)
                for building, counts in sorted(self.per_building.items())
            },
            "unreachable": list(self.unreachable),
        }


def _fanout_set(campus: Campus, user_id: str) -> Tuple[str, Tuple[str, ...]]:
    home = campus.router.home_building(user_id)
    observed = set(campus.buildings_observing(user_id))
    observed.add(home)
    # A mid-migration subject has data on *both* ends of the move (the
    # source until its tombstone, the destination from its first journal
    # write), so a DSAR that lands mid-flight must visit both.
    migration = campus.router.migration_of(user_id)
    if migration is not None:
        observed.update(migration)
    # Decommissioned buildings fall out of the fan-out: their data moved
    # out before the drain completed and their endpoints left the bus.
    observed = {b for b in observed if campus.router.is_callable(b)}
    return home, tuple(sorted(observed))


def campus_access_report(
    campus: Campus, user_id: str, now: float
) -> CampusAccessReport:
    """Fan a subject-access request out to every observing shard."""
    home, buildings = _fanout_set(campus, user_id)
    report = CampusAccessReport(
        user_id=user_id, home_building=home, buildings=buildings
    )
    unreachable: List[str] = []
    for building_id in buildings:
        try:
            response = campus.router.call_building(
                building_id,
                "dsar_report",
                {"user_id": user_id, "now": now},
                principal="dsar-%s" % user_id,
            )
        except NetworkError:
            unreachable.append(building_id)
            continue
        counts = {
            "observations": int(response["observations_total"]),
            "decisions": int(response["decisions_total"]),
        }
        report.per_building[building_id] = counts
        report.observations_total += counts["observations"]
        report.decisions_total += counts["decisions"]
    report.unreachable = tuple(unreachable)
    return report


def campus_erase_subject(
    campus: Campus,
    user_id: str,
    now: float,
    withdraw_preferences: bool = False,
    compact_storage: bool = True,
) -> CampusErasureReceipt:
    """Erase a subject from every shard that ever observed them.

    Each shard's erasure is locally WAL-durable before the next shard
    is contacted, so a crash mid-fan-out leaves a prefix of shards
    fully erased rather than all shards half-erased; re-running the
    fan-out is idempotent (erasing an already-erased subject deletes
    zero observations).
    """
    home, buildings = _fanout_set(campus, user_id)
    receipt = CampusErasureReceipt(
        user_id=user_id, home_building=home, buildings=buildings
    )
    compacted: List[str] = []
    unreachable: List[str] = []
    for building_id in buildings:
        try:
            response = campus.router.call_building(
                building_id,
                "dsar_erase",
                {
                    "user_id": user_id,
                    "now": now,
                    "withdraw_preferences": withdraw_preferences,
                    "compact_storage": compact_storage,
                },
                principal="dsar-%s" % user_id,
            )
        except NetworkError:
            unreachable.append(building_id)
            continue
        counts = {
            "erased_observations": int(response["erased_observations"]),
            "withdrawn_preferences": int(response["withdrawn_preferences"]),
        }
        receipt.per_building[building_id] = counts
        receipt.erased_observations += counts["erased_observations"]
        receipt.withdrawn_preferences += counts["withdrawn_preferences"]
        if response.get("storage_compacted"):
            compacted.append(building_id)
    receipt.compacted_buildings = tuple(compacted)
    receipt.unreachable = tuple(unreachable)
    return receipt
