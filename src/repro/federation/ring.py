"""A deterministic consistent-hash ring over building ids.

Principals are mapped to their *home shard* by position on a hash ring:
each building contributes ``vnodes`` virtual points placed at
``sha256("<building>/vnode#<i>")``, and a key belongs to the first
point clockwise from ``sha256(key)``.  SHA-256 keeps the placement
stable across processes and Python versions (``hash()`` is salted per
process and would break byte-reproducible scenario reports), and
virtual nodes smooth the assignment so a four-building campus does not
end up with one shard owning half the population.

Consistency is the point: adding a building moves only the keys that
fall between its new points and their predecessors, so a campus can
grow without re-homing every principal's preferences.

The ring is *versioned and mutable*: :meth:`HashRing.add_building` and
:meth:`HashRing.remove_building` rebuild the point list, bump
:attr:`HashRing.version`, and return the deterministic migration delta
-- exactly which of the caller's keys moved, and from where to where.
The delta is what a rebalance coordinator executes; the ring itself
never touches data.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import FederationError

#: Virtual points per building.  Enough to keep the largest/smallest
#: shard population ratio small at campus scale, small enough that ring
#: construction stays negligible.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """The ring position of ``label``: the first 8 bytes of its SHA-256."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto a fixed set of nodes."""

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise FederationError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise FederationError("hash ring nodes must be unique")
        if vnodes < 1:
            raise FederationError("vnodes must be >= 1")
        self._nodes: Tuple[str, ...] = tuple(sorted(nodes))
        self._vnodes = vnodes
        #: Bumped once per membership change; lets routers and reports
        #: assert "the ring the decision was made under".
        self.version = 1
        self._rebuild()

    def _rebuild(self) -> None:
        points: List[Tuple[int, str]] = []
        for node in self._nodes:
            for index in range(self._vnodes):
                points.append((_point("%s/vnode#%d" % (node, index)), node))
        # Ties (astronomically unlikely) resolve by node name so the
        # ring is a pure function of (nodes, vnodes).
        points.sort()
        self._points: List[int] = [point for point, _ in points]
        self._owners: List[str] = [node for _, node in points]

    def nodes(self) -> Tuple[str, ...]:
        """Every node on the ring, sorted."""
        return self._nodes

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def _delta(
        self, before: Dict[str, str], keys: Sequence[str]
    ) -> Dict[str, Tuple[str, str]]:
        """key -> (old_home, new_home) for every key that moved."""
        moved: Dict[str, Tuple[str, str]] = {}
        for key in keys:
            new_home = self.node_for(key)
            old_home = before[key]
            if new_home != old_home:
                moved[key] = (old_home, new_home)
        return moved

    def add_building(
        self, node: str, keys: Sequence[str] = ()
    ) -> Dict[str, Tuple[str, str]]:
        """Add ``node`` to the ring; returns the migration delta.

        The delta maps each of ``keys`` that changed owner to its
        ``(old_home, new_home)`` pair -- by consistency, every
        ``new_home`` is the added node.
        """
        if node in self._nodes:
            raise FederationError("building %r is already on the ring" % node)
        if not node:
            raise FederationError("building id must be non-empty")
        before = self.assignments(keys)
        self._nodes = tuple(sorted(self._nodes + (node,)))
        self._rebuild()
        self.version += 1
        return self._delta(before, keys)

    def remove_building(
        self, node: str, keys: Sequence[str] = ()
    ) -> Dict[str, Tuple[str, str]]:
        """Remove ``node`` from the ring; returns the migration delta.

        Removing the last building raises -- an empty ring has no owner
        for any key, and the error beats a divide-by-zero deep in
        ``node_for``.
        """
        if node not in self._nodes:
            raise FederationError("building %r is not on the ring" % node)
        if len(self._nodes) == 1:
            raise FederationError(
                "cannot remove the last building %r from the ring" % node
            )
        before = self.assignments(keys)
        self._nodes = tuple(n for n in self._nodes if n != node)
        self._rebuild()
        self.version += 1
        return self._delta(before, keys)

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise from it."""
        position = _point(key)
        index = bisect.bisect_right(self._points, position)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """key -> owning node, for a batch of keys."""
        return {key: self.node_for(key) for key in keys}

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes
