"""A campus: independently-WAL'd TIPPERS shards behind one bus.

Each building gets its own spatial model, TIPPERS instance, sensor
deployment, policy set, IoT Resource Registry, and (when a
``storage_root`` is given) its own write-ahead-logged storage directory
-- shards share *nothing* but the campus :class:`~repro.net.bus.
MessageBus` and the :class:`~repro.federation.router.FederationRouter`
that consistent-hashes principals onto them.

The campus also keeps the two pieces of metadata a federation needs
that no single shard can own:

- the **resident registry** (who lives where, which the hash ring
  decides) -- used to re-seed a shard's user directory after a crash,
  since directories are rebuilt from campus metadata while
  observations, audit, and preferences replay from the shard's own WAL;
- the **presence ledger** (which buildings ever observed a subject) --
  the fan-out set for campus-wide DSAR handling in
  :mod:`repro.federation.dsar`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.policy import catalog
from repro.errors import FederationError
from repro.federation.ring import DEFAULT_VNODES
from repro.federation.router import (
    REGISTRY_ENDPOINT_PREFIX,
    SHARD_ENDPOINT_PREFIX,
    FederationRouter,
)
from repro.irr.registry import IoTResourceRegistry
from repro.net.admission import AdmissionController
from repro.net.bus import MessageBus
from repro.net.resilience import BreakerBoard
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer
from repro.spatial.model import SpaceType, SpatialModel, build_simple_building
from repro.tippers.bms import TIPPERS
from repro.tippers.sensor_manager import SensorHealthSupervisor
from repro.users.profile import UserProfile

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.storage.durable import StorageEngine
    from repro.storage.recovery import RecoveryReport


@dataclass
class CampusShard:
    """One building's slice of the federation."""

    building_id: str
    spatial: SpatialModel
    tippers: TIPPERS
    registry: IoTResourceRegistry
    supervisor: SensorHealthSupervisor
    storage: Optional["StorageEngine"] = None
    residents: List[UserProfile] = field(default_factory=list)
    down: bool = False

    @property
    def endpoint(self) -> str:
        return SHARD_ENDPOINT_PREFIX + self.building_id

    @property
    def registry_endpoint(self) -> str:
        return REGISTRY_ENDPOINT_PREFIX + self.building_id


class Campus:
    """Builds and operates the sharded campus."""

    def __init__(
        self,
        building_ids: Sequence[str],
        seed: int = 0,
        floors: int = 2,
        rooms_per_floor: int = 4,
        storage_root: Optional[str] = None,
        segment_bytes: int = 8 * 1024,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        admission: Optional[AdmissionController] = None,
        vnodes: int = DEFAULT_VNODES,
        owner_name: str = "Campus Operations",
    ) -> None:
        if len(set(building_ids)) != len(building_ids) or not building_ids:
            raise FederationError("building ids must be unique and non-empty")
        self.seed = seed
        self.metrics = metrics if metrics is not None else get_registry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._storage_root = storage_root
        self._segment_bytes = segment_bytes
        self._owner_name = owner_name
        self._floors = floors
        self._rooms_per_floor = rooms_per_floor
        self.bus = MessageBus(
            metrics=self.metrics,
            tracer=self.tracer,
            breakers=BreakerBoard(),
            admission=admission,
        )
        self.router = FederationRouter(
            self.bus, building_ids, vnodes=vnodes, metrics=self.metrics
        )
        self._shards: Dict[str, CampusShard] = {}
        #: user_id -> home building (always the router's ring choice).
        self.home_of: Dict[str, str] = {}
        self._profiles: Dict[str, UserProfile] = {}
        #: subject -> buildings whose sensors ever observed them.
        self._presence: Dict[str, Set[str]] = {}
        #: Buildings decommissioned after a drain (history, not topology).
        self.decommissioned: List[str] = []
        for index, building_id in enumerate(sorted(building_ids)):
            self._shards[building_id] = self._build_shard(building_id, index)
        # Supervisor seeds stay deterministic as buildings come and go:
        # each new shard takes the next index, never a recycled one.
        self._next_shard_index = len(self._shards)

    # ------------------------------------------------------------------
    # Shard construction
    # ------------------------------------------------------------------
    def _shard_storage(self, building_id: str) -> Optional["StorageEngine"]:
        if self._storage_root is None:
            return None
        from repro.storage.durable import StorageEngine

        directory = os.path.join(self._storage_root, building_id)
        return StorageEngine(
            directory, segment_bytes=self._segment_bytes, metrics=self.metrics
        )

    def _build_shard(self, building_id: str, index: int) -> CampusShard:
        spatial = build_simple_building(
            building_id,
            floors=self._floors,
            rooms_per_floor=self._rooms_per_floor,
        )
        supervisor = SensorHealthSupervisor(
            miss_threshold=3,
            probe_rate=0.5,
            seed=self.seed + index,
            metrics=self.metrics,
        )
        storage = self._shard_storage(building_id)
        tippers = TIPPERS(
            spatial,
            building_id,
            owner_name=self._owner_name,
            enforce_capture=True,
            cache_decisions=False,
            metrics=self.metrics,
            storage=storage,
            health_supervisor=supervisor,
        )
        rooms = sorted(s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM))
        for room_index, room in enumerate(rooms):
            tippers.deploy_sensor(
                "wifi_access_point", "ap-%02d" % (room_index + 1), room
            )
            tippers.deploy_sensor(
                "motion_sensor", "motion-%02d" % (room_index + 1), room
            )
        tippers.define_policy(catalog.policy_service_sharing(building_id))
        tippers.define_policy(catalog.policy_2_emergency_location(building_id))
        tippers.define_policy(catalog.policy_1_comfort(rooms))
        registry = IoTResourceRegistry(
            REGISTRY_ENDPOINT_PREFIX + building_id, spatial
        )
        registry.publish_resource(
            "%s-building-policies" % building_id,
            building_id,
            tippers.policy_manager.compile_policy_document(),
            settings=tippers.policy_manager.settings_space.to_document(),
        )
        self.bus.register(SHARD_ENDPOINT_PREFIX + building_id, tippers)
        self.bus.register(REGISTRY_ENDPOINT_PREFIX + building_id, registry)
        return CampusShard(
            building_id=building_id,
            spatial=spatial,
            tippers=tippers,
            registry=registry,
            supervisor=supervisor,
            storage=storage,
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def building_ids(self) -> Tuple[str, ...]:
        return self.router.building_ids()

    def shard(self, building_id: str) -> CampusShard:
        try:
            return self._shards[building_id]
        except KeyError:
            raise FederationError("unknown building %r" % building_id) from None

    def shards(self) -> List[CampusShard]:
        return [self._shards[b] for b in sorted(self._shards)]

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def add_building(self, building_id: str) -> Dict[str, Tuple[str, str]]:
        """Stand up a new shard and join it to the ring.

        Returns the migration delta: ``user_id -> (old_home, new_home)``
        for every campus user whose ring assignment moved.  The delta is
        a *plan*, not an action -- nothing migrates until a
        :class:`~repro.federation.rebalance.RebalanceCoordinator`
        executes it, so ``home_of`` still names the old (and still
        authoritative) shard for each moved user.
        """
        if building_id in self._shards:
            raise FederationError("building %r already exists" % building_id)
        shard = self._build_shard(building_id, self._next_shard_index)
        self._next_shard_index += 1
        self._shards[building_id] = shard
        return self.router.add_building(
            building_id, keys=sorted(self._profiles)
        )

    def drain_building(self, building_id: str) -> Dict[str, Tuple[str, str]]:
        """Take a building off the ring ahead of decommissioning.

        The shard stays live and addressable (migrations out of it still
        need to call it), but new principals no longer hash to it.
        Returns the migration delta for its displaced users.
        """
        self.shard(building_id)  # validate
        return self.router.begin_drain(
            building_id, keys=sorted(self._profiles)
        )

    def decommission_building(self, building_id: str) -> None:
        """Retire a drained, emptied building for good.

        Both its endpoints leave the bus with breaker eviction (the
        building is never coming back, so its breaker state is garbage,
        not health information), its storage closes, and the shard is
        dropped from the campus.
        """
        shard = self.shard(building_id)
        if building_id in self.router.building_ids():
            raise FederationError(
                "building %r is still on the ring; drain it first"
                % building_id
            )
        still_home = sorted(
            u for u, b in self.home_of.items() if b == building_id
        )
        if still_home:
            raise FederationError(
                "building %r still homes %d user(s); migrate them first"
                % (building_id, len(still_home))
            )
        for user_id in self.router.migrating_principals():
            migration = self.router.migration_of(user_id)
            if migration is not None and building_id in migration:
                raise FederationError(
                    "building %r has an in-flight migration for %r"
                    % (building_id, user_id)
                )
        self.bus.unregister(shard.endpoint, evict_breaker=True)
        self.bus.unregister(shard.registry_endpoint, evict_breaker=True)
        if shard.storage is not None and not shard.down:
            shard.storage.close()
        del self._shards[building_id]
        self.router.finish_drain(building_id)
        self.decommissioned.append(building_id)
        self.metrics.counter(
            "federation_buildings_decommissioned_total",
            {"building": building_id},
        ).inc()

    def complete_migration(
        self, user_id: str, from_building: str, to_building: str
    ) -> None:
        """Flip campus metadata after a migration's tombstone lands."""
        profile = self.profile_of(user_id)
        source = self.shard(from_building)
        source.residents = [
            p for p in source.residents if p.user_id != user_id
        ]
        dest = self.shard(to_building)
        if all(p.user_id != user_id for p in dest.residents):
            dest.residents.append(profile)
        self.home_of[user_id] = to_building

    # ------------------------------------------------------------------
    # Residents
    # ------------------------------------------------------------------
    def add_resident(self, building_id: str, profile: UserProfile) -> None:
        """Register ``profile`` at its ring-assigned home shard.

        The hash ring is authoritative: registering a principal at any
        building but their ring home is a configuration error, not a
        policy decision.
        """
        home = self.router.home_building(profile.user_id)
        if home != building_id:
            raise FederationError(
                "user %r hashes to %r, not %r"
                % (profile.user_id, home, building_id)
            )
        shard = self.shard(building_id)
        shard.tippers.add_user(profile)
        shard.residents.append(profile)
        self._profiles[profile.user_id] = profile
        self.home_of[profile.user_id] = building_id

    def profile_of(self, user_id: str) -> UserProfile:
        try:
            return self._profiles[user_id]
        except KeyError:
            raise FederationError("unknown campus user %r" % user_id) from None

    # ------------------------------------------------------------------
    # Presence ledger (the DSAR fan-out set)
    # ------------------------------------------------------------------
    def record_presence(self, user_id: str, building_id: str) -> None:
        """Note that ``building_id``'s sensors observed ``user_id``."""
        self.shard(building_id)  # validate
        self._presence.setdefault(user_id, set()).add(building_id)

    def buildings_observing(self, user_id: str) -> Tuple[str, ...]:
        """Every building that ever observed ``user_id``, sorted."""
        return tuple(sorted(self._presence.get(user_id, set())))

    # ------------------------------------------------------------------
    # Shard failure and recovery
    # ------------------------------------------------------------------
    def mark_down(self, building_id: str) -> None:
        """Take a crashed shard off the bus until it recovers.

        Calls routed to a dark building fail like any network failure;
        nothing queues on its behalf.
        """
        shard = self.shard(building_id)
        if shard.down:
            return
        shard.down = True
        self.bus.unregister(shard.endpoint)
        if shard.storage is not None:
            shard.storage.close()

    def recover_shard(self, building_id: str, now: float) -> "RecoveryReport":
        """Rebuild a crashed shard from its WAL and rejoin the campus.

        A fresh TIPPERS is constructed over the same storage directory;
        the user directory is re-seeded from campus metadata (residents
        as locals, every previously-observed visitor as a roaming
        registration, so recovered preferences replay cleanly and
        visited-shard decisions stay roaming-marked), then the WAL
        replays observations, audit, and preferences, and the shard
        re-registers on the bus.  The building's registry endpoint never
        left the bus -- advertisements are campus metadata, not WAL
        state.
        """
        shard = self.shard(building_id)
        if shard.storage is None:
            raise FederationError(
                "shard %r has no storage to recover from" % building_id
            )
        if not shard.down:
            self.mark_down(building_id)
        storage = self._shard_storage(building_id)
        assert storage is not None
        spatial = shard.spatial
        tippers = TIPPERS(
            spatial,
            building_id,
            owner_name=self._owner_name,
            enforce_capture=True,
            cache_decisions=False,
            metrics=self.metrics,
            storage=storage,
            health_supervisor=shard.supervisor,
        )
        rooms = sorted(s.space_id for s in spatial.spaces_of_type(SpaceType.ROOM))
        for room_index, room in enumerate(rooms):
            tippers.deploy_sensor(
                "wifi_access_point", "ap-%02d" % (room_index + 1), room
            )
            tippers.deploy_sensor(
                "motion_sensor", "motion-%02d" % (room_index + 1), room
            )
        tippers.define_policy(catalog.policy_service_sharing(building_id))
        tippers.define_policy(catalog.policy_2_emergency_location(building_id))
        tippers.define_policy(catalog.policy_1_comfort(rooms))
        for profile in shard.residents:
            tippers.add_user(profile)
        resident_ids = {profile.user_id for profile in shard.residents}
        for user_id in sorted(self._presence):
            if building_id not in self._presence[user_id]:
                continue
            if user_id in resident_ids or user_id not in self._profiles:
                continue
            tippers.register_roaming_user(
                self._profiles[user_id], self.home_of[user_id]
            )
        for user_id in self.router.migrating_principals():
            migration = self.router.migration_of(user_id)
            if (
                migration is not None
                and migration[1] == building_id
                and user_id in self._profiles
                and user_id not in resident_ids
            ):
                # A destination shard that crashed mid-import holds the
                # migrating user's preferences in its WAL; registering
                # them as local (home == this building) lets replay
                # re-submit those preferences and clears any stale
                # roaming mark the presence loop above may have set.
                tippers.register_roaming_user(
                    self._profiles[user_id], building_id
                )
        report = tippers.recover(now)
        shard.tippers = tippers
        shard.storage = storage
        shard.down = False
        self.bus.register(shard.endpoint, tippers)
        if self.bus.breakers is not None:
            # The operator knows the shard is back; don't make callers
            # wait out the breaker's rejection-counted cooldown.
            self.bus.breakers.reset(shard.endpoint)
        self.metrics.counter(
            "federation_shard_recoveries_total", {"building": building_id}
        ).inc()
        return report

    def close(self) -> None:
        """Close every live shard's storage engine."""
        for shard in self.shards():
            if shard.storage is not None and not shard.down:
                shard.storage.close()
