"""Multi-building federation: a campus of sharded TIPPERS instances.

The paper's core loop (Fig. 1) is discovery as inhabitants *move
between* IRR-advertised spaces.  This package scales that loop out to a
campus: each building runs its own independently-WAL'd TIPPERS shard
and IoT Resource Registry, a :class:`~repro.federation.router.
FederationRouter` consistent-hashes principals to a home shard and
routes every cross-shard call through the existing admission layer, and
campus-wide DSAR requests fan out to every shard that ever observed the
subject (:mod:`repro.federation.dsar`).  Membership is elastic:
buildings join and drain at runtime, and
:mod:`repro.federation.rebalance` migrates each displaced user with a
two-phase, WAL-journaled, crash-recoverable protocol.

See ``docs/FEDERATION.md`` for the shard layout, the hashing scheme,
the IoTA roaming-handoff protocol, and the DSAR fan-out invariants.
"""

from repro.federation.campus import Campus, CampusShard
from repro.federation.dsar import (
    CampusAccessReport,
    CampusErasureReceipt,
    campus_access_report,
    campus_erase_subject,
)
from repro.federation.rebalance import (
    MigrationOutcome,
    RebalanceCoordinator,
    UserMigration,
)
from repro.federation.ring import HashRing
from repro.federation.router import (
    REGISTRY_ENDPOINT_PREFIX,
    SHARD_ENDPOINT_PREFIX,
    FederationRouter,
)

__all__ = [
    "Campus",
    "CampusShard",
    "CampusAccessReport",
    "CampusErasureReceipt",
    "FederationRouter",
    "HashRing",
    "MigrationOutcome",
    "REGISTRY_ENDPOINT_PREFIX",
    "SHARD_ENDPOINT_PREFIX",
    "RebalanceCoordinator",
    "UserMigration",
    "campus_access_report",
    "campus_erase_subject",
]
