"""The federation router: one bus, many buildings, deterministic homes.

Every building's TIPPERS shard and IoT Resource Registry register on
the shared campus :class:`~repro.net.bus.MessageBus` under prefixed
endpoint names (``tippers-<building>``, ``irr-<building>``).  The
router owns the :class:`~repro.federation.ring.HashRing` that maps a
principal to their *home building* and addresses every cross-shard call
through the bus -- which means federation traffic flows through the
same admission control, circuit breakers, retry policies, and deadline
budgets as single-building traffic.  There is no privileged side
channel between shards: a DSAR fan-out competes for admission like any
other CRITICAL call, and a roaming IoTA's re-push can be shed exactly
like a local one (it cannot: preference submission is CRITICAL).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import FederationError
from repro.federation.ring import DEFAULT_VNODES, HashRing
from repro.net.bus import MessageBus
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry, get_registry

#: Endpoint-name prefixes for per-building shards.  These are the
#: campus bus's naming contract: the TIPPERS shard of building
#: ``bldg-a`` answers on ``tippers-bldg-a`` and its registry on
#: ``irr-bldg-a``.  The privacy-flow analyzer resolves calls through
#: these prefixes, so keep them as module-level constants.
SHARD_ENDPOINT_PREFIX = "tippers-"
REGISTRY_ENDPOINT_PREFIX = "irr-"

#: Simulated-time budget for one routed call.  Generous on purpose --
#: it bounds retries (lint rule C007), it does not shape traffic.
ROUTER_CALL_DEADLINE_S = 30.0


class FederationRouter:
    """Routes principals and calls to their owning building shard."""

    def __init__(
        self,
        bus: MessageBus,
        building_ids: Sequence[str],
        vnodes: int = DEFAULT_VNODES,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        call_deadline_s: float = ROUTER_CALL_DEADLINE_S,
    ) -> None:
        if not building_ids:
            raise FederationError("a federation needs at least one building")
        self._bus = bus
        self._ring = HashRing(building_ids, vnodes=vnodes)
        self.metrics = metrics if metrics is not None else get_registry()
        self.retry_policy = retry_policy
        self.call_deadline_s = call_deadline_s

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    def building_ids(self) -> Tuple[str, ...]:
        """Every federated building, sorted."""
        return self._ring.nodes()

    def home_building(self, principal_id: str) -> str:
        """The building whose shard is ``principal_id``'s home."""
        return self._ring.node_for(principal_id)

    def shard_endpoint(self, building_id: str) -> str:
        """The bus endpoint of ``building_id``'s TIPPERS shard."""
        self._require(building_id)
        return SHARD_ENDPOINT_PREFIX + building_id

    def registry_endpoint(self, building_id: str) -> str:
        """The bus endpoint of ``building_id``'s IoT Resource Registry."""
        self._require(building_id)
        return REGISTRY_ENDPOINT_PREFIX + building_id

    def _require(self, building_id: str) -> None:
        if building_id not in self._ring:
            raise FederationError(
                "building %r is not part of this federation (have: %s)"
                % (building_id, ", ".join(self._ring.nodes()))
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def call_building(
        self,
        building_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One admission-checked bus call to a specific building's shard.

        Raises whatever the bus raises -- admission sheds, open
        breakers, RPC failures -- so callers keep the same error
        taxonomy they have for single-building calls.
        """
        self._require(building_id)
        self.metrics.counter(
            "federation_routed_calls_total", {"building": building_id}
        ).inc()
        if self.retry_policy is not None:
            return self._bus.call(
                SHARD_ENDPOINT_PREFIX + building_id,
                method,
                payload,
                retry_policy=self.retry_policy,
                deadline=Deadline(self.call_deadline_s),
                principal=principal,
            )
        return self._bus.call(
            SHARD_ENDPOINT_PREFIX + building_id,
            method,
            payload,
            deadline=Deadline(self.call_deadline_s),
            principal=principal,
        )

    def call_home(
        self,
        principal_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Route a call to ``principal_id``'s home shard."""
        return self.call_building(
            self.home_building(principal_id),
            method,
            payload,
            principal=principal if principal is not None else principal_id,
        )
