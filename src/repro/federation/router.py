"""The federation router: one bus, many buildings, deterministic homes.

Every building's TIPPERS shard and IoT Resource Registry register on
the shared campus :class:`~repro.net.bus.MessageBus` under prefixed
endpoint names (``tippers-<building>``, ``irr-<building>``).  The
router owns the :class:`~repro.federation.ring.HashRing` that maps a
principal to their *home building* and addresses every cross-shard call
through the bus -- which means federation traffic flows through the
same admission control, circuit breakers, retry policies, and deadline
budgets as single-building traffic.  There is no privileged side
channel between shards: a DSAR fan-out competes for admission like any
other CRITICAL call, and a roaming IoTA's re-push can be shed exactly
like a local one (it cannot: preference submission is CRITICAL).

Elastic membership rides the same router: ring changes go through
:meth:`FederationRouter.add_building` / :meth:`remove_building`, a
*draining* building stays addressable (for migration export and
tombstone calls) after leaving the ring, and calls for a principal who
is mid-migration are forwarded to the **new** home only, carrying a
``migrating:<from>:<to>`` marker the enforcement path audits.  There is
deliberately no fallback to the source shard: if the destination cannot
confirm, the call fails and enforcement stays fail-closed -- a stale
ALLOW from the source could outlive a preference change or a DSAR that
already landed at the destination.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import FederationError
from repro.federation.ring import DEFAULT_VNODES, HashRing
from repro.net.bus import MessageBus
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry, get_registry

#: Endpoint-name prefixes for per-building shards.  These are the
#: campus bus's naming contract: the TIPPERS shard of building
#: ``bldg-a`` answers on ``tippers-bldg-a`` and its registry on
#: ``irr-bldg-a``.  The privacy-flow analyzer resolves calls through
#: these prefixes, so keep them as module-level constants.
SHARD_ENDPOINT_PREFIX = "tippers-"
REGISTRY_ENDPOINT_PREFIX = "irr-"

#: Simulated-time budget for one routed call.  Generous on purpose --
#: it bounds retries (lint rule C007), it does not shape traffic.
ROUTER_CALL_DEADLINE_S = 30.0


class FederationRouter:
    """Routes principals and calls to their owning building shard."""

    def __init__(
        self,
        bus: MessageBus,
        building_ids: Sequence[str],
        vnodes: int = DEFAULT_VNODES,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        call_deadline_s: float = ROUTER_CALL_DEADLINE_S,
    ) -> None:
        if not building_ids:
            raise FederationError("a federation needs at least one building")
        self._bus = bus
        self._ring = HashRing(building_ids, vnodes=vnodes)
        self.metrics = metrics if metrics is not None else get_registry()
        self.retry_policy = retry_policy
        self.call_deadline_s = call_deadline_s
        #: Buildings off the ring but still addressable: a drained
        #: building keeps serving migration export/tombstone calls until
        #: it is decommissioned.
        self._draining: set = set()
        #: principal_id -> (from_building, to_building) while the
        #: principal's data is mid-flight between shards.
        self._migrating: Dict[str, Tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def ring(self) -> HashRing:
        return self._ring

    def building_ids(self) -> Tuple[str, ...]:
        """Every federated building, sorted."""
        return self._ring.nodes()

    def home_building(self, principal_id: str) -> str:
        """The building whose shard is ``principal_id``'s home."""
        return self._ring.node_for(principal_id)

    def shard_endpoint(self, building_id: str) -> str:
        """The bus endpoint of ``building_id``'s TIPPERS shard."""
        self._require(building_id)
        return SHARD_ENDPOINT_PREFIX + building_id

    def registry_endpoint(self, building_id: str) -> str:
        """The bus endpoint of ``building_id``'s IoT Resource Registry."""
        self._require(building_id)
        return REGISTRY_ENDPOINT_PREFIX + building_id

    def is_callable(self, building_id: str) -> bool:
        """Whether the building is addressable (on the ring or draining)."""
        return building_id in self._ring or building_id in self._draining

    def _require(self, building_id: str) -> None:
        if not self.is_callable(building_id):
            # Counted rejection: the unknown-membership attempt shows up
            # in metrics even though it never reaches the admission
            # ledger (the bus is not consulted for a building that does
            # not exist).
            self.metrics.counter(
                "federation_unknown_building_total", {"building": building_id}
            ).inc()
            raise FederationError(
                "building %r is not part of this federation (have: %s)"
                % (building_id, ", ".join(self._ring.nodes()))
            )

    # ------------------------------------------------------------------
    # Membership changes
    # ------------------------------------------------------------------
    def add_building(
        self, building_id: str, keys: Sequence[str] = ()
    ) -> Dict[str, Tuple[str, str]]:
        """Add a building to the ring; returns the migration delta."""
        delta = self._ring.add_building(building_id, keys=keys)
        self._draining.discard(building_id)
        self.metrics.counter(
            "federation_ring_changes_total", {"change": "add"}
        ).inc()
        return delta

    def begin_drain(
        self, building_id: str, keys: Sequence[str] = ()
    ) -> Dict[str, Tuple[str, str]]:
        """Take a building off the ring but keep it addressable.

        New placements skip the building immediately; the shard itself
        keeps serving migration export/finalize (and DSAR) calls until
        :meth:`finish_drain` / decommissioning.
        """
        delta = self._ring.remove_building(building_id, keys=keys)
        self._draining.add(building_id)
        self.metrics.counter(
            "federation_ring_changes_total", {"change": "drain"}
        ).inc()
        return delta

    def finish_drain(self, building_id: str) -> None:
        """The drained building is gone; stop addressing it."""
        self._draining.discard(building_id)

    @property
    def ring_version(self) -> int:
        return self._ring.version

    # ------------------------------------------------------------------
    # Mid-migration forwarding
    # ------------------------------------------------------------------
    def mark_migrating(
        self, principal_id: str, from_building: str, to_building: str
    ) -> None:
        self._migrating[principal_id] = (from_building, to_building)

    def clear_migrating(self, principal_id: str) -> None:
        self._migrating.pop(principal_id, None)

    def migration_of(self, principal_id: str) -> Optional[Tuple[str, str]]:
        """``(from, to)`` while the principal is mid-migration, else None."""
        return self._migrating.get(principal_id)

    def migrating_principals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._migrating))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def call_building(
        self,
        building_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One admission-checked bus call to a specific building's shard.

        Raises whatever the bus raises -- admission sheds, open
        breakers, RPC failures -- so callers keep the same error
        taxonomy they have for single-building calls.
        """
        self._require(building_id)
        self.metrics.counter(
            "federation_routed_calls_total", {"building": building_id}
        ).inc()
        if self.retry_policy is not None:
            return self._bus.call(
                SHARD_ENDPOINT_PREFIX + building_id,
                method,
                payload,
                retry_policy=self.retry_policy,
                deadline=Deadline(self.call_deadline_s),
                principal=principal,
            )
        return self._bus.call(
            SHARD_ENDPOINT_PREFIX + building_id,
            method,
            payload,
            deadline=Deadline(self.call_deadline_s),
            principal=principal,
        )

    def call_home(
        self,
        principal_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Route a call to ``principal_id``'s home shard.

        While the principal is mid-migration the call is *forwarded* to
        the new home -- never the source -- with a
        ``migrating:<from>:<to>`` marker injected into the payload so
        the decision it produces is audited as a forwarded one.  If the
        destination cannot confirm (dark, or the import has not landed
        yet) the call fails like any other bus failure: fail-closed by
        construction, because no path can return a stale source-side
        ALLOW.
        """
        migration = self._migrating.get(principal_id)
        target = self.home_building(principal_id)
        if migration is not None:
            from_building, to_building = migration
            target = to_building
            payload = dict(payload)
            payload["migration_marker"] = "migrating:%s:%s" % (
                from_building, to_building,
            )
            self.metrics.counter(
                "federation_forwarded_calls_total", {"building": to_building}
            ).inc()
        return self.call_building(
            target,
            method,
            payload,
            principal=principal if principal is not None else principal_id,
        )
