"""Crash-tolerant shard rebalancing for ring changes.

When a building joins or drains, the hash ring hands back a *migration
delta* -- ``user_id -> (old_home, new_home)`` -- and this module turns
that plan into per-user, two-phase, WAL-journaled migrations:

1. **freeze + copy** -- the source shard snapshots the user's profile,
   preferences, datastore rows, and compiled-table eviction into a
   ``migration`` WAL record (role ``source``), the destination journals
   the same snapshot (role ``dest``) *before* applying it, applies it
   idempotently, then journals ``committed``;
2. **cutover** -- the router forwards in-flight calls for the user to
   the new home only (with a ``migrating:<from>:<to>`` audit marker),
   and once the destination has acknowledged the import the source
   tombstones its copy (DSAR-grade erase + preference withdrawal +
   directory removal) and journals ``tombstone``.

The order of journal writes is the crash-safety argument:

- the destination journals the snapshot **before** applying it, so a
  destination crash mid-import replays to the exact imported state;
- the source tombstones **only after** the destination acknowledged
  ``committed``, so no crash can leave the user on zero shards;
- every step is idempotent (re-export re-snapshots live state, import
  skips observation ids it already holds, preference submit is
  latest-wins, tombstone is a no-op on an absent user), so replaying a
  half-done migration -- from either shard's WAL -- converges without
  duplicating or losing a single decision.

Faults are injected through the same plane mechanism the storage and
bus layers use: the :class:`~repro.faults.injector.FaultInjector`
installs a callable the coordinator consults at each step boundary.
``crash_mid_migration`` kills the shard that owns the step (source for
copy/finalize, destination for import -- *after* its journal landed, so
recovery exercises the committed-import replay path);
``cutover_partition`` loses the step's acknowledgement, leaving the
migration pending for :meth:`RebalanceCoordinator.retry_pending`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FederationError, NetworkError, SimulatedCrash
from repro.federation.campus import Campus
from repro.federation.router import SHARD_ENDPOINT_PREFIX
from repro.net.resilience import Deadline, RetryPolicy

#: Step names the fault plane is consulted with (spec targets match
#: either the step name or the migrating user's id).
STEP_COPY = "copy"
STEP_IMPORT = "import"
STEP_FINALIZE = "finalize"

#: Fault-kind values the plane may return (string forms of
#: :data:`repro.faults.plan.MIGRATION_KINDS`; string-typed here so this
#: module never imports the fault layer).
KIND_CRASH = "crash_mid_migration"
KIND_PARTITION = "cutover_partition"


@dataclass(frozen=True)
class UserMigration:
    """One user's planned move between shards."""

    migration_id: str
    user_id: str
    source: str
    dest: str


@dataclass(frozen=True)
class MigrationOutcome:
    """What happened to one migration attempt (counts only: no
    timestamps, no object reprs -- outcomes feed byte-reproducible
    scenario reports)."""

    migration_id: str
    user_id: str
    source: str
    dest: str
    #: ``completed`` | ``already_finalized`` | ``partitioned`` |
    #: ``blocked`` | ``rolled_back``
    status: str
    observations_moved: int = 0
    preferences_moved: int = 0


class RebalanceCoordinator:
    """Executes a migration delta as two-phase per-user migrations.

    The coordinator owns no durable state of its own -- everything it
    needs to resume after a crash is in the shards' WALs (surfaced by
    recovery as :attr:`repro.tippers.bms.TIPPERS.recovered_migrations`)
    plus the in-memory pending set, which is reconstructible from the
    original delta.  All shard calls go through the federation router's
    bus path, so they compete for admission, trip breakers, and burn
    deadline budget exactly like any other campus traffic; pass a
    ``retry_policy`` to wrap each step call in bounded retries.
    """

    def __init__(
        self, campus: Campus, retry_policy: Optional[RetryPolicy] = None
    ) -> None:
        self.campus = campus
        self.retry_policy = retry_policy
        self._planes: List[Callable[[str, str], Tuple[str, ...]]] = []
        #: migration_id -> (migration, stage it stalled at).
        self._pending: Dict[str, Tuple[UserMigration, str]] = {}
        #: migration_id -> its final outcome (the cached result a
        #: repeated ``migrate`` call returns).
        self._completed: Dict[str, MigrationOutcome] = {}
        #: Set when a ``crash_mid_migration`` fault fires: the building
        #: the scenario must ``mark_down`` and later recover.
        self.crashed_building: Optional[str] = None
        self._next_plan_id = 1
        self.stats: Dict[str, int] = {
            "planned": 0,
            "completed": 0,
            "already_finalized": 0,
            "partitioned": 0,
            "blocked": 0,
            "crashes": 0,
            "retried": 0,
            "resumed_committed": 0,
            "rolled_back": 0,
        }

    # ------------------------------------------------------------------
    # Fault plane (installed by FaultInjector.install_rebalancer)
    # ------------------------------------------------------------------
    def install_fault_plane(
        self, plane: Callable[[str, str], Tuple[str, ...]]
    ) -> None:
        self._planes.append(plane)

    def remove_fault_plane(
        self, plane: Callable[[str, str], Tuple[str, ...]]
    ) -> None:
        if plane in self._planes:
            self._planes.remove(plane)

    def _consult(self, step: str, migration: UserMigration) -> Tuple[str, ...]:
        fired: Tuple[str, ...] = ()
        for plane in self._planes:
            fired += tuple(plane(step, migration.user_id))
        return fired

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_for_delta(
        self, delta: Dict[str, Tuple[str, str]]
    ) -> List[UserMigration]:
        """Deterministic per-user migration plan for a ring delta."""
        migrations: List[UserMigration] = []
        for user_id in sorted(delta):
            old_home, new_home = delta[user_id]
            migrations.append(
                UserMigration(
                    migration_id="mig-%04d-%s" % (self._next_plan_id, user_id),
                    user_id=user_id,
                    source=old_home,
                    dest=new_home,
                )
            )
            self._next_plan_id += 1
            self.stats["planned"] += 1
        return migrations

    def pending(self) -> List[Tuple[UserMigration, str]]:
        """Stalled migrations, sorted by migration id."""
        return [self._pending[k] for k in sorted(self._pending)]

    # ------------------------------------------------------------------
    # Shard calls
    # ------------------------------------------------------------------
    def _call(
        self,
        building_id: str,
        method: str,
        payload: Dict[str, Any],
        principal: str,
    ) -> Dict[str, Any]:
        router = self.campus.router
        if self.retry_policy is None:
            return router.call_building(
                building_id, method, payload, principal=principal
            )
        # Same validation (counted unknown-building rejection) and
        # deadline budget as the router path, plus bounded retries.
        # The bus target is spelled PREFIX + id so the privacy-flow
        # analyzer resolves the dispatch through its prefix map.
        router.shard_endpoint(building_id)
        router.metrics.counter(
            "federation_routed_calls_total", {"building": building_id}
        ).inc()
        return self.campus.bus.call(
            SHARD_ENDPOINT_PREFIX + building_id,
            method,
            payload,
            retry_policy=self.retry_policy,
            deadline=Deadline(router.call_deadline_s),
            principal=principal,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def migrate(self, migration: UserMigration) -> MigrationOutcome:
        """Run one migration end to end (or as far as faults allow).

        Safe to call again for a migration that stalled or crashed: every
        step re-runs idempotently.  Raises :class:`SimulatedCrash` when
        the fault plane kills a shard mid-step; :attr:`crashed_building`
        then names the victim.
        """
        m = migration
        done = self._completed.get(m.migration_id)
        if done is not None:
            return done
        router = self.campus.router
        router.mark_migrating(m.user_id, m.source, m.dest)
        self.campus.metrics.counter(
            "federation_migrations_started_total", {"to": m.dest}
        ).inc()

        # -- Phase 1: freeze + copy -----------------------------------
        fired = self._consult(STEP_COPY, m)
        if KIND_CRASH in fired:
            return self._crash(m, STEP_COPY, m.source)
        if KIND_PARTITION in fired:
            return self._stall(m, STEP_COPY, "partitioned")
        try:
            snapshot_reply = self._call(
                m.source,
                "migrate_export",
                {
                    "migration_id": m.migration_id,
                    "user_id": m.user_id,
                    "to_building": m.dest,
                },
                principal=m.user_id,
            )
        except NetworkError:
            return self._stall(m, STEP_COPY, "blocked")
        if not snapshot_reply.get("found", False):
            # The source already tombstoned this user: a prior attempt
            # finalized but its acknowledgement was lost.  Converge.
            return self._complete(m, "already_finalized", {}, {})

        try:
            import_reply = self._call(
                m.dest,
                "migrate_import",
                {
                    "migration_id": m.migration_id,
                    "user_id": m.user_id,
                    "from_building": m.source,
                    "snapshot": snapshot_reply["snapshot"],
                },
                principal=m.user_id,
            )
        except NetworkError:
            return self._stall(m, STEP_IMPORT, "blocked")
        # The import consult sits *after* the call: a crash here models
        # the destination dying with ``committed`` already journaled
        # (recovery must take the finalize-only path), and a partition
        # models a lost acknowledgement (retry re-imports idempotently).
        fired = self._consult(STEP_IMPORT, m)
        if KIND_CRASH in fired:
            return self._crash(m, STEP_IMPORT, m.dest)
        if KIND_PARTITION in fired:
            return self._stall(m, STEP_IMPORT, "partitioned")

        # -- Phase 2: cutover -----------------------------------------
        return self._finalize(m, import_reply)

    def _finalize(
        self, m: UserMigration, import_reply: Dict[str, Any]
    ) -> MigrationOutcome:
        fired = self._consult(STEP_FINALIZE, m)
        if KIND_CRASH in fired:
            return self._crash(m, STEP_FINALIZE, m.source)
        if KIND_PARTITION in fired:
            return self._stall(m, STEP_FINALIZE, "partitioned")
        try:
            finalize_reply = self._call(
                m.source,
                "migrate_finalize",
                {
                    "migration_id": m.migration_id,
                    "user_id": m.user_id,
                    "to_building": m.dest,
                },
                principal=m.user_id,
            )
        except NetworkError:
            return self._stall(m, STEP_FINALIZE, "blocked")
        return self._complete(m, "completed", import_reply, finalize_reply)

    # ------------------------------------------------------------------
    # Resumption
    # ------------------------------------------------------------------
    def retry_pending(self) -> List[MigrationOutcome]:
        """Re-drive every stalled migration, in migration-id order."""
        outcomes: List[MigrationOutcome] = []
        for migration, stage in self.pending():
            self.stats["retried"] += 1
            if stage == STEP_FINALIZE:
                # The destination acknowledged the import; only the
                # source-side tombstone is outstanding.
                del self._pending[migration.migration_id]
                outcomes.append(self._finalize(migration, {}))
            else:
                # Stalled before the import acknowledgement: never trust
                # a stale snapshot -- re-export live state (a DSAR may
                # have landed at the source since the copy was taken).
                del self._pending[migration.migration_id]
                outcomes.append(self.migrate(migration))
        return outcomes

    def resume_with_journal(
        self, journal: Dict[str, Dict[str, Any]]
    ) -> List[MigrationOutcome]:
        """Resume after a shard crash, guided by its replayed WAL.

        ``journal`` is a recovered shard's ``recovered_migrations``
        (migration_id -> latest journaled phase).  A destination entry
        at ``committed`` proves the import landed durably, so only the
        source tombstone re-runs; anything earlier re-drives the whole
        migration from a fresh export.
        """
        self.crashed_building = None
        outcomes: List[MigrationOutcome] = []
        for migration, _stage in self.pending():
            entry = journal.get(migration.migration_id, {})
            del self._pending[migration.migration_id]
            if (
                entry.get("phase") == "committed"
                and entry.get("role") == "dest"
            ):
                self.stats["resumed_committed"] += 1
                outcomes.append(self._finalize(migration, {}))
            else:
                self.stats["retried"] += 1
                outcomes.append(self.migrate(migration))
        return outcomes

    def rollback(self, migration: UserMigration) -> MigrationOutcome:
        """Cancel a stalled migration: the user stays at the source.

        Only legal while the source still holds the user (i.e. the
        migration never reached its tombstone).  The destination's
        partial copy -- if any -- is erased with the same tombstone
        machinery, journaled on the destination's WAL, and the router's
        forwarding mark is dropped so calls route to the source again.
        The caller is responsible for having reverted the ring change
        that planned this migration.
        """
        m = migration
        done = self._completed.get(m.migration_id)
        if done is not None and done.status == "completed":
            raise FederationError(
                "migration %r already tombstoned its source; it cannot "
                "be rolled back" % m.migration_id
            )
        self._call(
            m.dest,
            "migrate_finalize",
            {
                "migration_id": m.migration_id,
                "user_id": m.user_id,
                "to_building": m.source,
            },
            principal=m.user_id,
        )
        self.campus.router.clear_migrating(m.user_id)
        self._pending.pop(m.migration_id, None)
        outcome = self._outcome(m, "rolled_back")
        self._completed[m.migration_id] = outcome
        self.stats["rolled_back"] += 1
        self.campus.metrics.counter(
            "federation_migrations_total", {"outcome": "rolled_back"}
        ).inc()
        return outcome

    # ------------------------------------------------------------------
    # Outcome bookkeeping
    # ------------------------------------------------------------------
    def _crash(
        self, m: UserMigration, stage: str, victim: str
    ) -> MigrationOutcome:
        self._pending[m.migration_id] = (m, stage)
        self.crashed_building = victim
        self.stats["crashes"] += 1
        self.campus.metrics.counter(
            "federation_migrations_total", {"outcome": "crashed"}
        ).inc()
        raise SimulatedCrash(
            "shard %r crashed during %s of %s" % (victim, stage, m.migration_id)
        )

    def _stall(
        self, m: UserMigration, stage: str, status: str
    ) -> MigrationOutcome:
        self._pending[m.migration_id] = (m, stage)
        self.stats[status] += 1
        self.campus.metrics.counter(
            "federation_migrations_total", {"outcome": status}
        ).inc()
        return self._outcome(m, status)

    def _complete(
        self,
        m: UserMigration,
        status: str,
        import_reply: Dict[str, Any],
        finalize_reply: Dict[str, Any],
    ) -> MigrationOutcome:
        self._pending.pop(m.migration_id, None)
        self.campus.router.clear_migrating(m.user_id)
        if status in ("completed", "already_finalized"):
            # ``already_finalized`` means a prior attempt tombstoned the
            # source but its acknowledgement was lost before the campus
            # metadata flipped -- flip it now.
            self.campus.complete_migration(m.user_id, m.source, m.dest)
        self.stats[status] += 1
        self.campus.metrics.counter(
            "federation_migrations_total", {"outcome": status}
        ).inc()
        outcome = MigrationOutcome(
            migration_id=m.migration_id,
            user_id=m.user_id,
            source=m.source,
            dest=m.dest,
            status=status,
            observations_moved=int(
                import_reply.get("observations_imported", 0)
            ),
            preferences_moved=int(
                import_reply.get("preferences_imported", 0)
            ),
        )
        self._completed[m.migration_id] = outcome
        return outcome

    def _outcome(self, m: UserMigration, status: str) -> MigrationOutcome:
        return MigrationOutcome(
            migration_id=m.migration_id,
            user_id=m.user_id,
            source=m.source,
            dest=m.dest,
            status=status,
        )
