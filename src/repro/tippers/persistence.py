"""Durable storage: JSON-lines snapshots of observations and audit.

The in-memory datastore is the working set; a real deployment also
needs restart-safe persistence.  Observations and audit records are
written one-JSON-object-per-line, so snapshots are streamable,
greppable, and append-friendly.

Round-trip fidelity is exact: ``load_datastore(save_datastore(ds))``
reproduces every observation (ids, payloads, attribution, granularity
labels) and the audit loader reproduces every decision record.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import StorageError
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore


# ----------------------------------------------------------------------
# Observations
# ----------------------------------------------------------------------
def observation_to_json(observation: Observation) -> str:
    return json.dumps(observation.to_dict(), separators=(",", ":"), allow_nan=False)


def observation_from_json(line: str) -> Observation:
    try:
        data = json.loads(line)
        return Observation(
            observation_id=data["observation_id"],
            sensor_id=data["sensor_id"],
            sensor_type=data["sensor_type"],
            timestamp=data["timestamp"],
            space_id=data.get("space_id"),
            payload=dict(data.get("payload", {})),
            subject_id=data.get("subject_id"),
            granularity=data.get("granularity", "precise"),
        )
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise StorageError("malformed observation line: %s" % exc) from None


def save_datastore(datastore: Datastore, path: str) -> int:
    """Snapshot every stored observation to ``path``; returns count.

    The snapshot is written to a temp file and atomically renamed, so a
    crash mid-save never corrupts an existing snapshot.
    """
    temp_path = path + ".tmp"
    count = 0
    with open(temp_path, "w") as handle:
        for sensor_type in datastore.stream_names():
            for observation in datastore.query(sensor_type=sensor_type):
                handle.write(observation_to_json(observation))
                handle.write("\n")
                count += 1
    os.replace(temp_path, path)
    return count


def load_datastore(path: str, into: Optional[Datastore] = None) -> Datastore:
    """Rebuild a datastore from a snapshot file."""
    datastore = into if into is not None else Datastore()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                datastore.insert(observation_from_json(line))
            except StorageError as exc:
                raise StorageError("%s (line %d of %s)" % (exc, line_no, path)) from None
    return datastore


# ----------------------------------------------------------------------
# Audit log
# ----------------------------------------------------------------------
def audit_record_to_json(record: AuditRecord) -> str:
    return json.dumps(
        {
            "timestamp": record.timestamp,
            "requester_id": record.requester_id,
            "phase": record.phase.value,
            "category": record.category,
            "subject_id": record.subject_id,
            "space_id": record.space_id,
            "effect": record.effect.value,
            "granularity": record.granularity.value,
            "reasons": list(record.reasons),
            "notify_user": record.notify_user,
        },
        separators=(",", ":"),
        allow_nan=False,
    )


def audit_record_from_json(line: str) -> AuditRecord:
    try:
        data = json.loads(line)
        return AuditRecord(
            timestamp=data["timestamp"],
            requester_id=data["requester_id"],
            phase=DecisionPhase(data["phase"]),
            category=data["category"],
            subject_id=data.get("subject_id"),
            space_id=data.get("space_id"),
            effect=Effect(data["effect"]),
            granularity=GranularityLevel(data["granularity"]),
            reasons=tuple(data.get("reasons", ())),
            notify_user=data.get("notify_user", False),
        )
    except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
        raise StorageError("malformed audit line: %s" % exc) from None


def save_audit(audit: AuditLog, path: str) -> int:
    temp_path = path + ".tmp"
    count = 0
    with open(temp_path, "w") as handle:
        for record in audit:
            handle.write(audit_record_to_json(record))
            handle.write("\n")
            count += 1
    os.replace(temp_path, path)
    return count


def load_audit(path: str, into: Optional[AuditLog] = None) -> AuditLog:
    audit = into if into is not None else AuditLog()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                audit.append(audit_record_from_json(line))
            except StorageError as exc:
                raise StorageError("%s (line %d of %s)" % (exc, line_no, path)) from None
    return audit
