"""Durable storage: JSON-lines snapshots of observations and audit.

The in-memory datastore is the working set; a real deployment also
needs restart-safe persistence.  Observations and audit records are
written one-JSON-object-per-line, so snapshots are streamable,
greppable, and append-friendly.

Round-trip fidelity is exact: ``load_datastore(save_datastore(ds))``
reproduces every observation (ids, payloads, attribution, granularity
labels) and the audit loader reproduces every decision record.

Torn tails: a crash while a line was being written can leave a partial
*final* record.  The loaders tolerate it -- the broken final line is
skipped, reported through the optional ``on_torn_tail`` callback, and
counted in the ``persistence_torn_tail_total`` metric -- matching the
WAL's torn-tail semantics (see :mod:`repro.storage.wal`).  A malformed
line *followed by* further data is real corruption, not a tear, and
still raises :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import StorageError
from repro.obs.metrics import get_registry
from repro.sensors.base import Observation
from repro.tippers.datastore import Datastore

#: Called with a human-readable message when a loader skips a torn
#: final record instead of raising.
TornTailCallback = Callable[[str], None]


# ----------------------------------------------------------------------
# Observations
# ----------------------------------------------------------------------
def observation_to_json(observation: Observation) -> str:
    return json.dumps(observation.to_dict(), separators=(",", ":"), allow_nan=False)


def observation_from_dict(data: Dict[str, Any]) -> Observation:
    try:
        return Observation(
            observation_id=data["observation_id"],
            sensor_id=data["sensor_id"],
            sensor_type=data["sensor_type"],
            timestamp=data["timestamp"],
            space_id=data.get("space_id"),
            payload=dict(data.get("payload", {})),
            subject_id=data.get("subject_id"),
            granularity=data.get("granularity", "precise"),
        )
    except (KeyError, TypeError) as exc:
        raise StorageError("malformed observation record: %s" % exc) from None


def observation_from_json(line: str) -> Observation:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StorageError("malformed observation line: %s" % exc) from None
    if not isinstance(data, dict):
        raise StorageError("malformed observation line: not an object")
    return observation_from_dict(data)


def save_datastore(datastore: Datastore, path: str) -> int:
    """Snapshot every stored observation to ``path``; returns count.

    The snapshot is written to a temp file and atomically renamed, so a
    crash mid-save never corrupts an existing snapshot.
    """
    temp_path = path + ".tmp"
    count = 0
    with open(temp_path, "w") as handle:
        for sensor_type in datastore.stream_names():
            for observation in datastore.query(sensor_type=sensor_type):
                handle.write(observation_to_json(observation))
                handle.write("\n")
                count += 1
    os.replace(temp_path, path)
    return count


def _iter_data_lines(path: str) -> List[Tuple[int, str, bool]]:
    """Non-empty lines of ``path`` as ``(line_no, text, is_final)``."""
    with open(path) as handle:
        raw = handle.read()
    numbered = [
        (line_no, line.strip())
        for line_no, line in enumerate(raw.splitlines(), start=1)
    ]
    data = [(line_no, text) for line_no, text in numbered if text]
    return [
        (line_no, text, index == len(data) - 1)
        for index, (line_no, text) in enumerate(data)
    ]


def _report_torn_tail(
    path: str, line_no: int, error: StorageError,
    on_torn_tail: Optional[TornTailCallback],
) -> None:
    get_registry().counter("persistence_torn_tail_total").inc()
    if on_torn_tail is not None:
        on_torn_tail(
            "torn final record skipped (line %d of %s): %s" % (line_no, path, error)
        )


def load_datastore(
    path: str,
    into: Optional[Datastore] = None,
    on_torn_tail: Optional[TornTailCallback] = None,
) -> Datastore:
    """Rebuild a datastore from a snapshot file.

    A malformed *final* record is treated as a torn tail: skipped and
    reported (callback + metric) rather than raised, so a snapshot cut
    short by a crash still restores its valid prefix.
    """
    datastore = into if into is not None else Datastore()
    for line_no, line, is_final in _iter_data_lines(path):
        try:
            # Base-class call: loading into a durable datastore must
            # not write-ahead-log what is already durable.
            Datastore.insert(datastore, observation_from_json(line))
        except StorageError as exc:
            if is_final:
                _report_torn_tail(path, line_no, exc, on_torn_tail)
                break
            raise StorageError("%s (line %d of %s)" % (exc, line_no, path)) from None
    return datastore


# ----------------------------------------------------------------------
# Audit log
# ----------------------------------------------------------------------
def audit_record_to_dict(record: AuditRecord) -> Dict[str, Any]:
    return {
        "timestamp": record.timestamp,
        "requester_id": record.requester_id,
        "phase": record.phase.value,
        "category": record.category,
        "subject_id": record.subject_id,
        "space_id": record.space_id,
        "effect": record.effect.value,
        "granularity": record.granularity.value,
        "reasons": list(record.reasons),
        "notify_user": record.notify_user,
    }


def audit_record_to_json(record: AuditRecord) -> str:
    return json.dumps(
        audit_record_to_dict(record), separators=(",", ":"), allow_nan=False
    )


def audit_record_from_dict(data: Dict[str, Any]) -> AuditRecord:
    try:
        return AuditRecord(
            timestamp=data["timestamp"],
            requester_id=data["requester_id"],
            phase=DecisionPhase(data["phase"]),
            category=data["category"],
            subject_id=data.get("subject_id"),
            space_id=data.get("space_id"),
            effect=Effect(data["effect"]),
            granularity=GranularityLevel(data["granularity"]),
            reasons=tuple(data.get("reasons", ())),
            notify_user=data.get("notify_user", False),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise StorageError("malformed audit record: %s" % exc) from None


def audit_record_from_json(line: str) -> AuditRecord:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StorageError("malformed audit line: %s" % exc) from None
    if not isinstance(data, dict):
        raise StorageError("malformed audit line: not an object")
    return audit_record_from_dict(data)


def save_audit(audit: AuditLog, path: str) -> int:
    temp_path = path + ".tmp"
    count = 0
    with open(temp_path, "w") as handle:
        for record in audit:
            handle.write(audit_record_to_json(record))
            handle.write("\n")
            count += 1
    os.replace(temp_path, path)
    return count


def load_audit(
    path: str,
    into: Optional[AuditLog] = None,
    on_torn_tail: Optional[TornTailCallback] = None,
) -> AuditLog:
    """Rebuild an audit log from a snapshot file (torn tail tolerated)."""
    audit = into if into is not None else AuditLog()
    for line_no, line, is_final in _iter_data_lines(path):
        try:
            AuditLog.append(audit, audit_record_from_json(line))
        except StorageError as exc:
            if is_final:
                _report_torn_tail(path, line_no, exc, on_torn_tail)
                break
            raise StorageError("%s (line %d of %s)" % (exc, line_no, path)) from None
    return audit
