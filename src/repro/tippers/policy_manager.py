"""The building policy manager.

Step (1) of Figure 1: "The building admin ... uses the smart building
management system (such as TIPPERS) to define policies regarding the
collection and management of data within the building."  The manager
validates and stores policies, feeds them to the enforcement engine,
compiles the machine-readable documents the IRR advertises (step 4),
derives retention schedules, executes actuation rules against the
sensor fleet, and keeps event rosters for disclosure policies like
Policy 4.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
)
from repro.core.language.vocabulary import PURPOSE_TAXONOMY, Purpose
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.settings import SettingsSpace, location_settings_space
from repro.core.reasoner.index import RuleStore
from repro.errors import PolicyError
from repro.sensors.ontology import SensorOntology
from repro.spatial.model import SpatialModel
from repro.tippers.sensor_manager import SensorManager


class PolicyManager:
    """Holds building policies and compiles their artifacts."""

    def __init__(
        self,
        store: RuleStore,
        spatial: SpatialModel,
        ontology: SensorOntology,
        building_id: str,
        owner_name: str = "",
        owner_more_info: str = "",
        settings_space: Optional[SettingsSpace] = None,
    ) -> None:
        self._store = store
        self._spatial = spatial
        self._ontology = ontology
        self.building_id = building_id
        self.owner_name = owner_name
        self.owner_more_info = owner_more_info
        self._policies: Dict[str, BuildingPolicy] = {}
        self._events: Dict[str, Set[str]] = {}
        self._event_spaces: Dict[str, str] = {}
        self.settings_space = (
            settings_space if settings_space is not None else location_settings_space()
        )

    # ------------------------------------------------------------------
    # Policy lifecycle
    # ------------------------------------------------------------------
    def define(self, policy: BuildingPolicy) -> BuildingPolicy:
        """Validate and activate a building policy."""
        if policy.policy_id in self._policies:
            raise PolicyError("policy %r already defined" % policy.policy_id)
        for space_id in policy.space_ids:
            if space_id not in self._spatial:
                raise PolicyError(
                    "policy %r references unknown space %r"
                    % (policy.policy_id, space_id)
                )
        for sensor_type in policy.sensor_types:
            if sensor_type not in self._ontology:
                raise PolicyError(
                    "policy %r references unknown sensor type %r"
                    % (policy.policy_id, sensor_type)
                )
        self._policies[policy.policy_id] = policy
        self._store.add_policy(policy)
        return policy

    def retire(self, policy_id: str) -> None:
        if policy_id not in self._policies:
            raise PolicyError("unknown policy %r" % policy_id)
        del self._policies[policy_id]
        self._store.remove_policy(policy_id)

    def get(self, policy_id: str) -> BuildingPolicy:
        try:
            return self._policies[policy_id]
        except KeyError:
            raise PolicyError("unknown policy %r" % policy_id) from None

    def policies(self) -> List[BuildingPolicy]:
        return sorted(self._policies.values(), key=lambda p: p.policy_id)

    def __len__(self) -> int:
        return len(self._policies)

    # ------------------------------------------------------------------
    # Retention schedule
    # ------------------------------------------------------------------
    def retention_by_sensor_type(self) -> Dict[str, float]:
        """Sensor type -> retention seconds (strictest across policies)."""
        schedule: Dict[str, float] = {}
        for policy in self._policies.values():
            seconds = policy.retention_seconds()
            if seconds is None:
                continue
            for sensor_type in policy.sensor_types:
                current = schedule.get(sensor_type)
                if current is None or seconds < current:
                    schedule[sensor_type] = float(seconds)
        return schedule

    # ------------------------------------------------------------------
    # IRR document compilation (step 4 of Figure 1)
    # ------------------------------------------------------------------
    def compile_policy_document(self) -> ResourcePolicyDocument:
        """The machine-readable document advertising every data policy.

        One resource entry per (policy, sensor type) pair that collects
        data; policies without sensor types (pure sharing rules) compile
        to a sensor-less "service" entry keyed on the policy itself.
        """
        resources: List[ResourceDescription] = []
        for policy in self.policies():
            purposes = {
                purpose.value: PURPOSE_TAXONOMY[purpose].description
                for purpose in policy.purposes
            } or {"logging": PURPOSE_TAXONOMY[Purpose.LOGGING].description}
            observations = tuple(
                ObservationDescription(
                    name=category.value,
                    description="%s data (%s granularity)"
                    % (category.value, policy.granularity.value),
                    granularity=policy.granularity,
                )
                for category in policy.categories
            ) or (
                ObservationDescription(
                    name="unspecified", description=policy.description
                ),
            )
            sensor_types = policy.sensor_types or ("",)
            for sensor_type in sensor_types:
                description = (
                    self._ontology.get(sensor_type).description
                    if sensor_type and sensor_type in self._ontology
                    else policy.description
                )
                resources.append(
                    ResourceDescription(
                        name=policy.name,
                        resource_id=policy.policy_id,
                        spatial_name=self._spatial.get(self.building_id).name,
                        spatial_type="Building",
                        owner_name=self.owner_name,
                        owner_more_info=self.owner_more_info,
                        sensor_type=sensor_type or "none",
                        sensor_description=description,
                        purposes=purposes,
                        observations=observations,
                        retention=policy.retention,
                    )
                )
        if not resources:
            raise PolicyError("no policies defined; nothing to advertise")
        return ResourcePolicyDocument(resources)

    # ------------------------------------------------------------------
    # Actuation (Policy 1's pipeline)
    # ------------------------------------------------------------------
    def run_actuations(
        self,
        sensor_manager: SensorManager,
        triggers: Dict[str, Callable[[str], bool]],
    ) -> int:
        """Execute every policy's actuation rules.

        ``triggers`` maps trigger names (e.g. ``"occupied"``) to
        predicates over space ids; the ``"always"`` trigger is built in.
        Returns the number of sensors actuated.

        For Policy 1 this walks exactly the paper's pipeline: determine
        per-room occupancy (the trigger predicate queries motion-sensor
        data), then change HVAC settings in the rooms where it holds.
        """
        actuated = 0
        for policy in self.policies():
            if not policy.actuations:
                continue
            spaces = policy.space_ids or (self.building_id,)
            for rule in policy.actuations:
                for space_id in spaces:
                    if rule.trigger != "always":
                        predicate = triggers.get(rule.trigger)
                        if predicate is None:
                            raise PolicyError(
                                "no trigger %r for policy %r"
                                % (rule.trigger, policy.policy_id)
                            )
                        if not predicate(space_id):
                            continue
                    targets = self._sensors_under(sensor_manager, space_id, rule.sensor_type)
                    for sensor in targets:
                        sensor.actuate(dict(rule.settings))
                        actuated += 1
        return actuated

    def _sensors_under(
        self, sensor_manager: SensorManager, space_id: str, sensor_type: str
    ):
        """Sensors of ``sensor_type`` in ``space_id`` or any space under it."""
        direct = sensor_manager.sensors_in_space(space_id, sensor_type)
        if direct or space_id not in self._spatial:
            return direct
        result = []
        for descendant in self._spatial.descendants(space_id):
            result.extend(
                sensor_manager.sensors_in_space(descendant.space_id, sensor_type)
            )
        return result

    # ------------------------------------------------------------------
    # Event rosters (Policy 4)
    # ------------------------------------------------------------------
    def register_event(self, event_id: str, space_id: str) -> None:
        if space_id not in self._spatial:
            raise PolicyError("unknown event space %r" % space_id)
        self._events[event_id] = set()
        self._event_spaces[event_id] = space_id

    def register_participant(self, event_id: str, user_id: str) -> None:
        if event_id not in self._events:
            raise PolicyError("unknown event %r" % event_id)
        self._events[event_id].add(user_id)

    def event_roster(self, event_id: str) -> Set[str]:
        if event_id not in self._events:
            raise PolicyError("unknown event %r" % event_id)
        return set(self._events[event_id])

    def event_space(self, event_id: str) -> str:
        if event_id not in self._event_spaces:
            raise PolicyError("unknown event %r" % event_id)
        return self._event_spaces[event_id]
