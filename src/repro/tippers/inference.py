"""Processing: deriving higher-level semantic information.

TIPPERS "processes higher-level semantic information from such data"
(Section II-B).  The inference engine turns raw observation streams
into the abstract data categories the policy language talks about:
occupancy, location, presence, and activity patterns.

It also implements the *inference attack* of Section II-A -- guessing a
person's role from arrival/departure heuristics ("non-faculty staff
arrive at 7 am and leave before 5 pm, graduate students generally leave
the building late...") -- which the examples use to demonstrate why
these flows need privacy policies at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.sensors.base import Observation
from repro.spatial.model import SpatialModel
from repro.tippers.datastore import Datastore

#: Sensor types whose observations place a subject at a space.
LOCATION_SENSOR_TYPES = ("bluetooth_beacon", "wifi_access_point")


@dataclass(frozen=True)
class LocationEstimate:
    """Where a subject most recently was."""

    subject_id: str
    space_id: str
    timestamp: float
    source_sensor_type: str
    granularity: str = "precise"


@dataclass(frozen=True)
class ActivityPattern:
    """A subject's daily rhythm over the observed period."""

    subject_id: str
    days_observed: int
    mean_arrival_hour: float
    mean_departure_hour: float

    @property
    def mean_hours_in_building(self) -> float:
        return max(0.0, self.mean_departure_hour - self.mean_arrival_hour)


class InferenceEngine:
    """Derives semantic information from the datastore."""

    def __init__(
        self,
        datastore: Datastore,
        spatial: Optional[SpatialModel] = None,
        seconds_per_day: int = 86400,
    ) -> None:
        self._datastore = datastore
        self._spatial = spatial
        self._seconds_per_day = seconds_per_day

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    def is_occupied(self, space_id: str, now: float, window_s: float = 300.0) -> bool:
        """Whether anything indicates presence in the recent window."""
        since = max(0.0, now - window_s)
        motion = self._datastore.query(
            sensor_type="motion_sensor",
            space_id=space_id,
            since=since,
            predicate=lambda obs: obs.payload.get("motion") == 1,
            limit=1,
        )
        if motion:
            return True
        for sensor_type in LOCATION_SENSOR_TYPES:
            if self._datastore.query(
                sensor_type=sensor_type, space_id=space_id, since=since, limit=1
            ):
                return True
        return False

    def occupant_count(
        self, space_id: str, now: float, window_s: float = 300.0
    ) -> int:
        """Distinct attributed subjects seen in the space recently."""
        since = max(0.0, now - window_s)
        subjects: Set[str] = set()
        for sensor_type in LOCATION_SENSOR_TYPES:
            for observation in self._datastore.query(
                sensor_type=sensor_type, space_id=space_id, since=since
            ):
                if observation.subject_id is not None:
                    subjects.add(observation.subject_id)
        return len(subjects)

    def occupancy_map(self, now: float, window_s: float = 300.0) -> Dict[str, int]:
        """space_id -> occupant count, over all spaces with sightings."""
        since = max(0.0, now - window_s)
        subjects_by_space: Dict[str, Set[str]] = {}
        for sensor_type in LOCATION_SENSOR_TYPES:
            for observation in self._datastore.query(
                sensor_type=sensor_type, since=since
            ):
                if observation.space_id is None or observation.subject_id is None:
                    continue
                subjects_by_space.setdefault(observation.space_id, set()).add(
                    observation.subject_id
                )
        return {space: len(subjects) for space, subjects in subjects_by_space.items()}

    # ------------------------------------------------------------------
    # Location and presence
    # ------------------------------------------------------------------
    def locate(
        self, subject_id: str, now: float, window_s: float = 900.0
    ) -> Optional[LocationEstimate]:
        """The subject's most recent location, if seen in the window."""
        since = max(0.0, now - window_s)
        best: Optional[Observation] = None
        for observation in self._datastore.query(subject_id=subject_id, since=since):
            if observation.sensor_type not in LOCATION_SENSOR_TYPES:
                continue
            if observation.space_id is None:
                continue
            if best is None or observation.timestamp > best.timestamp:
                best = observation
        if best is None:
            return None
        return LocationEstimate(
            subject_id=subject_id,
            space_id=best.space_id,  # type: ignore[arg-type]
            timestamp=best.timestamp,
            source_sensor_type=best.sensor_type,
            granularity=best.granularity,
        )

    def is_present(self, subject_id: str, now: float, window_s: float = 900.0) -> bool:
        return self.locate(subject_id, now, window_s) is not None

    def people_in(self, space_id: str, now: float, window_s: float = 900.0) -> List[str]:
        """Subjects whose latest location estimate is (in) ``space_id``."""
        since = max(0.0, now - window_s)
        latest: Dict[str, Observation] = {}
        for sensor_type in LOCATION_SENSOR_TYPES:
            for observation in self._datastore.query(sensor_type=sensor_type, since=since):
                subject = observation.subject_id
                if subject is None or observation.space_id is None:
                    continue
                current = latest.get(subject)
                if current is None or observation.timestamp > current.timestamp:
                    latest[subject] = observation
        result = []
        for subject, observation in latest.items():
            where = observation.space_id
            assert where is not None
            if where == space_id:
                result.append(subject)
            elif (
                self._spatial is not None
                and space_id in self._spatial
                and where in self._spatial
                and self._spatial.contains(space_id, where)
            ):
                result.append(subject)
        return sorted(result)

    # ------------------------------------------------------------------
    # Activity patterns (the Section II-A inference attack)
    # ------------------------------------------------------------------
    def daily_bounds(
        self, subject_id: str, day_index: int
    ) -> Optional[Tuple[float, float]]:
        """(arrival_hour, departure_hour) of one simulated day."""
        day_start = day_index * self._seconds_per_day
        day_end = day_start + self._seconds_per_day
        observations = self._datastore.query(
            subject_id=subject_id, since=day_start, until=day_end
        )
        sightings = [
            obs for obs in observations if obs.sensor_type in LOCATION_SENSOR_TYPES
        ]
        if not sightings:
            return None
        hours = [
            (obs.timestamp - day_start) / (self._seconds_per_day / 24.0)
            for obs in sightings
        ]
        return (min(hours), max(hours))

    def activity_pattern(self, subject_id: str) -> Optional[ActivityPattern]:
        """Mean arrival/departure across every observed day."""
        observations = self._datastore.query(subject_id=subject_id)
        if not observations:
            return None
        days = sorted(
            {
                int(obs.timestamp // self._seconds_per_day)
                for obs in observations
                if obs.sensor_type in LOCATION_SENSOR_TYPES
            }
        )
        arrivals: List[float] = []
        departures: List[float] = []
        for day in days:
            bounds = self.daily_bounds(subject_id, day)
            if bounds is None:
                continue
            arrivals.append(bounds[0])
            departures.append(bounds[1])
        if not arrivals:
            return None
        return ActivityPattern(
            subject_id=subject_id,
            days_observed=len(arrivals),
            mean_arrival_hour=sum(arrivals) / len(arrivals),
            mean_departure_hour=sum(departures) / len(departures),
        )

    def guess_role(self, subject_id: str) -> Optional[str]:
        """The paper's heuristic role inference.

        "Non-faculty staff arrive at 7 am and leave before 5 pm,
        graduate students generally leave the building late, and
        undergrads spend most of the time in classrooms."
        """
        pattern = self.activity_pattern(subject_id)
        if pattern is None:
            return None
        if pattern.mean_arrival_hour < 8.0 and pattern.mean_departure_hour <= 17.5:
            return "staff"
        if pattern.mean_departure_hour >= 19.0:
            return "grad-student"
        return "faculty"
