"""The request manager: the sharing path of TIPPERS.

Steps (9) and (10) of Figure 1: "If a service later requests TIPPERS
about Mary's location, the request will be processed according to the
settings communicated by Mary's IoTA to TIPPERS (e.g., the request
might be rejected, if Mary's IoTA requested to opt-out of location
sharing)."

Every query is turned into one or more
:class:`~repro.core.policy.base.DataRequest` objects, resolved by the
enforcement engine, and only then answered from the inference engine --
with results degraded to the granted granularity.
"""

from __future__ import annotations

import functools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.enforcement.mechanisms import coarsen_space
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, RequesterKind
from repro.errors import ServiceError, StorageError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.spatial.model import SpatialModel
from repro.tippers.inference import InferenceEngine, LocationEstimate
from repro.tippers.policy_manager import PolicyManager
from repro.tippers.social import SocialInference
from repro.users.profile import UserDirectory


@dataclass(frozen=True)
class QueryResponse:
    """The outcome of one service query."""

    allowed: bool
    value: object = None
    granularity: GranularityLevel = GranularityLevel.NONE
    reasons: Tuple[str, ...] = ()

    @staticmethod
    def denied(reasons: Tuple[str, ...]) -> "QueryResponse":
        return QueryResponse(allowed=False, reasons=reasons)


def _brownout_granularity(
    granularity: GranularityLevel, levels: int
) -> GranularityLevel:
    """``granularity`` degraded ``levels`` ranks down the lattice.

    The brownout floor is BUILDING-level presence: under overload the
    building serves *coarser* answers, never silently none, matching
    the paper's granularity element (precise room -> floor ->
    building).  Requests already at or below the floor pass through.
    """
    if levels <= 0 or granularity.rank <= GranularityLevel.BUILDING.rank:
        return granularity
    target = max(GranularityLevel.BUILDING.rank, granularity.rank - levels)
    for candidate in GranularityLevel:
        if candidate.rank == target:
            return candidate
    return granularity


_Q = TypeVar("_Q", bound=Callable)


def _instrumented_query(fn: _Q) -> _Q:
    """Count and time one public query method of the request manager.

    Counts are labelled by method and outcome (allowed/denied/error) so
    service-facing deny rates are readable straight off the registry.
    """

    @functools.wraps(fn)
    def wrapper(self: "RequestManager", *args: object, **kwargs: object) -> QueryResponse:
        start = time.perf_counter()
        try:
            response = fn(self, *args, **kwargs)
        except Exception:
            self.metrics.counter(
                "tippers_queries_total",
                {"method": fn.__name__, "outcome": "error"},
            ).inc()
            raise
        finally:
            self.metrics.histogram(
                "tippers_query_seconds", {"method": fn.__name__}
            ).observe(time.perf_counter() - start)
        self.metrics.counter(
            "tippers_queries_total",
            {
                "method": fn.__name__,
                "outcome": "allowed" if response.allowed else "denied",
            },
        ).inc()
        return response

    return wrapper  # type: ignore[return-value]


class RequestManager:
    """Service-facing query API, fully policy-checked."""

    def __init__(
        self,
        engine: EnforcementEngine,
        inference: InferenceEngine,
        directory: UserDirectory,
        spatial: SpatialModel,
        policy_manager: PolicyManager,
        social: Optional[SocialInference] = None,
        metrics: Optional[MetricsRegistry] = None,
        roaming_lookup: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        self._engine = engine
        self._inference = inference
        self._directory = directory
        self._spatial = spatial
        self._policy_manager = policy_manager
        self._social = social
        self.metrics = metrics if metrics is not None else get_registry()
        #: subject_id -> home building for federation visitors; ``None``
        #: (or a lookup returning None) means the subject is local.
        self._roaming_lookup = roaming_lookup

    def _roaming_notes(self, subject_id: Optional[str]) -> Tuple[str, ...]:
        """An audit marker when the subject is a roaming visitor.

        Decisions a visited shard makes about a roaming principal carry
        ``roaming:<home>`` in both the response reasons and the audit
        record, so a campus audit can always attribute a visited-shard
        decision back to the subject's home building.
        """
        if self._roaming_lookup is None or subject_id is None:
            return ()
        home = self._roaming_lookup(subject_id)
        if home is None:
            return ()
        self.metrics.counter(
            "tippers_roaming_decisions_total", {"method": "all"}
        ).inc()
        return ("roaming:%s" % home,)

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    def _degraded(
        self,
        method: str,
        exc: StorageError,
        now: float,
        subject_id: Optional[str] = None,
    ) -> QueryResponse:
        """A denied response for a query whose backing store faulted.

        Privacy-sensitive data is never released on a best-effort basis:
        if the datastore (or an inference over it) fails mid-query, the
        service gets a denial, not a partial answer.  The denial is
        audited through the engine so degraded operation never thins
        the audit trail.
        """
        self.metrics.counter(
            "tippers_degraded_total", {"method": method}
        ).inc()
        reasons = self._engine.audit_degraded_denial(
            method, exc, now, subject_id=subject_id
        )
        return QueryResponse.denied(reasons)

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def _request(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        category: DataCategory,
        subject_id: Optional[str],
        space_id: Optional[str],
        now: float,
        purpose: Purpose,
        granularity: GranularityLevel = GranularityLevel.PRECISE,
        sensor_type: Optional[str] = None,
    ) -> DataRequest:
        return DataRequest(
            requester_id=requester_id,
            requester_kind=requester_kind,
            phase=DecisionPhase.SHARING,
            category=category,
            subject_id=subject_id,
            space_id=space_id,
            timestamp=now,
            purpose=purpose,
            granularity=granularity,
            sensor_type=sensor_type,
        )

    # ------------------------------------------------------------------
    # Location queries (the paper's step 9/10 example)
    # ------------------------------------------------------------------
    @_instrumented_query
    def locate_user(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        subject_id: str,
        now: float,
        purpose: Purpose = Purpose.PROVIDING_SERVICE,
        granularity: GranularityLevel = GranularityLevel.PRECISE,
        brownout_level: int = 0,
        extra_notes: Tuple[str, ...] = (),
    ) -> QueryResponse:
        """Where is ``subject_id`` right now?

        The decision happens *before* data access; a denied request
        never touches the datastore.  When allowed at a coarser
        granularity, the location is coarsened before release.

        ``brownout_level`` > 0 marks an admission-control brownout: the
        requested granularity is degraded that many lattice ranks
        (floored at building-level presence) and the decision is audited
        with an explicit degradation marker, so browned-out answers stay
        distinguishable in the audit trail.

        ``extra_notes`` are appended to the decision notes verbatim --
        the federation router uses this to stamp the
        ``migrating:<from>:<to>`` marker onto every decision served for
        a mid-migration subject, so forwarded decisions stay
        distinguishable in both the response reasons and the audit
        trail.
        """
        if subject_id not in self._directory:
            raise ServiceError("unknown user %r" % subject_id)
        notes: Tuple[str, ...] = ()
        if brownout_level > 0:
            degraded = _brownout_granularity(granularity, brownout_level)
            notes = (
                "brownout degraded response (level %d): granularity %s -> %s"
                % (brownout_level, granularity.value, degraded.value),
            )
            granularity = degraded
            self.metrics.counter(
                "brownout_queries_total", {"method": "locate_user"}
            ).inc()
        notes += self._roaming_notes(subject_id)
        notes += tuple(extra_notes)
        try:
            estimate = self._inference.locate(subject_id, now)
        except StorageError as exc:
            return self._degraded("locate_user", exc, now, subject_id)
        request = self._request(
            requester_id,
            requester_kind,
            DataCategory.LOCATION,
            subject_id,
            estimate.space_id if estimate is not None else None,
            now,
            purpose,
            granularity,
        )
        decision = self._engine.decide(request, notes)
        if not decision.allowed:
            return QueryResponse.denied(decision.resolution.reasons)
        if estimate is None:
            return QueryResponse(
                allowed=True,
                value=None,
                granularity=decision.granularity,
                reasons=decision.resolution.reasons,
            )
        released_space = coarsen_space(
            estimate.space_id, decision.granularity, self._spatial
        )
        value = LocationEstimate(
            subject_id=subject_id,
            space_id=released_space if released_space is not None else "unknown",
            timestamp=estimate.timestamp,
            source_sensor_type=estimate.source_sensor_type,
            granularity=decision.granularity.value,
        )
        return QueryResponse(
            allowed=True,
            value=value,
            granularity=decision.granularity,
            reasons=decision.resolution.reasons,
        )

    # ------------------------------------------------------------------
    # Occupancy queries (Preference 1's target)
    # ------------------------------------------------------------------
    def office_owner(self, space_id: str) -> Optional[str]:
        """The user whose assigned office is ``space_id``, if any."""
        for user in self._directory:
            if user.office_id == space_id:
                return user.user_id
        return None

    @_instrumented_query
    def room_occupancy(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        space_id: str,
        now: float,
        purpose: Purpose = Purpose.PROVIDING_SERVICE,
        extra_notes: Tuple[str, ...] = (),
    ) -> QueryResponse:
        """Is ``space_id`` occupied?

        When the room is someone's assigned office, the occupancy status
        is *their* personal data: the decision is made with them as the
        subject, which is exactly what makes Preference 1 enforceable.
        """
        if space_id not in self._spatial:
            raise ServiceError("unknown space %r" % space_id)
        subject_id = self.office_owner(space_id)
        request = self._request(
            requester_id,
            requester_kind,
            DataCategory.OCCUPANCY,
            subject_id,
            space_id,
            now,
            purpose,
        )
        decision = self._engine.decide(
            request, self._roaming_notes(subject_id) + tuple(extra_notes)
        )
        if not decision.allowed:
            return QueryResponse.denied(decision.resolution.reasons)
        try:
            occupied = self._inference.is_occupied(space_id, now)
        except StorageError as exc:
            return self._degraded("room_occupancy", exc, now, subject_id)
        return QueryResponse(
            allowed=True,
            value=occupied,
            granularity=decision.granularity,
            reasons=decision.resolution.reasons,
        )

    @_instrumented_query
    def people_in_space(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        space_id: str,
        now: float,
        purpose: Purpose = Purpose.PROVIDING_SERVICE,
    ) -> QueryResponse:
        """Who is in ``space_id``?  Filtered per subject.

        Each person present is released only if a per-subject presence
        request is allowed; others are silently omitted (a denial for
        one person must not leak their presence).
        """
        if space_id not in self._spatial:
            raise ServiceError("unknown space %r" % space_id)
        try:
            present = self._inference.people_in(space_id, now)
        except StorageError as exc:
            return self._degraded("people_in_space", exc, now)
        released: List[str] = []
        reasons: Tuple[str, ...] = ()
        for subject_id in present:
            request = self._request(
                requester_id,
                requester_kind,
                DataCategory.PRESENCE,
                subject_id,
                space_id,
                now,
                purpose,
            )
            decision = self._engine.decide(request)
            if decision.allowed and decision.granularity in (
                GranularityLevel.PRECISE,
                GranularityLevel.COARSE,
            ):
                released.append(subject_id)
                reasons = decision.resolution.reasons
        return QueryResponse(
            allowed=True,
            value=released,
            granularity=GranularityLevel.PRECISE,
            reasons=reasons or ("no identifiable occupants released",),
        )

    @_instrumented_query
    def occupancy_heatmap(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        now: float,
        purpose: Purpose = Purpose.ENERGY_MANAGEMENT,
        k: int = 3,
        window_s: float = 900.0,
        epsilon: Optional[float] = None,
        rng: Optional["random.Random"] = None,
    ) -> QueryResponse:
        """Aggregate per-space counts with small groups suppressed.

        Requested at AGGREGATE granularity: an anonymous aggregate needs
        no per-subject consent, only a building policy authorizing
        occupancy data for the purpose.  Passing ``epsilon`` adds
        Laplace noise to the released counts (the "add noise"
        enforcement action of Section V-C); pass a seeded ``rng`` for
        reproducibility.
        """
        request = self._request(
            requester_id,
            requester_kind,
            DataCategory.OCCUPANCY,
            None,
            None,
            now,
            purpose,
            granularity=GranularityLevel.AGGREGATE,
        )
        decision = self._engine.decide(request)
        if not decision.allowed:
            return QueryResponse.denied(decision.resolution.reasons)
        try:
            counts = self._inference.occupancy_map(now, window_s)
        except StorageError as exc:
            return self._degraded("occupancy_heatmap", exc, now)
        suppressed: Dict[str, object] = {
            space: count for space, count in counts.items() if count >= k
        }
        reasons = decision.resolution.reasons
        if epsilon is not None:
            from repro.core.enforcement.mechanisms import noisy_counts

            suppressed = dict(
                noisy_counts({s: int(c) for s, c in suppressed.items()}, epsilon, rng)
            )
            reasons = reasons + ("laplace noise applied (epsilon=%g)" % epsilon,)
        return QueryResponse(
            allowed=True,
            value=suppressed,
            granularity=GranularityLevel.AGGREGATE,
            reasons=reasons,
        )

    # ------------------------------------------------------------------
    # Social ties (the "with whom they spend time" inference)
    # ------------------------------------------------------------------
    @_instrumented_query
    def frequent_contacts(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        subject_id: str,
        now: float,
        purpose: Purpose = Purpose.PROVIDING_SERVICE,
    ) -> QueryResponse:
        """Who does ``subject_id`` spend time with?

        A tie is *joint* personal data: it is released only when BOTH
        members' social-ties sharing requests are allowed, so one
        party's opt-out protects the pair.
        """
        if self._social is None:
            raise ServiceError("social inference is not enabled")
        if subject_id not in self._directory:
            raise ServiceError("unknown user %r" % subject_id)
        own_request = self._request(
            requester_id,
            requester_kind,
            DataCategory.SOCIAL_TIES,
            subject_id,
            None,
            now,
            purpose,
        )
        own_decision = self._engine.decide(own_request)
        if not own_decision.allowed:
            return QueryResponse.denied(own_decision.resolution.reasons)
        released = []
        try:
            ties = self._social.ties_of(subject_id)
        except StorageError as exc:
            return self._degraded("frequent_contacts", exc, now, subject_id)
        for tie in ties:
            other = tie.user_b if tie.user_a == subject_id else tie.user_a
            other_request = self._request(
                requester_id,
                requester_kind,
                DataCategory.SOCIAL_TIES,
                other,
                None,
                now,
                purpose,
            )
            if self._engine.decide(other_request).allowed:
                released.append({"contact": other, "encounters": tie.encounters})
        return QueryResponse(
            allowed=True,
            value=released,
            granularity=own_decision.granularity,
            reasons=own_decision.resolution.reasons,
        )

    # ------------------------------------------------------------------
    # Event details (Policy 4)
    # ------------------------------------------------------------------
    @_instrumented_query
    def event_details(
        self,
        requester_id: str,
        requester_kind: RequesterKind,
        event_id: str,
        for_user: str,
        now: float,
        details: Optional[Dict[str, object]] = None,
    ) -> QueryResponse:
        """Event details for ``for_user``: registered AND nearby only.

        Policy 4: "details regarding an event are disclosed to
        registered participants only when they are nearby".  Nearby
        means the user's current location overlaps or neighbors the
        event space.
        """
        roster = self._policy_manager.event_roster(event_id)
        if for_user not in roster:
            return QueryResponse.denied(("user not registered for event",))
        event_space = self._policy_manager.event_space(event_id)
        estimate = self._inference.locate(for_user, now)
        if estimate is None:
            return QueryResponse.denied(("user location unknown; not nearby",))
        nearby = (
            estimate.space_id == event_space
            or self._spatial.overlap(event_space, estimate.space_id)
            or self._spatial.neighboring(event_space, estimate.space_id)
            or self._same_floor(event_space, estimate.space_id)
        )
        if not nearby:
            return QueryResponse.denied(("user not nearby the event space",))
        request = self._request(
            requester_id,
            requester_kind,
            DataCategory.MEETING_DETAILS,
            for_user,
            event_space,
            now,
            Purpose.PROVIDING_SERVICE,
        )
        decision = self._engine.decide(request)
        if not decision.allowed:
            return QueryResponse.denied(decision.resolution.reasons)
        return QueryResponse(
            allowed=True,
            value=details or {"event_id": event_id, "space_id": event_space},
            granularity=decision.granularity,
            reasons=decision.resolution.reasons,
        )

    def _same_floor(self, a_id: str, b_id: str) -> bool:
        if a_id not in self._spatial or b_id not in self._spatial:
            return False
        from repro.spatial.model import SpaceType

        floor_a = self._spatial.ancestor_at_level(a_id, SpaceType.FLOOR)
        floor_b = self._spatial.ancestor_at_level(b_id, SpaceType.FLOOR)
        return (
            floor_a is not None
            and floor_b is not None
            and floor_a.space_id == floor_b.space_id
        )
