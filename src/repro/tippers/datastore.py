"""The building's observation store.

An embedded time-series store: observations are appended per sensor
type (streams arrive in timestamp order from the simulation clock) and
queried by type, space, subject, and time window.  Retention sweeping
implements the ``retention`` element of building policies: observations
older than their stream's retention are purged.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import StorageError
from repro.sensors.base import Observation

#: A storage-level interception point: called with the write operation
#: name (``insert``/``forget``) and a detail string; returning a truthy
#: value fails the write with :class:`~repro.errors.StorageError`.
WritePlane = Callable[[str, str], bool]


class Datastore:
    """In-memory observation streams with windowed queries."""

    def __init__(self) -> None:
        self._streams: Dict[str, List[Observation]] = defaultdict(list)
        self._by_subject: Dict[str, List[Observation]] = defaultdict(list)
        self.total_inserted = 0
        self.total_purged = 0
        self.total_write_failures = 0
        self._fault_planes: List[WritePlane] = []

    # ------------------------------------------------------------------
    # Fault planes
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: WritePlane) -> None:
        """Attach a write-failure plane (see :data:`WritePlane`)."""
        self._fault_planes.append(plane)

    def remove_fault_plane(self, plane: WritePlane) -> None:
        if plane in self._fault_planes:
            self._fault_planes.remove(plane)

    def _guard_write(self, op: str, detail: str) -> None:
        """Fail the write if any installed plane says so.

        The failure happens *before* any mutation, so a faulted write
        leaves the store exactly as it was (tests rely on this for the
        mid-DSAR consistency check).
        """
        for plane in self._fault_planes:
            if plane(op, detail):
                self.total_write_failures += 1
                raise StorageError(
                    "injected write failure: %s %r" % (op, detail)
                )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(self, observation: Observation) -> None:
        """Append an observation to its sensor-type stream.

        Streams tolerate slightly out-of-order arrivals by inserting at
        the timestamp-sorted position.
        """
        self._guard_write("insert", observation.sensor_type)
        self._apply_insert(observation)

    def _apply_insert(self, observation: Observation) -> None:
        """The mutation half of :meth:`insert` (no write guard).

        Durable backends call the guard, then write-ahead-log the
        observation, then apply; recovery replay applies directly.
        """
        stream = self._streams[observation.sensor_type]
        if stream and stream[-1].timestamp > observation.timestamp:
            index = bisect.bisect_right(
                [obs.timestamp for obs in stream], observation.timestamp
            )
            stream.insert(index, observation)
        else:
            stream.append(observation)
        if observation.subject_id is not None:
            self._by_subject[observation.subject_id].append(observation)
        self.total_inserted += 1

    def insert_many(self, observations: Iterable[Observation]) -> int:
        count = 0
        for observation in observations:
            self.insert(observation)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def query(
        self,
        sensor_type: Optional[str] = None,
        space_id: Optional[str] = None,
        subject_id: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        limit: Optional[int] = None,
        predicate: Optional[Callable[[Observation], bool]] = None,
    ) -> List[Observation]:
        """Observations matching all provided filters, oldest first.

        ``since`` is inclusive, ``until`` exclusive.  ``limit`` keeps
        the *newest* matches (the common "last N readings" query).
        """
        if since is not None and until is not None and since >= until:
            raise StorageError("empty window: since %r >= until %r" % (since, until))
        if subject_id is not None:
            candidates: Iterable[Observation] = self._by_subject.get(subject_id, [])
        elif sensor_type is not None:
            candidates = self._streams.get(sensor_type, [])
        else:
            candidates = (
                obs for stream in self._streams.values() for obs in stream
            )
        matches = []
        for observation in candidates:
            if sensor_type is not None and observation.sensor_type != sensor_type:
                continue
            if space_id is not None and observation.space_id != space_id:
                continue
            if since is not None and observation.timestamp < since:
                continue
            if until is not None and observation.timestamp >= until:
                continue
            if predicate is not None and not predicate(observation):
                continue
            matches.append(observation)
        matches.sort(key=lambda obs: (obs.timestamp, obs.observation_id))
        if limit is not None and len(matches) > limit:
            matches = matches[-limit:]
        return matches

    def latest(
        self,
        sensor_type: Optional[str] = None,
        space_id: Optional[str] = None,
        subject_id: Optional[str] = None,
    ) -> Optional[Observation]:
        """The newest observation matching the filters, if any."""
        matches = self.query(
            sensor_type=sensor_type,
            space_id=space_id,
            subject_id=subject_id,
            limit=1,
        )
        return matches[-1] if matches else None

    def stream_names(self) -> List[str]:
        return sorted(name for name, stream in self._streams.items() if stream)

    def count(self, sensor_type: Optional[str] = None) -> int:
        if sensor_type is not None:
            return len(self._streams.get(sensor_type, []))
        return sum(len(stream) for stream in self._streams.values())

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def sweep(self, now: float, retention_by_type: Dict[str, float]) -> int:
        """Purge observations past their stream's retention.

        ``retention_by_type`` maps sensor type to retention seconds;
        streams without an entry are kept indefinitely.  Returns the
        number of purged observations.
        """
        purged = 0
        for sensor_type, retention in retention_by_type.items():
            if retention < 0:
                raise StorageError("negative retention for %r" % sensor_type)
            stream = self._streams.get(sensor_type)
            if not stream:
                continue
            cutoff = now - retention
            index = bisect.bisect_left([obs.timestamp for obs in stream], cutoff)
            if index == 0:
                continue
            doomed = stream[:index]
            self._streams[sensor_type] = stream[index:]
            purged += len(doomed)
            doomed_ids = {obs.observation_id for obs in doomed}
            for subject_id in {o.subject_id for o in doomed if o.subject_id}:
                self._by_subject[subject_id] = [
                    obs
                    for obs in self._by_subject[subject_id]
                    if obs.observation_id not in doomed_ids
                ]
        self.total_purged += purged
        return purged

    def forget_subject(self, subject_id: str) -> int:
        """Delete every observation attributed to ``subject_id``.

        The building-side primitive behind a user's full opt-out
        (a right-to-erasure analogue).
        """
        self._guard_write("forget", subject_id)
        return self._apply_forget(subject_id)

    def _apply_forget(self, subject_id: str) -> int:
        """The mutation half of :meth:`forget_subject` (no write guard)."""
        doomed = self._by_subject.pop(subject_id, [])
        doomed_ids = {obs.observation_id for obs in doomed}
        if doomed_ids:
            for sensor_type, stream in self._streams.items():
                self._streams[sensor_type] = [
                    obs for obs in stream if obs.observation_id not in doomed_ids
                ]
        self.total_purged += len(doomed)
        return len(doomed)
