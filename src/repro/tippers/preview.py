"""Effect preview: how much of a user's preferences will be honored.

Section III-B: preferences "might be partially or completely met
depending on other policies and user preferences existing in the same
space".  A conflict list says *that* there is tension; the preview says
*what will actually happen*: for each data category and lifecycle
phase, the resolved outcome of a hypothetical request about this user.

The IoTA displays this as the honest answer to "what did my opt-out
actually buy me?" -- e.g. "location capture continues at precise
granularity under the mandatory emergency policy, but sharing with
services is blocked".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.enforcement.engine import DEFAULT_SENSOR_CATEGORY, EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase, Effect, RequesterKind
from repro.errors import PolicyError


def _sensor_types_for(category: DataCategory) -> Tuple[Optional[str], ...]:
    """Sensor types whose observations yield ``category``, plus ``None``
    (the sensor-less probe services use)."""
    producers = tuple(
        sensor_type
        for sensor_type, produced in sorted(DEFAULT_SENSOR_CATEGORY.items())
        if produced is category
    )
    return producers + (None,)

#: The purpose a preview probes per phase: capture/storage requests are
#: building-side (the dominant capture purposes), processing/sharing
#: requests are service-side.
_PHASE_PROBES: Dict[DecisionPhase, Tuple[RequesterKind, str, Tuple[Purpose, ...]]] = {
    DecisionPhase.CAPTURE: (
        RequesterKind.BUILDING,
        "building",
        (Purpose.EMERGENCY_RESPONSE, Purpose.SECURITY, Purpose.COMFORT,
         Purpose.ENERGY_MANAGEMENT, Purpose.ACCESS_CONTROL),
    ),
    DecisionPhase.STORAGE: (
        RequesterKind.BUILDING,
        "building",
        (Purpose.EMERGENCY_RESPONSE, Purpose.SECURITY, Purpose.COMFORT,
         Purpose.ENERGY_MANAGEMENT, Purpose.ACCESS_CONTROL),
    ),
    DecisionPhase.PROCESSING: (
        RequesterKind.BUILDING_SERVICE,
        "service",
        (Purpose.PROVIDING_SERVICE,),
    ),
    DecisionPhase.SHARING: (
        RequesterKind.BUILDING_SERVICE,
        "service",
        (Purpose.PROVIDING_SERVICE,),
    ),
}


@dataclass(frozen=True)
class EffectEntry:
    """The resolved outcome for one (category, phase) cell."""

    category: DataCategory
    phase: DecisionPhase
    effect: Effect
    granularity: GranularityLevel
    overridden: bool
    """True when the outcome overrides the user's stated preference
    (a mandatory policy prevailed)."""

    def describe(self) -> str:
        if self.effect is Effect.DENY:
            return "%s/%s: blocked" % (self.category.value, self.phase.value)
        suffix = " (mandatory policy overrides your preference)" if self.overridden else ""
        return "%s/%s: allowed at %s%s" % (
            self.category.value,
            self.phase.value,
            self.granularity.value,
            suffix,
        )


@dataclass(frozen=True)
class EffectPreview:
    """The full per-category, per-phase outcome matrix for one user."""

    user_id: str
    entries: Tuple[EffectEntry, ...]

    def entry(self, category: DataCategory, phase: DecisionPhase) -> EffectEntry:
        for candidate in self.entries:
            if candidate.category is category and candidate.phase is phase:
                return candidate
        raise KeyError((category, phase))

    def overridden_entries(self) -> List[EffectEntry]:
        return [e for e in self.entries if e.overridden]

    def blocked_entries(self) -> List[EffectEntry]:
        return [e for e in self.entries if e.effect is Effect.DENY]

    def summary_lines(self) -> List[str]:
        return [entry.describe() for entry in self.entries]


def preview_effects(
    engine: EnforcementEngine,
    user_id: str,
    space_id: Optional[str],
    now: float,
    categories: Optional[Tuple[DataCategory, ...]] = None,
) -> EffectPreview:
    """Probe the engine with hypothetical requests about ``user_id``.

    Probes never touch data and are not audited (they run against a
    scratch audit) -- they answer "what would happen", not "what
    happened".
    """
    if not user_id:
        raise PolicyError("user_id must be non-empty")
    probe_categories = categories or (
        DataCategory.LOCATION,
        DataCategory.PRESENCE,
        DataCategory.OCCUPANCY,
        DataCategory.MEETING_DETAILS,
        DataCategory.SOCIAL_TIES,
    )
    # Run probes against a scratch engine sharing the same rules and
    # context so the real audit log stays clean.
    scratch = EnforcementEngine(
        store=engine.store,
        context=engine.context,
        strategy=engine.strategy,
        ontology=engine.ontology,
    )
    entries: List[EffectEntry] = []
    for category in probe_categories:
        for phase, (kind, requester, purposes) in _PHASE_PROBES.items():
            building_side = phase in (DecisionPhase.CAPTURE, DecisionPhase.STORAGE)
            sensor_types = _sensor_types_for(category) if building_side else (None,)
            best: Optional[EffectEntry] = None
            for purpose in purposes:
                for sensor_type in sensor_types:
                    request = DataRequest(
                        requester_id=requester,
                        requester_kind=kind,
                        phase=phase,
                        category=category,
                        subject_id=user_id,
                        space_id=space_id,
                        timestamp=now,
                        purpose=purpose,
                        granularity=GranularityLevel.PRECISE,
                        sensor_type=sensor_type,
                    )
                    decision = scratch.decide(request)
                    entry = EffectEntry(
                        category=category,
                        phase=phase,
                        effect=decision.resolution.effect,
                        granularity=decision.granularity,
                        overridden=decision.resolution.notify_user
                        and decision.resolution.effect is Effect.ALLOW,
                    )
                    # Keep the most revealing outcome: the preview
                    # reports the worst case for the user.
                    if best is None or entry.granularity.rank > best.granularity.rank:
                        best = entry
            assert best is not None
            entries.append(best)
    return EffectPreview(user_id=user_id, entries=tuple(entries))
