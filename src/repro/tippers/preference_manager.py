"""The user preference manager.

Step (8) of Figure 1: the IoTA communicates its user's privacy settings
to TIPPERS.  The manager validates submissions, stores them in the rule
store the enforcement engine reads, detects conflicts with building
policies at submission time (so the user can be told immediately), and
translates setting selections into preferences.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import ServicePermission, UserPreference
from repro.core.reasoner.conflicts import Conflict, detect_conflicts
from repro.core.reasoner.index import RuleStore
from repro.errors import PolicyError
from repro.tippers.policy_manager import PolicyManager
from repro.users.profile import UserDirectory


class PreferenceManager:
    """Stores per-user preferences and reports conflicts."""

    def __init__(
        self,
        store: RuleStore,
        policy_manager: PolicyManager,
        directory: UserDirectory,
        context: Optional[EvaluationContext] = None,
        on_submit: Optional[Callable[[UserPreference], object]] = None,
        on_withdraw_all: Optional[Callable[[str], object]] = None,
    ) -> None:
        self._store = store
        self._policy_manager = policy_manager
        self._directory = directory
        self._context = context if context is not None else EvaluationContext()
        self._by_user: Dict[str, Dict[str, UserPreference]] = defaultdict(dict)
        self._selections: Dict[str, Dict[str, str]] = {}
        # Listener lists, seeded with the constructor's durability hooks
        # (see repro.storage): called after validation but before the
        # store mutation -- write-ahead ordering, same as the durable
        # datastore.  The compiled enforcement engine registers
        # invalidation listeners here too (hook order is irrelevant to
        # it: its per-decide version check is authoritative, the
        # listener only reclaims memory eagerly).
        self._submit_listeners: List[Callable[[UserPreference], object]] = (
            [] if on_submit is None else [on_submit]
        )
        self._withdraw_listeners: List[Callable[[str], object]] = (
            [] if on_withdraw_all is None else [on_withdraw_all]
        )

    def add_submit_listener(
        self, listener: Callable[[UserPreference], object]
    ) -> None:
        """Call ``listener`` with every preference before it is stored."""
        self._submit_listeners.append(listener)

    def add_withdraw_listener(
        self, listener: Callable[[str], object]
    ) -> None:
        """Call ``listener`` with the user id of every withdraw-all."""
        self._withdraw_listeners.append(listener)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, preference: UserPreference) -> List[Conflict]:
        """Store ``preference`` and return conflicts with building policies.

        Unknown users are rejected; re-submitting a preference id
        replaces the previous version.  The preference is stored even
        when conflicts exist -- resolution happens per request -- but
        the caller (the IoTA) receives the conflicts so it can inform
        the user (Section III-B).
        """
        if preference.user_id not in self._directory:
            raise PolicyError("unknown user %r" % preference.user_id)
        for listener in self._submit_listeners:
            listener(preference)
        self._by_user[preference.user_id][preference.preference_id] = preference
        self._store.add_preference(preference)
        return detect_conflicts(
            self._policy_manager.policies(), [preference], self._context
        )

    def submit_permission(self, permission: ServicePermission) -> List[Conflict]:
        """Store an app-style service permission (Preferences 3 and 4)."""
        return self.submit(permission.to_preference())

    def withdraw(self, user_id: str, preference_id: str) -> None:
        user_prefs = self._by_user.get(user_id, {})
        if preference_id not in user_prefs:
            raise PolicyError(
                "user %r has no preference %r" % (user_id, preference_id)
            )
        del user_prefs[preference_id]
        # The log has no single-withdrawal record; mirror the store
        # rebuild below as withdraw-all + re-submit of what remains.
        for listener in self._withdraw_listeners:
            listener(user_id)
        for preference in user_prefs.values():
            for listener in self._submit_listeners:
                listener(preference)
        # The store indexes by preference id; rebuild the user's entry.
        self._store.remove_preferences_of(user_id)
        for preference in user_prefs.values():
            self._store.add_preference(preference)

    def withdraw_all(self, user_id: str) -> int:
        for listener in self._withdraw_listeners:
            listener(user_id)
        count = len(self._by_user.pop(user_id, {}))
        self._store.remove_preferences_of(user_id)
        self._selections.pop(user_id, None)
        return count

    # ------------------------------------------------------------------
    # Settings selections (Figure 4 -> preferences)
    # ------------------------------------------------------------------
    def apply_selection(
        self, user_id: str, selection: Dict[str, str]
    ) -> List[Conflict]:
        """Apply a settings-space selection for ``user_id``.

        Returns the union of conflicts produced by the generated
        preferences.
        """
        space = self._policy_manager.settings_space
        preferences = space.selection_to_preferences(user_id, selection)
        conflicts: List[Conflict] = []
        for preference in preferences:
            conflicts.extend(self.submit(preference))
        self._selections[user_id] = dict(selection)
        return conflicts

    def selection_of(self, user_id: str) -> Dict[str, str]:
        return dict(self._selections.get(user_id, {}))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def preferences_of(self, user_id: str) -> List[UserPreference]:
        return sorted(
            self._by_user.get(user_id, {}).values(), key=lambda p: p.preference_id
        )

    def users_with_preferences(self) -> List[str]:
        return sorted(uid for uid, prefs in self._by_user.items() if prefs)

    def count(self) -> int:
        return sum(len(prefs) for prefs in self._by_user.values())

    def conflicts_of(self, user_id: str) -> List[Conflict]:
        """Current conflicts between the user and the building."""
        return detect_conflicts(
            self._policy_manager.policies(),
            self.preferences_of(user_id),
            self._context,
        )
