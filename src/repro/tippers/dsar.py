"""Data-subject access and erasure.

The paper's framework gives inhabitants visibility and control going
*forward* (notifications, settings).  A credible deployment also needs
the retrospective half: "what does the building hold about me right
now, and make it stop".  This module implements both primitives on top
of the datastore, audit log, and preference manager:

- :func:`subject_access_report` -- everything TIPPERS associates with
  a user: stored observations (by stream), the enforcement decisions
  taken about them, their active preferences and current conflicts,
  and the building policies whose scope can cover them.
- :func:`erase_subject` -- delete every stored observation attributed
  to the user, withdraw their preferences (optionally), and record the
  erasure in the audit log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.enforcement.audit import AuditRecord
from repro.core.language.vocabulary import GranularityLevel
from repro.core.policy.base import DecisionPhase, Effect
from repro.errors import PolicyError
from repro.tippers.bms import TIPPERS


@dataclass(frozen=True)
class SubjectAccessReport:
    """Everything the building holds about one person."""

    user_id: str
    generated_at: float
    observations_by_stream: Dict[str, int]
    earliest_observation: Optional[float]
    latest_observation: Optional[float]
    decisions_total: int
    decisions_denied: int
    decisions_overridden: int
    preferences: Tuple[str, ...]
    conflicts: Tuple[str, ...]
    covering_policies: Tuple[str, ...]

    @property
    def observations_total(self) -> int:
        return sum(self.observations_by_stream.values())

    def summary_lines(self) -> List[str]:
        """Human-readable rendering for the IoTA to display."""
        lines = [
            "Subject access report for %s (t=%.0f)" % (self.user_id, self.generated_at),
            "stored observations: %d" % self.observations_total,
        ]
        for stream, count in sorted(self.observations_by_stream.items()):
            lines.append("  - %s: %d" % (stream, count))
        if self.earliest_observation is not None:
            lines.append(
                "observation window: %.0f .. %.0f"
                % (self.earliest_observation, self.latest_observation)
            )
        lines.append(
            "enforcement decisions about you: %d (%d denied, %d overrode your preference)"
            % (self.decisions_total, self.decisions_denied, self.decisions_overridden)
        )
        lines.append("active preferences: %d" % len(self.preferences))
        lines.append("current conflicts with building policy: %d" % len(self.conflicts))
        lines.append(
            "building policies that can cover your data: %s"
            % (", ".join(self.covering_policies) or "none")
        )
        return lines


@dataclass(frozen=True)
class ErasureReceipt:
    """Proof of an erasure request's effect."""

    user_id: str
    erased_observations: int
    withdrawn_preferences: int
    performed_at: float
    storage_compacted: bool = False


def subject_access_report(tippers: TIPPERS, user_id: str, now: float) -> SubjectAccessReport:
    """Compile the access report for ``user_id``."""
    if user_id not in tippers.directory:
        raise PolicyError("unknown user %r" % user_id)
    observations = tippers.datastore.query(subject_id=user_id)
    by_stream: Dict[str, int] = {}
    for observation in observations:
        by_stream[observation.sensor_type] = by_stream.get(observation.sensor_type, 0) + 1

    decisions = tippers.audit.records(subject_id=user_id)
    denied = sum(1 for r in decisions if r.effect is Effect.DENY)
    overridden = sum(1 for r in decisions if r.notify_user and r.effect is Effect.ALLOW)

    preferences = tuple(
        p.preference_id for p in tippers.preference_manager.preferences_of(user_id)
    )
    conflicts = tuple(
        c.describe() for c in tippers.preference_manager.conflicts_of(user_id)
    )
    covering = tuple(
        p.policy_id
        for p in tippers.policy_manager.policies()
        if p.effect is Effect.ALLOW and p.collects_personal_data
    )
    return SubjectAccessReport(
        user_id=user_id,
        generated_at=now,
        observations_by_stream=by_stream,
        earliest_observation=observations[0].timestamp if observations else None,
        latest_observation=observations[-1].timestamp if observations else None,
        decisions_total=len(decisions),
        decisions_denied=denied,
        decisions_overridden=overridden,
        preferences=preferences,
        conflicts=conflicts,
        covering_policies=covering,
    )


def erase_subject(
    tippers: TIPPERS,
    user_id: str,
    now: float,
    withdraw_preferences: bool = False,
    compact_storage: bool = False,
) -> ErasureReceipt:
    """Erase the user's stored observations (and optionally preferences).

    The erasure itself lands in the audit log as an allowed
    storage-phase decision with an explanatory reason, so the trail of
    *that the data existed and was erased* survives, while the data
    does not.

    On a storage-backed TIPPERS the erase record is write-ahead-logged,
    so recovery replays it and never resurrects the erased data.  With
    ``compact_storage`` the storage engine is compacted immediately
    after, which *physically* removes the erased observations from
    disk instead of leaving them in WAL segments awaiting the next
    compaction.
    """
    if user_id not in tippers.directory:
        raise PolicyError("unknown user %r" % user_id)
    erased = tippers.datastore.forget_subject(user_id)
    withdrawn = 0
    if withdraw_preferences:
        withdrawn = tippers.preference_manager.withdraw_all(user_id)
    tippers.audit.append(
        AuditRecord(
            timestamp=now,
            requester_id=user_id,
            phase=DecisionPhase.STORAGE,
            category="erasure",
            subject_id=user_id,
            space_id=None,
            effect=Effect.ALLOW,
            granularity=GranularityLevel.NONE,
            reasons=(
                "subject erasure: %d observations deleted" % erased,
            ),
            notify_user=False,
        )
    )
    compacted = False
    if compact_storage and tippers.storage is not None:
        tippers.storage.compact(
            retention_by_type=tippers.policy_manager.retention_by_sensor_type(),
            now=now,
        )
        compacted = True
    return ErasureReceipt(
        user_id=user_id,
        erased_observations=erased,
        withdrawn_preferences=withdrawn,
        performed_at=now,
        storage_compacted=compacted,
    )
