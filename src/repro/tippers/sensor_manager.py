"""The sensor manager: capture path of TIPPERS.

Owns the building's sensor subsystems, ticks them against the simulated
environment, attributes observations to people (resolving device MACs
through the user directory), runs capture-phase enforcement, and hands
surviving observations to the datastore (storage-phase enforcement
included).  This is steps (2) and (3) of Figure 1.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.enforcement.engine import EnforcementEngine
from repro.core.policy.base import DecisionPhase
from repro.errors import SensorError, StorageError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sensors.base import Observation, Sensor
from repro.sensors.drivers import create_sensor
from repro.sensors.environment import EnvironmentView
from repro.sensors.subsystem import SensorSubsystem
from repro.tippers.datastore import Datastore
from repro.users.profile import UserDirectory


@dataclass
class CaptureStats:
    """Counters of one or many capture ticks."""

    sampled: int = 0
    dropped_capture: int = 0
    dropped_storage: int = 0
    stored: int = 0
    degraded: int = 0
    write_failures: int = 0

    def merge(self, other: "CaptureStats") -> None:
        self.sampled += other.sampled
        self.dropped_capture += other.dropped_capture
        self.dropped_storage += other.dropped_storage
        self.stored += other.stored
        self.degraded += other.degraded
        self.write_failures += other.write_failures


@dataclass
class SensorHealth:
    """The supervisor's view of one sensor."""

    sensor_id: str
    consecutive_misses: int = 0
    quarantined: bool = False
    quarantines: int = 0
    probes: int = 0
    readmissions: int = 0


class SensorHealthSupervisor:
    """Heartbeat-miss detection and quarantine for misbehaving sensors.

    A sensor that fails to *answer* ``miss_threshold`` consecutive
    sampling passes is quarantined: the capture gate stops sampling it,
    so a stalled source sheds itself instead of clogging every tick.
    Missing a heartbeat means the sensor stalled mid-sample (the
    subsystem's ``stalled_last_pass``), never that it answered with
    zero observations -- an empty room is a healthy reading.

    While quarantined, each pass runs a seeded re-admission probe: with
    probability ``probe_rate`` the sensor is sampled again.  A probed
    sensor that answers is fully re-admitted; one that stalls again is
    re-quarantined on the very next miss (its miss count restarts one
    short of the threshold).  All draws come from the supervisor's own
    seeded RNG, so two same-seed runs quarantine and re-admit the same
    sensors at the same ticks.
    """

    def __init__(
        self,
        miss_threshold: int = 3,
        probe_rate: float = 0.25,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if miss_threshold < 1:
            raise SensorError("miss_threshold must be >= 1")
        if not 0.0 < probe_rate <= 1.0:
            raise SensorError("probe_rate must lie in (0, 1]")
        self.miss_threshold = miss_threshold
        self.probe_rate = probe_rate
        self.seed = seed
        self._rng = random.Random(seed)
        self._health: Dict[str, SensorHealth] = {}
        self._probed: Dict[str, bool] = {}
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_quarantines = self.metrics.counter("quarantine_events_total")
        self._m_probes = self.metrics.counter("quarantine_probes_total")
        self._m_readmissions = self.metrics.counter(
            "quarantine_readmissions_total"
        )
        self._m_skipped = self.metrics.counter(
            "quarantine_skipped_samples_total"
        )
        self._m_active = self.metrics.gauge("quarantine_active")

    def health(self, sensor_id: str) -> SensorHealth:
        record = self._health.get(sensor_id)
        if record is None:
            record = self._health[sensor_id] = SensorHealth(sensor_id)
        return record

    def quarantined(self) -> List[str]:
        """Currently quarantined sensor ids, sorted."""
        return sorted(
            sensor_id
            for sensor_id, record in self._health.items()
            if record.quarantined
        )

    def should_sample(self, sensor: Sensor) -> bool:
        """The capture gate: sample, or hold in quarantine this pass."""
        record = self.health(sensor.sensor_id)
        if not record.quarantined:
            return True
        record.probes += 1
        self._m_probes.inc()
        if self._rng.random() < self.probe_rate:
            # Probe: sample once.  Whether it stalls again decides
            # re-admission in observe_pass.
            self._probed[sensor.sensor_id] = True
            return True
        self._m_skipped.inc()
        return False

    def observe_pass(self, subsystem: SensorSubsystem) -> None:
        """Digest one sampling pass of ``subsystem`` into health state."""
        stalled = subsystem.stalled_last_pass
        for sensor in subsystem:
            record = self.health(sensor.sensor_id)
            probed = self._probed.pop(sensor.sensor_id, False)
            if record.quarantined and not probed:
                continue  # held out this pass; nothing observed
            if sensor.sensor_id in stalled:
                if probed:
                    # A failed probe: stay quarantined, one miss from
                    # the threshold so recovery needs a clean answer.
                    record.consecutive_misses = self.miss_threshold
                    continue
                record.consecutive_misses += 1
                if record.consecutive_misses >= self.miss_threshold:
                    record.quarantined = True
                    record.quarantines += 1
                    self._m_quarantines.inc()
                    self.metrics.counter(
                        "quarantine_events_by_sensor_total",
                        {"sensor": sensor.sensor_id},
                    ).inc()
            else:
                if record.quarantined:
                    record.quarantined = False
                    record.readmissions += 1
                    self._m_readmissions.inc()
                record.consecutive_misses = 0
        self._m_active.set(len(self.quarantined()))


class SensorManager:
    """Registers sensors, ticks them, and enforces the capture path."""

    def __init__(
        self,
        engine: EnforcementEngine,
        datastore: Datastore,
        directory: Optional[UserDirectory] = None,
        enforce_capture: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        supervisor: Optional[SensorHealthSupervisor] = None,
    ) -> None:
        self._engine = engine
        self._datastore = datastore
        self._directory = directory
        self._subsystems: Dict[str, SensorSubsystem] = {}
        self.enforce_capture = enforce_capture
        self.supervisor = supervisor
        self.stats = CaptureStats()
        self.metrics = metrics if metrics is not None else get_registry()
        self._m_sampled = self.metrics.counter(
            "capture_observations_total", {"stage": "sampled"}
        )
        self._m_stored = self.metrics.counter(
            "capture_observations_total", {"stage": "stored"}
        )
        self._m_dropped_capture = self.metrics.counter(
            "capture_dropped_total", {"phase": "capture"}
        )
        self._m_dropped_storage = self.metrics.counter(
            "capture_dropped_total", {"phase": "storage"}
        )
        self._m_degraded = self.metrics.counter("capture_degraded_total")
        self._m_write_failures = self.metrics.counter("capture_write_failures_total")
        self._m_ticks = self.metrics.counter("capture_ticks_total")
        self._m_tick_seconds = self.metrics.histogram("capture_tick_seconds")

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        sensor_type: str,
        sensor_id: str,
        space_id: str,
        settings: Optional[Dict[str, object]] = None,
    ) -> Sensor:
        """Create and register a sensor of ``sensor_type``."""
        try:
            sensor = create_sensor(sensor_type, sensor_id, space_id, settings)
        except KeyError:
            raise SensorError("unknown sensor type %r" % sensor_type) from None
        return self.register(sensor)

    def register(self, sensor: Sensor) -> Sensor:
        subsystem = self._subsystems.setdefault(
            sensor.subsystem, SensorSubsystem(sensor.subsystem)
        )
        subsystem.add(sensor)
        return sensor

    def subsystem(self, name: str) -> SensorSubsystem:
        try:
            return self._subsystems[name]
        except KeyError:
            raise SensorError("no subsystem %r" % name) from None

    def subsystems(self) -> List[SensorSubsystem]:
        return list(self._subsystems.values())

    def sensors(self) -> List[Sensor]:
        return [s for subsystem in self._subsystems.values() for s in subsystem]

    def sensor(self, sensor_id: str) -> Sensor:
        for subsystem in self._subsystems.values():
            if sensor_id in subsystem:
                return subsystem.get(sensor_id)
        raise SensorError("unknown sensor %r" % sensor_id)

    def sensors_in_space(self, space_id: str, sensor_type: Optional[str] = None) -> List[Sensor]:
        result = []
        for subsystem in self._subsystems.values():
            for sensor in subsystem.sensors_in_space(space_id):
                if sensor_type is None or sensor.sensor_type == sensor_type:
                    result.append(sensor)
        return result

    def count(self) -> int:
        return sum(len(s) for s in self._subsystems.values())

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def attribute(self, observation: Observation) -> Observation:
        """Resolve the observation's subject through the directory.

        WiFi logs carry only a device MAC; the directory links it to a
        person.  Already-attributed observations pass through.
        """
        if observation.subject_id is not None or self._directory is None:
            return observation
        mac = observation.payload.get("device_mac")
        if not isinstance(mac, str):
            return observation
        owner = self._directory.owner_of_device(mac)
        if owner is None:
            return observation
        return Observation(
            observation_id=observation.observation_id,
            sensor_id=observation.sensor_id,
            sensor_type=observation.sensor_type,
            timestamp=observation.timestamp,
            space_id=observation.space_id,
            payload=dict(observation.payload),
            subject_id=owner,
            granularity=observation.granularity,
        )

    def tick(self, now: float, environment: EnvironmentView) -> CaptureStats:
        """Sample every sensor once and run the capture path."""
        start = time.perf_counter()
        tick_stats = CaptureStats()
        gate = (
            self.supervisor.should_sample if self.supervisor is not None else None
        )
        for subsystem in self._subsystems.values():
            for raw in subsystem.sample_all(now, environment, gate=gate):
                tick_stats.sampled += 1
                observation = self.attribute(raw)
                stored = self._ingest(observation, tick_stats)
                if stored is not None:
                    tick_stats.stored += 1
            if self.supervisor is not None:
                self.supervisor.observe_pass(subsystem)
        self.stats.merge(tick_stats)
        self._note(tick_stats)
        self._m_ticks.inc()
        self._m_tick_seconds.observe(time.perf_counter() - start)
        return tick_stats

    def ingest(self, observation: Observation) -> Optional[Observation]:
        """Run one externally produced observation through the path."""
        tick_stats = CaptureStats()
        tick_stats.sampled += 1
        stored = self._ingest(self.attribute(observation), tick_stats)
        if stored is not None:
            tick_stats.stored += 1
        self.stats.merge(tick_stats)
        self._note(tick_stats)
        return stored

    def _note(self, tick_stats: CaptureStats) -> None:
        """Mirror one batch of capture counters onto the registry."""
        self._m_sampled.inc(tick_stats.sampled)
        self._m_stored.inc(tick_stats.stored)
        self._m_dropped_capture.inc(tick_stats.dropped_capture)
        self._m_dropped_storage.inc(tick_stats.dropped_storage)
        self._m_degraded.inc(tick_stats.degraded)
        self._m_write_failures.inc(tick_stats.write_failures)

    def _ingest(
        self, observation: Observation, tick_stats: CaptureStats
    ) -> Optional[Observation]:
        current = observation
        if self.enforce_capture:
            captured = self._engine.enforce_observation(
                current, DecisionPhase.CAPTURE
            )
            if captured is None:
                tick_stats.dropped_capture += 1
                return None
            current = captured
            stored = self._engine.enforce_observation(
                current, DecisionPhase.STORAGE
            )
            if stored is None:
                tick_stats.dropped_storage += 1
                return None
            if stored.granularity != observation.granularity:
                tick_stats.degraded += 1
            current = stored
        try:
            self._datastore.insert(current)
        except StorageError:
            # A failed write loses the observation but must not kill
            # the whole tick: the capture path degrades gracefully.
            tick_stats.write_failures += 1
            return None
        return current
