"""The TIPPERS facade: one object wiring the whole building.

Construction order mirrors Figure 1: a spatial model and user directory
come first, the enforcement engine sits in the middle, and the five
managers (sensor, policy, preference, request, inference) share it.

TIPPERS is also a bus :class:`~repro.net.bus.Endpoint`, exposing the
JSON API the IoTA uses: fetching settings, submitting preferences and
selections, and (for services) the query methods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.core.enforcement.audit import AuditLog
from repro.core.enforcement.cache import CachingEnforcementEngine
from repro.core.enforcement.engine import EnforcementEngine
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import RequesterKind
from repro.core.policy.building import BuildingPolicy
from repro.core.policy.conditions import EvaluationContext
from repro.core.policy.preference import ServicePermission, UserPreference
from repro.core.policy.serialization import preference_from_dict
from repro.core.policy.settings import SettingsSpace
from repro.core.reasoner.conflicts import Conflict
from repro.core.reasoner.index import PolicyIndex, RuleStore
from repro.core.reasoner.resolution import ResolutionStrategy
from repro.errors import NetworkError, PolicyError, ServiceError
from repro.net.bus import Endpoint
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sensors.base import Sensor
from repro.sensors.environment import EnvironmentView
from repro.sensors.ontology import SensorOntology, default_ontology
from repro.spatial.model import SpatialModel
from repro.tippers.datastore import Datastore
from repro.tippers.inference import InferenceEngine
from repro.tippers.policy_manager import PolicyManager
from repro.tippers.preference_manager import PreferenceManager
from repro.tippers.request_manager import QueryResponse, RequestManager
from repro.tippers.sensor_manager import (
    CaptureStats,
    SensorHealthSupervisor,
    SensorManager,
)
from repro.tippers.social import SocialInference
from repro.users.profile import UserDirectory, UserProfile

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.storage.durable import StorageEngine
    from repro.storage.recovery import RecoveryReport


class TIPPERS(Endpoint):
    """The privacy-aware building management system."""

    def __init__(
        self,
        spatial: SpatialModel,
        building_id: str,
        directory: Optional[UserDirectory] = None,
        ontology: Optional[SensorOntology] = None,
        store: Optional[RuleStore] = None,
        strategy: ResolutionStrategy = ResolutionStrategy.NEGOTIATE,
        owner_name: str = "",
        owner_more_info: str = "",
        settings_space: Optional[SettingsSpace] = None,
        enforce_capture: bool = True,
        cache_decisions: bool = False,
        compile_decisions: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        storage: Optional["StorageEngine"] = None,
        health_supervisor: Optional[SensorHealthSupervisor] = None,
    ) -> None:
        if building_id not in spatial:
            raise PolicyError("unknown building %r" % building_id)
        self.spatial = spatial
        self.building_id = building_id
        self.metrics = metrics if metrics is not None else get_registry()
        self.directory = directory if directory is not None else UserDirectory()
        self.ontology = ontology if ontology is not None else default_ontology()
        self.context = EvaluationContext(
            spatial=spatial, user_profiles=self.directory.group_map()
        )
        self.store: RuleStore = store if store is not None else PolicyIndex()
        #: When set, observations, audit records, and preferences are
        #: write-ahead-logged and survive a crash (see repro.storage).
        self.storage = storage
        audit: Optional[AuditLog] = None
        if storage is not None:
            from repro.storage.durable import DurableAuditLog, DurableDatastore

            audit = DurableAuditLog(storage, metrics=self.metrics)
            self.datastore: Datastore = DurableDatastore(storage)
        else:
            self.datastore = Datastore()
        if cache_decisions and compile_decisions:
            raise PolicyError(
                "cache_decisions and compile_decisions are exclusive"
            )
        engine_cls = CachingEnforcementEngine if cache_decisions else EnforcementEngine
        self.engine = engine_cls(
            store=self.store,
            context=self.context,
            strategy=strategy,
            ontology=self.ontology,
            audit=audit,
            metrics=self.metrics,
            compiled=compile_decisions,
        )
        self.sensor_manager = SensorManager(
            self.engine,
            self.datastore,
            directory=self.directory,
            enforce_capture=enforce_capture,
            metrics=self.metrics,
            supervisor=health_supervisor,
        )
        self.policy_manager = PolicyManager(
            self.store,
            spatial,
            self.ontology,
            building_id,
            owner_name=owner_name,
            owner_more_info=owner_more_info,
            settings_space=settings_space,
        )
        self.preference_manager = PreferenceManager(
            self.store,
            self.policy_manager,
            self.directory,
            self.context,
            on_submit=None if storage is None else storage.log_preference,
            on_withdraw_all=None if storage is None else storage.log_withdraw_all,
        )
        if compile_decisions:
            # Eager shard reclamation; the engine's per-decide version
            # check keeps correctness even for mutations that bypass
            # the manager (e.g. direct store writes in benchmarks).
            engine = self.engine
            self.preference_manager.add_submit_listener(
                lambda preference: engine.invalidate_user(preference.user_id)
            )
            self.preference_manager.add_withdraw_listener(
                engine.invalidate_user
            )
        self.inference = InferenceEngine(self.datastore, spatial)
        self.social = SocialInference(self.datastore)
        #: user_id -> home building, for principals whose home shard is
        #: another building (federation roaming).  Decisions about them
        #: carry a ``roaming:<home>`` marker in reasons and audit.
        self._roaming: Dict[str, str] = {}
        #: migration_id -> latest journaled phase record, populated by
        #: :meth:`recover` from the WAL's migration journal.  A
        #: rebalance coordinator reads this to resume or roll back
        #: migrations that were in flight when the shard crashed.
        self.recovered_migrations: Dict[str, Dict[str, Any]] = {}
        self.request_manager = RequestManager(
            self.engine,
            self.inference,
            self.directory,
            spatial,
            self.policy_manager,
            social=self.social,
            metrics=self.metrics,
            roaming_lookup=self._roaming.get,
        )

    # ------------------------------------------------------------------
    # Administration (step 1)
    # ------------------------------------------------------------------
    def define_policy(self, policy: BuildingPolicy) -> BuildingPolicy:
        return self.policy_manager.define(policy)

    def add_user(self, profile: UserProfile) -> UserProfile:
        result = self.directory.add(profile)
        # Conditions consult the context's profile map; refresh it.
        self.context.user_profiles = self.directory.group_map()
        # Profile groups feed ProfileCondition, which is declared
        # time-insensitive and hence compiled into table rows; rows
        # predating this profile change must not survive it.
        invalidate = getattr(self.engine, "invalidate_all", None)
        if invalidate is not None:
            invalidate()
        return result

    def register_roaming_user(
        self, profile: UserProfile, home_building_id: str
    ) -> bool:
        """Admit a visiting principal whose home shard is another building.

        Idempotent: re-registering an already-known visitor only
        refreshes the home mapping (an IoTA re-entering mid-handoff must
        not trip the directory's duplicate guard).  Registering a
        principal whose home *is* this building clears any stale roaming
        mark instead -- their decisions are local again.  Returns whether
        the profile was newly added to the directory.
        """
        added = False
        if profile.user_id not in self.directory:
            self.add_user(profile)
            added = True
        if home_building_id == self.building_id:
            self._roaming.pop(profile.user_id, None)
        else:
            self._roaming[profile.user_id] = home_building_id
        self.metrics.counter(
            "tippers_roaming_registrations_total",
            {"building": self.building_id},
        ).inc()
        return added

    def roaming_home_of(self, user_id: str) -> Optional[str]:
        """The visitor's home building, or None for locals."""
        return self._roaming.get(user_id)

    def remove_user(self, user_id: str) -> bool:
        """Forget a user entirely (migration tombstone); idempotent.

        Mirrors :meth:`add_user`: the context's profile map is
        refreshed and compiled decision rows predating the directory
        change are dropped.  Returns whether the user was present.
        """
        removed = self.directory.remove(user_id) is not None
        self._roaming.pop(user_id, None)
        if removed:
            self.context.user_profiles = self.directory.group_map()
            invalidate = getattr(self.engine, "invalidate_all", None)
            if invalidate is not None:
                invalidate()
        return removed

    # ------------------------------------------------------------------
    # Cross-shard migration (federation rebalancing)
    # ------------------------------------------------------------------
    def _journal_migration(self, data: Dict[str, Any]) -> None:
        if self.storage is not None:
            self.storage.log_migration(data)

    def migrate_export(
        self, migration_id: str, user_id: str, to_building: str
    ) -> Dict[str, Any]:
        """Freeze+copy, source side: snapshot the user's state.

        The snapshot (profile, preferences, datastore rows) is
        journaled as a ``migration`` WAL record *before* it is returned,
        and the user's compiled decision rows are evicted -- the source
        stops serving precompiled decisions for a principal whose
        preferences may change at the destination mid-flight.  A user
        already tombstoned here (finalize retried after a crash) exports
        ``found=False`` so the coordinator can converge idempotently.
        """
        from repro.core.policy.serialization import preference_to_dict
        from repro.users.profile import profile_to_dict

        if user_id not in self.directory:
            return {"migration_id": migration_id, "user_id": user_id,
                    "found": False}
        evict = getattr(self.engine, "invalidate_user", None)
        table_evicted = False
        if evict is not None:
            evict(user_id)
            table_evicted = True
        snapshot = {
            "profile": profile_to_dict(self.directory.get(user_id)),
            "preferences": [
                preference_to_dict(p)
                for p in self.preference_manager.preferences_of(user_id)
            ],
            "observations": [
                o.to_dict() for o in self.datastore.query(subject_id=user_id)
            ],
            "table_evicted": table_evicted,
        }
        self._journal_migration({
            "migration_id": migration_id,
            "user_id": user_id,
            "from": self.building_id,
            "to": to_building,
            "phase": "copy",
            "role": "source",
            "snapshot": snapshot,
        })
        self.metrics.counter(
            "tippers_migration_steps_total", {"phase": "export"}
        ).inc()
        return {
            "migration_id": migration_id,
            "user_id": user_id,
            "found": True,
            "snapshot": snapshot,
        }

    def migrate_import(
        self,
        migration_id: str,
        user_id: str,
        from_building: str,
        snapshot: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Freeze+copy then commit, destination side.  Idempotent.

        The snapshot is journaled on *this* shard's WAL before anything
        is applied (the tentpole's records-on-both-shards rule), so a
        crash mid-apply leaves a resumable journal.  The apply itself is
        idempotent: observations are matched by id, preferences are
        latest-wins, the profile add is skipped when present -- a
        re-driven import after a crash changes nothing it already did.
        """
        from repro.tippers.persistence import observation_from_dict
        from repro.users.profile import profile_from_dict

        self._journal_migration({
            "migration_id": migration_id,
            "user_id": user_id,
            "from": from_building,
            "to": self.building_id,
            "phase": "copy",
            "role": "dest",
            "snapshot": snapshot,
        })
        profile_data = snapshot.get("profile")
        if profile_data is not None and user_id not in self.directory:
            self.add_user(profile_from_dict(profile_data))
        # This shard is the user's home now; drop any stale visitor mark.
        self._roaming.pop(user_id, None)
        existing = {
            o.observation_id for o in self.datastore.query(subject_id=user_id)
        }
        observations_imported = 0
        for data in snapshot.get("observations", ()):
            observation = observation_from_dict(data)
            if observation.observation_id in existing:
                continue
            self.datastore.insert(observation)
            observations_imported += 1
        preferences_imported = 0
        for data in snapshot.get("preferences", ()):
            self.preference_manager.submit(preference_from_dict(data))
            preferences_imported += 1
        self._journal_migration({
            "migration_id": migration_id,
            "user_id": user_id,
            "from": from_building,
            "to": self.building_id,
            "phase": "committed",
            "role": "dest",
        })
        self.metrics.counter(
            "tippers_migration_steps_total", {"phase": "import"}
        ).inc()
        return {
            "migration_id": migration_id,
            "user_id": user_id,
            "imported": True,
            "observations_imported": observations_imported,
            "preferences_imported": preferences_imported,
            "observations_held": len(self.datastore.query(subject_id=user_id)),
        }

    def migrate_finalize(
        self, migration_id: str, user_id: str, to_building: str
    ) -> Dict[str, Any]:
        """Tombstone, source side -- only after destination ack.

        Idempotent: every sub-step tolerates being re-run (erasing zero
        rows, withdrawing zero preferences, removing a missing user).
        The tombstone is journaled so replay knows the migration left
        this shard for good.
        """
        observations_dropped = self.datastore.forget_subject(user_id)
        preferences_withdrawn = self.preference_manager.withdraw_all(user_id)
        removed = self.remove_user(user_id)
        self._journal_migration({
            "migration_id": migration_id,
            "user_id": user_id,
            "from": self.building_id,
            "to": to_building,
            "phase": "tombstone",
            "role": "source",
        })
        self.metrics.counter(
            "tippers_migration_steps_total", {"phase": "finalize"}
        ).inc()
        return {
            "migration_id": migration_id,
            "user_id": user_id,
            "observations_dropped": observations_dropped,
            "preferences_withdrawn": preferences_withdrawn,
            "removed": removed,
        }

    def deploy_sensor(
        self,
        sensor_type: str,
        sensor_id: str,
        space_id: str,
        settings: Optional[Dict[str, object]] = None,
    ) -> Sensor:
        if space_id not in self.spatial:
            raise PolicyError("unknown space %r" % space_id)
        return self.sensor_manager.deploy(sensor_type, sensor_id, space_id, settings)

    # ------------------------------------------------------------------
    # Operation (steps 2-3)
    # ------------------------------------------------------------------
    def tick(self, now: float, environment: EnvironmentView) -> CaptureStats:
        """One capture cycle over every deployed sensor."""
        return self.sensor_manager.tick(now, environment)

    def run_retention(self, now: float) -> int:
        """Purge observations past their policies' retention."""
        return self.datastore.sweep(
            now, self.policy_manager.retention_by_sensor_type()
        )

    def recover(self, now: float) -> "RecoveryReport":
        """Rebuild state from this TIPPERS' storage directory.

        Must run on a freshly constructed, storage-backed instance
        (policies and users re-defined, no observations captured yet):
        the replay loads observations and audit into the live durable
        structures and re-submits recovered preferences, then sweeps
        retention for anything that expired while the process was down.
        """
        if self.storage is None:
            raise PolicyError("recover() needs a storage-backed TIPPERS")
        if self.datastore.count() or len(self.engine.audit):
            raise PolicyError("recover() must run before any capture")
        from repro.storage.recovery import recover as recover_storage

        self.storage.replaying = True
        try:
            state = recover_storage(
                self.storage.directory,
                into_datastore=self.datastore,
                into_audit=self.engine.audit,
                retention_by_type=self.policy_manager.retention_by_sensor_type(),
                now=now,
            )
            # Preferences flow back through the manager so the rule
            # store and conflict detection see them; ``replaying``
            # keeps the round trip from re-logging.
            for data in state.preferences:
                self.preference_manager.submit(preference_from_dict(data))
            self.recovered_migrations = dict(state.migrations)
        finally:
            self.storage.replaying = False
        return state.report

    def run_comfort_control(self, now: float) -> int:
        """Execute actuation rules (Policy 1's pipeline)."""
        return self.policy_manager.run_actuations(
            self.sensor_manager,
            triggers={"occupied": lambda space_id: self.inference.is_occupied(space_id, now)},
        )

    # ------------------------------------------------------------------
    # Preferences (step 8)
    # ------------------------------------------------------------------
    def submit_preference(self, preference: UserPreference) -> List[Conflict]:
        return self.preference_manager.submit(preference)

    def submit_permission(self, permission: ServicePermission) -> List[Conflict]:
        return self.preference_manager.submit_permission(permission)

    def apply_selection(self, user_id: str, selection: Dict[str, str]) -> List[Conflict]:
        return self.preference_manager.apply_selection(user_id, selection)

    # ------------------------------------------------------------------
    # Queries (steps 9-10); thin delegation to the request manager
    # ------------------------------------------------------------------
    def locate_user(self, requester_id: str, requester_kind: RequesterKind,
                    subject_id: str, now: float, **kwargs: object) -> QueryResponse:
        return self.request_manager.locate_user(
            requester_id, requester_kind, subject_id, now, **kwargs  # type: ignore[arg-type]
        )

    def room_occupancy(self, requester_id: str, requester_kind: RequesterKind,
                       space_id: str, now: float, **kwargs: object) -> QueryResponse:
        return self.request_manager.room_occupancy(
            requester_id, requester_kind, space_id, now, **kwargs  # type: ignore[arg-type]
        )

    @property
    def audit(self) -> AuditLog:
        return self.engine.audit

    # ------------------------------------------------------------------
    # Bus endpoint: the JSON API
    # ------------------------------------------------------------------
    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            return self._dispatch(method, payload)
        except (PolicyError, ServiceError, KeyError, ValueError) as exc:
            raise NetworkError(str(exc)) from None

    def _dispatch(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        if method == "get_policy_document":
            return self.policy_manager.compile_policy_document().to_dict()
        if method == "get_settings_document":
            return self.policy_manager.settings_space.to_document().to_dict()
        if method == "submit_preference":
            preference = preference_from_dict(payload["preference"])
            conflicts = self.submit_preference(preference)
            return {"conflicts": [c.describe() for c in conflicts]}
        if method == "submit_selection":
            conflicts = self.apply_selection(payload["user_id"], payload["selection"])
            return {"conflicts": [c.describe() for c in conflicts]}
        if method == "preview_effects":
            from repro.tippers.preview import preview_effects

            user_id = payload["user_id"]
            if user_id not in self.directory:
                raise NetworkError("unknown user %r" % user_id)
            preview = preview_effects(
                self.engine,
                user_id,
                payload.get("space_id", self.building_id),
                payload["now"],
            )
            return {
                "user_id": preview.user_id,
                "entries": [
                    {
                        "category": e.category.value,
                        "phase": e.phase.value,
                        "effect": e.effect.value,
                        "granularity": e.granularity.value,
                        "overridden": e.overridden,
                    }
                    for e in preview.entries
                ],
            }
        if method == "dsar_report":
            from repro.tippers.dsar import subject_access_report

            report = subject_access_report(
                self, payload["user_id"], payload["now"]
            )
            return {
                "user_id": report.user_id,
                "observations_total": report.observations_total,
                "decisions_total": report.decisions_total,
                "lines": report.summary_lines(),
            }
        if method == "dsar_erase":
            from repro.tippers.dsar import erase_subject

            receipt = erase_subject(
                self,
                payload["user_id"],
                payload["now"],
                withdraw_preferences=bool(
                    payload.get("withdraw_preferences", False)
                ),
                compact_storage=bool(payload.get("compact_storage", False)),
            )
            return {
                "user_id": receipt.user_id,
                "erased_observations": receipt.erased_observations,
                "withdrawn_preferences": receipt.withdrawn_preferences,
                "storage_compacted": receipt.storage_compacted,
            }
        if method == "register_roaming":
            from repro.users.profile import profile_from_dict

            profile = profile_from_dict(payload["profile"])
            added = self.register_roaming_user(
                profile, payload["home_building_id"]
            )
            return {
                "user_id": profile.user_id,
                "added": added,
                "roaming": self.roaming_home_of(profile.user_id) is not None,
            }
        if method == "migrate_export":
            return self.migrate_export(
                payload["migration_id"],
                payload["user_id"],
                payload["to_building"],
            )
        if method == "migrate_import":
            return self.migrate_import(
                payload["migration_id"],
                payload["user_id"],
                payload["from_building"],
                payload["snapshot"],
            )
        if method == "migrate_finalize":
            return self.migrate_finalize(
                payload["migration_id"],
                payload["user_id"],
                payload["to_building"],
            )
        if method == "locate_user":
            marker = payload.get("migration_marker")
            response = self.locate_user(
                payload["requester_id"],
                RequesterKind(payload.get("requester_kind", "building_service")),
                payload["subject_id"],
                payload["now"],
                purpose=Purpose(payload.get("purpose", "providing_service")),
                granularity=GranularityLevel(payload.get("granularity", "precise")),
                brownout_level=int(payload.get("brownout_level", 0)),
                extra_notes=(str(marker),) if marker else (),
            )
            value = response.value
            located: Optional[Dict[str, Any]] = None
            if response.allowed and value is not None:
                located = {
                    "space_id": value.space_id,
                    "timestamp": value.timestamp,
                    "granularity": value.granularity,
                }
            return {
                "allowed": response.allowed,
                "location": located,
                "reasons": list(response.reasons),
            }
        if method == "room_occupancy":
            marker = payload.get("migration_marker")
            response = self.room_occupancy(
                payload["requester_id"],
                RequesterKind(payload.get("requester_kind", "building_service")),
                payload["space_id"],
                payload["now"],
                purpose=Purpose(payload.get("purpose", "providing_service")),
                extra_notes=(str(marker),) if marker else (),
            )
            return {
                "allowed": response.allowed,
                "occupied": response.value if response.allowed else None,
                "reasons": list(response.reasons),
            }
        raise NetworkError("method %r not handled" % method)
