"""TIPPERS: the privacy-aware building management system.

"Currently, we are developing a privacy-aware smart building testbed
(TIPPERS) which captures raw data from the different sensors in the
building, processes higher-level semantic information from such data,
and empowers development of different building services.  TIPPERS is
also capable of capturing and enforcing privacy preferences expressed
by the building's inhabitants." (Section II-B.)

The facade is :class:`~repro.tippers.bms.TIPPERS`, which wires together
the sensor manager (capture), datastore (storage), inference engine
(processing), policy and preference managers, and the request manager
(sharing) -- each phase guarded by the enforcement engine.
"""

from repro.tippers.bms import TIPPERS
from repro.tippers.datastore import Datastore
from repro.tippers.dsar import (
    ErasureReceipt,
    SubjectAccessReport,
    erase_subject,
    subject_access_report,
)
from repro.tippers.inference import InferenceEngine
from repro.tippers.policy_manager import PolicyManager
from repro.tippers.preference_manager import PreferenceManager
from repro.tippers.request_manager import QueryResponse, RequestManager
from repro.tippers.persistence import (
    load_audit,
    load_datastore,
    save_audit,
    save_datastore,
)
from repro.tippers.preview import EffectPreview, preview_effects
from repro.tippers.sensor_manager import SensorManager
from repro.tippers.social import SocialInference, Tie

__all__ = [
    "TIPPERS",
    "Datastore",
    "SensorManager",
    "PolicyManager",
    "PreferenceManager",
    "RequestManager",
    "QueryResponse",
    "InferenceEngine",
    "SubjectAccessReport",
    "ErasureReceipt",
    "subject_access_report",
    "erase_subject",
    "SocialInference",
    "Tie",
    "EffectPreview",
    "preview_effects",
    "save_datastore",
    "load_datastore",
    "save_audit",
    "load_audit",
]
