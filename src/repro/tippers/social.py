"""Social-ties inference from co-location.

Section II-A's privacy threat list includes learning "with whom they
spend time".  This module makes that inference concrete -- and hence
testable and governable by policy: it builds a co-location graph from
the observation store (two people who are repeatedly sighted in the
same room within a short window are linked) and derives the
higher-level facts a curious analyst would extract: frequent contacts,
communities, and the most socially central individuals.

Like :mod:`repro.tippers.inference`, this is the *processing* stage:
services may only see its outputs through the policy-checked request
path, and de-identified (AGGREGATE) capture starves it of input.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import StorageError
from repro.tippers.datastore import Datastore
from repro.tippers.inference import LOCATION_SENSOR_TYPES


@dataclass(frozen=True)
class Tie:
    """A co-location tie between two people."""

    user_a: str
    user_b: str
    encounters: int
    spaces: Tuple[str, ...]

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.user_a, self.user_b)


class SocialInference:
    """Derives a co-location graph from stored observations."""

    def __init__(
        self,
        datastore: Datastore,
        window_s: float = 300.0,
        min_encounters: int = 2,
    ) -> None:
        if window_s <= 0:
            raise StorageError("window_s must be positive")
        if min_encounters < 1:
            raise StorageError("min_encounters must be >= 1")
        self._datastore = datastore
        self.window_s = window_s
        self.min_encounters = min_encounters

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def _sightings(
        self, since: Optional[float], until: Optional[float]
    ) -> Dict[Tuple[str, int], Set[str]]:
        """(space, time-bucket) -> subjects sighted there."""
        buckets: Dict[Tuple[str, int], Set[str]] = defaultdict(set)
        for sensor_type in LOCATION_SENSOR_TYPES:
            for observation in self._datastore.query(
                sensor_type=sensor_type, since=since, until=until
            ):
                if observation.subject_id is None or observation.space_id is None:
                    continue
                bucket = int(observation.timestamp // self.window_s)
                buckets[(observation.space_id, bucket)].add(observation.subject_id)
        return buckets

    def build_graph(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        ignore_spaces: Optional[Set[str]] = None,
    ) -> "nx.Graph":
        """The weighted co-location graph.

        Edge weight = number of distinct (space, window) encounters.
        ``ignore_spaces`` removes high-traffic common areas (a lunch
        room links everyone and would swamp real ties).
        """
        graph = nx.Graph()
        edge_meta: Dict[Tuple[str, str], Dict[str, object]] = defaultdict(
            lambda: {"weight": 0, "spaces": set()}
        )
        for (space_id, _bucket), subjects in self._sightings(since, until).items():
            if ignore_spaces and space_id in ignore_spaces:
                continue
            ordered = sorted(subjects)
            for i, user_a in enumerate(ordered):
                graph.add_node(user_a)
                for user_b in ordered[i + 1:]:
                    meta = edge_meta[(user_a, user_b)]
                    meta["weight"] = int(meta["weight"]) + 1
                    meta["spaces"].add(space_id)  # type: ignore[union-attr]
        for (user_a, user_b), meta in edge_meta.items():
            graph.add_edge(
                user_a,
                user_b,
                weight=meta["weight"],
                spaces=tuple(sorted(meta["spaces"])),  # type: ignore[arg-type]
            )
        return graph

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    def ties_of(
        self,
        user_id: str,
        since: Optional[float] = None,
        until: Optional[float] = None,
        ignore_spaces: Optional[Set[str]] = None,
    ) -> List[Tie]:
        """The user's ties with at least ``min_encounters`` encounters,
        strongest first."""
        graph = self.build_graph(since, until, ignore_spaces)
        if user_id not in graph:
            return []
        ties = []
        for neighbor in graph.neighbors(user_id):
            data = graph.edges[user_id, neighbor]
            if data["weight"] < self.min_encounters:
                continue
            a, b = sorted((user_id, neighbor))
            ties.append(
                Tie(
                    user_a=a,
                    user_b=b,
                    encounters=data["weight"],
                    spaces=data["spaces"],
                )
            )
        ties.sort(key=lambda t: (-t.encounters, t.pair))
        return ties

    def communities(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        ignore_spaces: Optional[Set[str]] = None,
    ) -> List[Set[str]]:
        """Connected components of the strong-tie graph, largest first."""
        graph = self.build_graph(since, until, ignore_spaces)
        strong = nx.Graph(
            (u, v, d)
            for u, v, d in graph.edges(data=True)
            if d["weight"] >= self.min_encounters
        )
        components = [set(c) for c in nx.connected_components(strong)]
        components.sort(key=lambda c: (-len(c), sorted(c)))
        return components

    def most_central(
        self,
        top: int = 5,
        since: Optional[float] = None,
        until: Optional[float] = None,
        ignore_spaces: Optional[Set[str]] = None,
    ) -> List[Tuple[str, float]]:
        """The ``top`` users by weighted degree centrality."""
        graph = self.build_graph(since, until, ignore_spaces)
        if not graph:
            return []
        scores = {
            node: sum(d["weight"] for _, _, d in graph.edges(node, data=True))
            for node in graph.nodes
        }
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [(node, float(score)) for node, score in ranked[:top]]
