"""Minimal 2D geometry used by the spatial model.

Spaces carry axis-aligned rectangular footprints.  That is enough to
implement the paper's ``overlap`` and ``neighboring`` operators and to
compute sensor coverage without pulling in a full GIS stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A point in the building's local coordinate frame (meters)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Box:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate box: (%r, %r) must not exceed (%r, %r)"
                % (self.min_x, self.min_y, self.max_x, self.max_y)
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside this box (boundary inclusive)."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "Box") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def overlaps(self, other: "Box") -> bool:
        """Whether the two boxes share interior area (not just an edge)."""
        return (
            self.min_x < other.max_x
            and other.min_x < self.max_x
            and self.min_y < other.max_y
            and other.min_y < self.max_y
        )

    def touches(self, other: "Box") -> bool:
        """Whether the boxes share a boundary but no interior area.

        Two rooms separated by a wall segment touch; this is the
        geometric basis of the ``neighboring`` operator.
        """
        if self.overlaps(other):
            return False
        x_touch = self.min_x <= other.max_x and other.min_x <= self.max_x
        y_touch = self.min_y <= other.max_y and other.min_y <= self.max_y
        return x_touch and y_touch

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping region, or ``None`` when the boxes are disjoint."""
        if not self.overlaps(other):
            return None
        return Box(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union_bounds(self, other: "Box") -> "Box":
        """The smallest box enclosing both boxes."""
        return Box(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "Box":
        """A copy grown by ``margin`` meters on every side."""
        if margin < 0 and (2 * -margin > self.width or 2 * -margin > self.height):
            raise ValueError("negative margin would invert the box")
        return Box(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )
