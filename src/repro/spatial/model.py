"""Hierarchical spatial model with the paper's three operators.

A :class:`SpatialModel` is a forest of :class:`Space` nodes (normally a
single tree rooted at a building).  It answers the queries the policy
language needs:

- ``contains(a, b)`` -- is ``b`` inside ``a`` in the hierarchy?
- ``neighboring(a, b)`` -- do ``a`` and ``b`` share a boundary?
- ``overlap(a, b)`` -- do the footprints of ``a`` and ``b`` intersect?

plus coarsening (``ancestor_at_level``), which the enforcement engine
uses to degrade location granularity (report "floor 2" instead of
"room 2011").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import SpatialError
from repro.spatial.geometry import Box, Point


class SpaceType(enum.Enum):
    """Kinds of spaces in the hierarchy, ordered coarse to fine."""

    CAMPUS = "campus"
    BUILDING = "building"
    FLOOR = "floor"
    ZONE = "zone"
    CORRIDOR = "corridor"
    ROOM = "room"

    @property
    def granularity_rank(self) -> int:
        """Coarseness rank: lower means coarser (campus=0 ... room=5)."""
        order = [
            SpaceType.CAMPUS,
            SpaceType.BUILDING,
            SpaceType.FLOOR,
            SpaceType.ZONE,
            SpaceType.CORRIDOR,
            SpaceType.ROOM,
        ]
        return order.index(self)


@dataclass
class Space:
    """A node in the spatial hierarchy.

    Parameters
    ----------
    space_id:
        Stable unique identifier, e.g. ``"dbh-2011"``.
    name:
        Human-readable name, e.g. ``"Donald Bren Hall 2011"``.
    space_type:
        The :class:`SpaceType` of this node.
    footprint:
        Optional 2D footprint used by geometric operators.
    parent_id:
        Filled in by :meth:`SpatialModel.add_space`.
    """

    space_id: str
    name: str
    space_type: SpaceType
    footprint: Optional[Box] = None
    parent_id: Optional[str] = None
    child_ids: List[str] = field(default_factory=list)
    attributes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.space_id:
            raise SpatialError("space_id must be non-empty")

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def is_leaf(self) -> bool:
        return not self.child_ids


class SpatialModel:
    """Registry and query engine over a building's spaces."""

    def __init__(self) -> None:
        self._spaces: Dict[str, Space] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_space(self, space: Space, parent_id: Optional[str] = None) -> Space:
        """Register ``space``, optionally attaching it under ``parent_id``.

        Raises :class:`SpatialError` on duplicate ids, unknown parents,
        or a child whose type is coarser than its parent's.
        """
        if space.space_id in self._spaces:
            raise SpatialError("duplicate space id %r" % space.space_id)
        if parent_id is not None:
            parent = self.get(parent_id)
            if space.space_type.granularity_rank < parent.space_type.granularity_rank:
                raise SpatialError(
                    "child %r (%s) cannot be coarser than parent %r (%s)"
                    % (space.space_id, space.space_type.value,
                       parent.space_id, parent.space_type.value)
                )
            space.parent_id = parent_id
            parent.child_ids.append(space.space_id)
        self._spaces[space.space_id] = space
        return space

    def add(
        self,
        space_id: str,
        name: str,
        space_type: SpaceType,
        parent_id: Optional[str] = None,
        footprint: Optional[Box] = None,
        **attributes: str,
    ) -> Space:
        """Convenience wrapper building a :class:`Space` and adding it."""
        space = Space(
            space_id=space_id,
            name=name,
            space_type=space_type,
            footprint=footprint,
            attributes=dict(attributes),
        )
        return self.add_space(space, parent_id=parent_id)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, space_id: str) -> Space:
        try:
            return self._spaces[space_id]
        except KeyError:
            raise SpatialError("unknown space %r" % space_id) from None

    def __contains__(self, space_id: str) -> bool:
        return space_id in self._spaces

    def __len__(self) -> int:
        return len(self._spaces)

    def __iter__(self) -> Iterator[Space]:
        return iter(self._spaces.values())

    def spaces_of_type(self, space_type: SpaceType) -> List[Space]:
        return [s for s in self._spaces.values() if s.space_type is space_type]

    def roots(self) -> List[Space]:
        return [s for s in self._spaces.values() if s.is_root]

    # ------------------------------------------------------------------
    # Hierarchy traversal
    # ------------------------------------------------------------------
    def parent(self, space_id: str) -> Optional[Space]:
        space = self.get(space_id)
        if space.parent_id is None:
            return None
        return self.get(space.parent_id)

    def children(self, space_id: str) -> List[Space]:
        return [self.get(cid) for cid in self.get(space_id).child_ids]

    def ancestors(self, space_id: str) -> List[Space]:
        """Ancestors from immediate parent up to the root."""
        result: List[Space] = []
        current = self.parent(space_id)
        while current is not None:
            result.append(current)
            current = self.parent(current.space_id)
        return result

    def descendants(self, space_id: str) -> List[Space]:
        """All spaces strictly below ``space_id``, depth-first."""
        result: List[Space] = []
        stack = list(reversed(self.get(space_id).child_ids))
        while stack:
            child = self.get(stack.pop())
            result.append(child)
            stack.extend(reversed(child.child_ids))
        return result

    def leaves_under(self, space_id: str) -> List[Space]:
        space = self.get(space_id)
        if space.is_leaf:
            return [space]
        return [s for s in self.descendants(space_id) if s.is_leaf]

    # ------------------------------------------------------------------
    # The paper's operators
    # ------------------------------------------------------------------
    def contains(self, outer_id: str, inner_id: str) -> bool:
        """The paper's ``contained`` operator, reflexive on equal ids."""
        if outer_id == inner_id:
            self.get(outer_id)
            return True
        return any(a.space_id == outer_id for a in self.ancestors(inner_id))

    def neighboring(self, a_id: str, b_id: str) -> bool:
        """Whether two distinct spaces share a boundary.

        Spaces without footprints fall back to hierarchy adjacency:
        siblings under the same parent are treated as neighbors.
        """
        if a_id == b_id:
            return False
        a, b = self.get(a_id), self.get(b_id)
        if a.footprint is not None and b.footprint is not None:
            return a.footprint.touches(b.footprint)
        return a.parent_id is not None and a.parent_id == b.parent_id

    def overlap(self, a_id: str, b_id: str) -> bool:
        """Whether two spaces share area.

        Hierarchical containment counts as overlap; otherwise the
        footprints decide.  Spaces lacking footprints only overlap via
        containment.
        """
        if self.contains(a_id, b_id) or self.contains(b_id, a_id):
            return True
        a, b = self.get(a_id), self.get(b_id)
        if a.footprint is None or b.footprint is None:
            return False
        return a.footprint.overlaps(b.footprint)

    # ------------------------------------------------------------------
    # Granularity support
    # ------------------------------------------------------------------
    def ancestor_at_level(self, space_id: str, level: SpaceType) -> Optional[Space]:
        """The ancestor of ``space_id`` (or itself) at ``level``.

        Used to coarsen a location: the room ``dbh-2011`` coarsened to
        :attr:`SpaceType.FLOOR` becomes the floor that contains it.
        Returns ``None`` when no ancestor of that type exists.
        """
        space = self.get(space_id)
        if space.space_type is level:
            return space
        for ancestor in self.ancestors(space_id):
            if ancestor.space_type is level:
                return ancestor
        return None

    def locate_point(self, point: Point) -> Optional[Space]:
        """The finest-granularity space whose footprint contains ``point``."""
        best: Optional[Space] = None
        for space in self._spaces.values():
            if space.footprint is None or not space.footprint.contains_point(point):
                continue
            if best is None or (
                space.space_type.granularity_rank
                > best.space_type.granularity_rank
            ):
                best = space
        return best

    def path_to_root(self, space_id: str) -> List[Space]:
        """The space followed by its ancestors up to the root."""
        return [self.get(space_id)] + self.ancestors(space_id)

    def common_ancestor(self, a_id: str, b_id: str) -> Optional[Space]:
        """Lowest common ancestor of two spaces, or ``None``."""
        a_path = {s.space_id for s in self.path_to_root(a_id)}
        for space in self.path_to_root(b_id):
            if space.space_id in a_path:
                return space
        return None

    def validate(self) -> None:
        """Check structural invariants; raises :class:`SpatialError`.

        Invariants: every parent/child link is symmetric, there are no
        cycles, and child footprints lie within parent footprints when
        both are present.
        """
        for space in self._spaces.values():
            if space.parent_id is not None:
                parent = self.get(space.parent_id)
                if space.space_id not in parent.child_ids:
                    raise SpatialError(
                        "asymmetric link: %r -> %r" % (space.space_id, parent.space_id)
                    )
            for child_id in space.child_ids:
                child = self.get(child_id)
                if child.parent_id != space.space_id:
                    raise SpatialError(
                        "asymmetric link: %r -> %r" % (space.space_id, child_id)
                    )
                if (
                    space.footprint is not None
                    and child.footprint is not None
                    and not space.footprint.expand(1e-9).contains_box(child.footprint)
                ):
                    raise SpatialError(
                        "child %r footprint escapes parent %r" % (child_id, space.space_id)
                    )
            # Cycle check: walking to the root must terminate.
            seen = {space.space_id}
            current = space.parent_id
            while current is not None:
                if current in seen:
                    raise SpatialError("cycle through %r" % current)
                seen.add(current)
                current = self.get(current).parent_id


def build_simple_building(
    building_id: str,
    floors: int,
    rooms_per_floor: int,
    floor_width: float = 80.0,
    floor_depth: float = 30.0,
) -> SpatialModel:
    """Construct a rectangular building with a corridor per floor.

    A convenience used by tests and the simulation: each floor is a
    ``floor_width x floor_depth`` slab with one central corridor and
    ``rooms_per_floor`` rooms split across its two sides.
    """
    if floors <= 0 or rooms_per_floor <= 0:
        raise SpatialError("floors and rooms_per_floor must be positive")
    model = SpatialModel()
    # Each floor occupies its own y-band in the planar coordinate
    # frame (with a gap between bands) so spaces on different floors
    # never touch or overlap geometrically.
    floor_gap = max(1.0, floor_depth / 10.0)
    building_box = Box(
        0.0,
        0.0,
        floor_width,
        floors * floor_depth + (floors - 1) * floor_gap,
    )
    model.add(building_id, building_id.upper(), SpaceType.BUILDING, footprint=building_box)
    corridor_depth = floor_depth / 5.0
    for floor_no in range(1, floors + 1):
        y0 = (floor_no - 1) * (floor_depth + floor_gap)
        floor_id = "%s-f%d" % (building_id, floor_no)
        model.add(
            floor_id,
            "Floor %d" % floor_no,
            SpaceType.FLOOR,
            parent_id=building_id,
            footprint=Box(0.0, y0, floor_width, y0 + floor_depth),
        )
        corridor = Box(
            0.0,
            y0 + (floor_depth - corridor_depth) / 2.0,
            floor_width,
            y0 + (floor_depth + corridor_depth) / 2.0,
        )
        model.add(
            "%s-corridor" % floor_id,
            "Corridor %d" % floor_no,
            SpaceType.CORRIDOR,
            parent_id=floor_id,
            footprint=corridor,
        )
        per_side = (rooms_per_floor + 1) // 2
        room_width = floor_width / per_side
        room_depth = (floor_depth - corridor_depth) / 2.0
        for i in range(rooms_per_floor):
            side = i % 2  # 0 = south of corridor, 1 = north
            slot = i // 2
            min_x = slot * room_width
            if side == 0:
                min_y, max_y = y0, y0 + room_depth
            else:
                min_y, max_y = y0 + floor_depth - room_depth, y0 + floor_depth
            room_no = floor_no * 1000 + i + 1
            model.add(
                "%s-%d" % (building_id, room_no),
                "Room %d" % room_no,
                SpaceType.ROOM,
                parent_id=floor_id,
                footprint=Box(min_x, min_y, min(min_x + room_width, floor_width), max_y),
            )
    return model


def iter_room_ids(model: SpatialModel) -> Iterable[str]:
    """Ids of all rooms in ``model`` (helper for workload generators)."""
    return (s.space_id for s in model.spaces_of_type(SpaceType.ROOM))
