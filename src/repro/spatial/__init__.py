"""Hierarchical spatial model of a smart building.

The paper's policy language needs a spatial model that "includes
information about infrastructure, such as buildings, floors, rooms,
corridors, and is inherently hierarchical" and that "supports operators
such as contained, neighboring, and overlap" (Section IV-A.1).

:class:`~repro.spatial.model.SpatialModel` is the registry of
:class:`~repro.spatial.model.Space` nodes; each space may carry a 2D
footprint (:class:`~repro.spatial.geometry.Box`) used by the overlap and
neighboring operators and by coarse-grained location reporting.
"""

from repro.spatial.geometry import Box, Point
from repro.spatial.model import Space, SpaceType, SpatialModel

__all__ = ["Point", "Box", "Space", "SpaceType", "SpatialModel"]
