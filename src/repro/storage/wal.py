"""Segmented append-only write-ahead log.

The WAL is the durability primitive under the storage engine: every
mutation (observation insert, subject erasure, audit append, preference
change) becomes one CRC-framed record appended to the active segment
*before* the in-memory state changes.  A crash at any byte boundary
loses at most the tail record being written; it can never corrupt what
was already acknowledged.

Frame format (all integers big-endian)::

    offset  size  field
    0       8     LSN (u64) -- log sequence number, monotonically +1
    8       4     payload length (u32)
    12      4     CRC32 of the 12 header bytes above + the payload
    16      n     payload (opaque bytes; the engine stores JSON records)

Segment files are named ``wal-%08d.seg`` by sequence number and begin
with a 16-byte header: the magic ``RPWAL001`` followed by the first LSN
the segment holds (u64).  A segment is *sealed* once the log rotates
past it (the active segment exceeded ``segment_bytes``); sealed
segments are immutable and are what compaction folds into snapshots.

Torn-tail semantics: a reader (:func:`scan_segment`) stops at the first
frame whose header is short, whose payload is short, whose CRC
mismatches, or whose LSN breaks the +1 chain, and reports the prefix of
valid frames plus where the tear starts.  :class:`WriteAheadLog`
physically truncates that tear when it reopens a directory, so new
appends extend a valid log.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulatedCrash, StorageError

SEGMENT_MAGIC = b"RPWAL001"
SEGMENT_HEADER = struct.Struct(">8sQ")
FRAME_HEADER = struct.Struct(">QII")
FRAME_HEADER_FORMAT = ">QII"

#: Frames above this payload size are rejected at append time and
#: treated as tears at read time (a corrupted length field must not
#: make the reader allocate gigabytes).
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

#: Default byte budget per segment before the log rotates.
DEFAULT_SEGMENT_BYTES = 256 * 1024

SEGMENT_PATTERN = "wal-%08d.seg"

#: A WAL-level interception point: called with the operation (always
#: ``"append"``) and the record type being appended; returning a fault
#: kind value (``"torn_write"`` / ``"crash_mid_append"``) makes the
#: append crash the simulated process, leaving a partial or complete
#: frame behind for recovery to handle.
WalPlane = Callable[[str, str], Optional[str]]


def encode_frame(lsn: int, payload: bytes) -> bytes:
    """One wire frame for ``payload`` at ``lsn``."""
    if lsn < 1:
        raise StorageError("LSN must be >= 1, got %d" % lsn)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise StorageError("payload of %d bytes exceeds frame limit" % len(payload))
    prefix = struct.pack(">QI", lsn, len(payload))
    crc = zlib.crc32(prefix + payload) & 0xFFFFFFFF
    return prefix + struct.pack(">I", crc) + payload


def decode_frame(buffer: bytes, offset: int = 0) -> Tuple[Optional["Frame"], int, str]:
    """Decode one frame at ``offset``; never raises on bad bytes.

    Returns ``(frame, next_offset, reason)``.  ``frame`` is ``None``
    when the bytes at ``offset`` are not a complete valid frame, with
    ``reason`` naming why (``short-header``, ``oversized-length``,
    ``short-payload``, ``crc-mismatch``); ``next_offset`` then equals
    ``offset`` (the tear starts here).
    """
    if offset + FRAME_HEADER.size > len(buffer):
        return None, offset, "short-header"
    lsn, length, crc = FRAME_HEADER.unpack_from(buffer, offset)
    if length > MAX_PAYLOAD_BYTES:
        return None, offset, "oversized-length"
    start = offset + FRAME_HEADER.size
    end = start + length
    if end > len(buffer):
        return None, offset, "short-payload"
    payload = buffer[start:end]
    expected = zlib.crc32(buffer[offset:offset + 12] + payload) & 0xFFFFFFFF
    if crc != expected:
        return None, offset, "crc-mismatch"
    return Frame(lsn=lsn, payload=payload), end, ""


@dataclass(frozen=True)
class Frame:
    """One decoded WAL record."""

    lsn: int
    payload: bytes


@dataclass
class SegmentScan:
    """The readable prefix of one segment file."""

    path: str
    first_lsn: int
    frames: List[Frame] = field(default_factory=list)
    valid_bytes: int = 0
    torn: bool = False
    reason: str = ""

    @property
    def name(self) -> str:
        return os.path.basename(self.path)

    @property
    def last_lsn(self) -> int:
        return self.frames[-1].lsn if self.frames else self.first_lsn - 1


def segment_path(directory: str, sequence: int) -> str:
    return os.path.join(directory, SEGMENT_PATTERN % sequence)


def segment_sequence(path: str) -> int:
    """The sequence number encoded in a segment file name."""
    name = os.path.basename(path)
    if not (name.startswith("wal-") and name.endswith(".seg")):
        raise StorageError("not a segment file name: %r" % name)
    try:
        return int(name[4:-4])
    except ValueError:
        raise StorageError("not a segment file name: %r" % name) from None


def list_segments(directory: str) -> List[str]:
    """Segment paths under ``directory``, in sequence order."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    paths = [
        os.path.join(directory, name)
        for name in names
        if name.startswith("wal-") and name.endswith(".seg")
    ]
    return sorted(paths, key=segment_sequence)


def scan_segment(path: str) -> SegmentScan:
    """Read the valid frame prefix of one segment; never raises on torn bytes."""
    with open(path, "rb") as handle:
        buffer = handle.read()
    if len(buffer) < SEGMENT_HEADER.size:
        return SegmentScan(path=path, first_lsn=0, torn=True, reason="short-segment-header")
    magic, first_lsn = SEGMENT_HEADER.unpack_from(buffer, 0)
    if magic != SEGMENT_MAGIC:
        return SegmentScan(path=path, first_lsn=0, torn=True, reason="bad-magic")
    scan = SegmentScan(path=path, first_lsn=first_lsn, valid_bytes=SEGMENT_HEADER.size)
    offset = SEGMENT_HEADER.size
    expected = first_lsn
    while offset < len(buffer):
        frame, next_offset, reason = decode_frame(buffer, offset)
        if frame is None:
            scan.torn = True
            scan.reason = reason
            return scan
        if frame.lsn != expected:
            scan.torn = True
            scan.reason = "lsn-discontinuity"
            return scan
        scan.frames.append(frame)
        scan.valid_bytes = next_offset
        offset = next_offset
        expected += 1
    return scan


class WriteAheadLog:
    """The append side of the log: one active segment, sealed history.

    Opening a directory with existing segments resumes the log: the
    torn tail of the last segment (if any) is physically truncated,
    segments orphaned *after* a tear are deleted (their LSNs are
    unreachable), and appends continue from the next LSN.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        start_lsn: int = 1,
    ) -> None:
        if segment_bytes < SEGMENT_HEADER.size + FRAME_HEADER.size:
            raise StorageError("segment_bytes of %d is too small" % segment_bytes)
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.appends = 0
        self.bytes_written = 0
        self.segments_sealed = 0
        self.truncated_frames = 0
        self.truncated_segments = 0
        self._planes: List[WalPlane] = []
        os.makedirs(directory, exist_ok=True)
        self._resume(start_lsn)

    # ------------------------------------------------------------------
    # Opening / resuming
    # ------------------------------------------------------------------
    def _resume(self, start_lsn: int) -> None:
        next_lsn = start_lsn
        next_sequence = 1
        torn_seen = False
        for path in list_segments(self.directory):
            sequence = segment_sequence(path)
            next_sequence = max(next_sequence, sequence + 1)
            if torn_seen:
                # Frames past a tear are unreachable; drop the file.
                os.remove(path)
                self.truncated_segments += 1
                continue
            scan = scan_segment(path)
            if scan.frames:
                next_lsn = max(next_lsn, scan.last_lsn + 1)
            if scan.torn:
                torn_seen = True
                self.truncated_segments += 1
                if scan.valid_bytes <= SEGMENT_HEADER.size and not scan.frames:
                    os.remove(path)
                else:
                    with open(path, "ab") as handle:
                        handle.truncate(scan.valid_bytes)
        self.next_lsn = next_lsn
        self._sequence = next_sequence
        self._open_segment()

    def _open_segment(self) -> None:
        self._active_path = segment_path(self.directory, self._sequence)
        self._handle = open(self._active_path, "ab")
        if self._handle.tell() == 0:
            self._handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, self.next_lsn))
            self._handle.flush()
        self._active_bytes = self._handle.tell()

    # ------------------------------------------------------------------
    # Fault planes
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: WalPlane) -> None:
        """Attach a crash plane (see :data:`WalPlane`)."""
        self._planes.append(plane)

    def remove_fault_plane(self, plane: WalPlane) -> None:
        if plane in self._planes:
            self._planes.remove(plane)

    def _consult_planes(self, record_type: str) -> Optional[str]:
        for plane in self._planes:
            verdict = plane("append", record_type)
            if verdict:
                return verdict
        return None

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, payload: bytes, record_type: str = "") -> int:
        """Durably append ``payload``; returns its LSN.

        An installed fault plane may turn the append into a simulated
        crash: ``torn_write`` leaves a partial frame on disk,
        ``crash_mid_append`` leaves the complete frame on disk, and both
        raise :class:`~repro.errors.SimulatedCrash` *before* the caller
        can apply the record to in-memory state.
        """
        verdict = self._consult_planes(record_type)
        lsn = self.next_lsn
        frame = encode_frame(lsn, payload)
        if self._active_bytes + len(frame) > self.segment_bytes and \
                self._active_bytes > SEGMENT_HEADER.size:
            self.rotate()
        if verdict == "torn_write":
            # A crash mid-write: only a prefix of the frame reaches disk.
            self._handle.write(frame[: max(1, len(frame) // 2)])
            self._handle.flush()
            raise SimulatedCrash(
                "torn write at lsn %d (record type %r)" % (lsn, record_type)
            )
        self._handle.write(frame)
        self._handle.flush()
        if verdict == "crash_mid_append":
            # The frame is durable but the in-memory apply never happens.
            raise SimulatedCrash(
                "crash after append at lsn %d (record type %r)" % (lsn, record_type)
            )
        self.next_lsn = lsn + 1
        self.appends += 1
        self.bytes_written += len(frame)
        self._active_bytes += len(frame)
        return lsn

    def rotate(self) -> None:
        """Seal the active segment and open the next one."""
        self._handle.close()
        if self._active_bytes > SEGMENT_HEADER.size:
            self.segments_sealed += 1
            self._sequence += 1
        else:
            # Nothing was written; reuse the empty file as the next
            # active segment instead of leaving empty seals around.
            os.remove(self._active_path)
        self._open_segment()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_path(self) -> str:
        return self._active_path

    def segment_paths(self) -> List[str]:
        return list_segments(self.directory)

    def sealed_paths(self) -> List[str]:
        return [p for p in self.segment_paths() if p != self._active_path]

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()
