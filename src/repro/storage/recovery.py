"""Crash recovery: snapshot-then-log replay.

Replay order is the durability contract in reverse:

1. read ``MANIFEST.json`` for the snapshot watermark LSN;
2. load the three snapshot files at that watermark (torn final lines
   tolerated, same semantics as the WAL tail);
3. scan WAL segments in sequence order and apply every frame whose LSN
   is greater than the watermark, stopping at the first torn frame or
   LSN discontinuity (everything after a tear is unreachable);
4. run the retention sweep, so observations that expired while the
   process was down are purged *before* the first query is served.

Replayed erase records physically drop the subject's earlier
observations from the rebuilt state -- recovery never resurrects
forgotten data, no matter where the crash landed.

The :class:`RecoveryReport` is deliberately path- and id-free: every
field is a count, an LSN, or a segment *name*, so two same-seed
crash+recover runs render byte-identical reports (the chaos
``--recover`` harness diffs them).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.enforcement.audit import AuditLog
from repro.errors import StorageError
from repro.storage import records
from repro.storage.snapshot import read_manifest, snapshot_paths
from repro.storage.wal import list_segments, scan_segment
from repro.tippers.datastore import Datastore
from repro.tippers.persistence import (
    audit_record_from_dict,
    load_audit,
    load_datastore,
    observation_from_dict,
)


@dataclass
class RecoveryReport:
    """What one recovery pass did, in deterministic terms."""

    snapshot_lsn: int = 0
    last_lsn: int = 0
    frames_replayed: int = 0
    records_replayed: Dict[str, int] = field(default_factory=dict)
    segments_scanned: int = 0
    torn: bool = False
    torn_segment: str = ""
    torn_reason: str = ""
    snapshot_torn_tails: int = 0
    erasures_applied: int = 0
    erased_observations: int = 0
    observations_restored: int = 0
    audit_restored: int = 0
    preferences_restored: int = 0
    retention_purged: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_lsn": self.snapshot_lsn,
            "last_lsn": self.last_lsn,
            "frames_replayed": self.frames_replayed,
            "records_replayed": dict(self.records_replayed),
            "segments_scanned": self.segments_scanned,
            "torn": self.torn,
            "torn_segment": self.torn_segment,
            "torn_reason": self.torn_reason,
            "snapshot_torn_tails": self.snapshot_torn_tails,
            "erasures_applied": self.erasures_applied,
            "erased_observations": self.erased_observations,
            "observations_restored": self.observations_restored,
            "audit_restored": self.audit_restored,
            "preferences_restored": self.preferences_restored,
            "retention_purged": self.retention_purged,
        }

    def lines(self) -> List[str]:
        """A stable text rendering; byte-identical across same-seed runs."""
        by_type = ", ".join(
            "%s=%d" % (record_type, count)
            for record_type, count in sorted(self.records_replayed.items())
        )
        torn = "none"
        if self.torn:
            torn = "%s (%s)" % (self.torn_segment, self.torn_reason)
        return [
            "recovery: snapshot_lsn=%d last_lsn=%d frames_replayed=%d"
            % (self.snapshot_lsn, self.last_lsn, self.frames_replayed),
            "segments_scanned=%d torn=%s snapshot_torn_tails=%d"
            % (self.segments_scanned, torn, self.snapshot_torn_tails),
            "records: %s" % (by_type or "none"),
            "erasures_applied=%d erased_observations=%d"
            % (self.erasures_applied, self.erased_observations),
            "restored: observations=%d audit=%d preferences=%d"
            % (
                self.observations_restored,
                self.audit_restored,
                self.preferences_restored,
            ),
            "retention_purged=%d" % self.retention_purged,
        ]

    def to_text(self) -> str:
        return "".join(line + "\n" for line in self.lines())


@dataclass
class RecoveredState:
    """The rebuilt in-memory state plus its report."""

    datastore: Datastore
    audit: AuditLog
    preferences: List[Dict[str, Any]]
    report: RecoveryReport
    #: The newest compiled enforcement table logged before the crash
    #: (advisory: adopt via ``import_table``, which skips shards whose
    #: version stamps no longer match the live store), or ``None``.
    compiled_table: Optional[Dict[str, Any]] = None
    #: Cross-shard migration journal: ``migration_id`` -> the latest
    #: journaled phase record.  A rebalance coordinator consults this to
    #: resume (dest journal shows ``committed``) or re-run (journal
    #: stuck at ``copy``) an in-flight migration after a shard crash.
    migrations: Dict[str, Dict[str, Any]] = field(default_factory=dict)


def is_storage_directory(directory: str) -> bool:
    """Whether ``directory`` looks like a storage-engine directory."""
    if not os.path.isdir(directory):
        return False
    if os.path.exists(os.path.join(directory, "MANIFEST.json")):
        return True
    return bool(list_segments(directory))


def replay_directory(
    directory: str,
    into_datastore: Optional[Datastore] = None,
    into_audit: Optional[AuditLog] = None,
) -> RecoveredState:
    """Snapshot-then-log replay (no retention sweep; see :func:`recover`).

    ``into_datastore`` / ``into_audit`` may be durable instances; the
    replay uses base-class applies throughout, so nothing is re-logged.
    """
    report = RecoveryReport()
    datastore = into_datastore if into_datastore is not None else Datastore()
    audit = into_audit if into_audit is not None else AuditLog()
    preferences: "Dict[tuple, Dict[str, Any]]" = {}
    extras: Dict[str, Any] = {}

    def torn_tail(_message: str) -> None:
        report.snapshot_torn_tails += 1

    manifest = read_manifest(directory)
    report.snapshot_lsn = manifest.snapshot_lsn
    report.last_lsn = manifest.snapshot_lsn
    paths = snapshot_paths(directory, manifest.snapshot_lsn)
    if os.path.exists(paths["obs"]):
        load_datastore(paths["obs"], into=datastore, on_torn_tail=torn_tail)
    if os.path.exists(paths["audit"]):
        load_audit(paths["audit"], into=audit, on_torn_tail=torn_tail)
    if os.path.exists(paths["prefs"]):
        from repro.storage.snapshot import load_preferences

        for data in load_preferences(paths["prefs"]):
            key = (data.get("user_id"), data.get("preference_id"))
            preferences[key] = data

    expected_lsn = manifest.snapshot_lsn + 1
    for path in list_segments(directory):
        if report.torn:
            break
        scan = scan_segment(path)
        report.segments_scanned += 1
        for frame in scan.frames:
            if frame.lsn < expected_lsn:
                continue  # already folded into the snapshot
            if frame.lsn > expected_lsn:
                report.torn = True
                report.torn_segment = scan.name
                report.torn_reason = "lsn-gap"
                break
            _apply_frame(
                frame.payload, datastore, audit, preferences, extras, report
            )
            report.frames_replayed += 1
            report.last_lsn = frame.lsn
            expected_lsn += 1
        if scan.torn and not report.torn:
            report.torn = True
            report.torn_segment = scan.name
            report.torn_reason = scan.reason

    report.observations_restored = datastore.count()
    report.audit_restored = len(audit)
    report.preferences_restored = len(preferences)
    ordered = [preferences[key] for key in sorted(preferences, key=str)]
    return RecoveredState(
        datastore=datastore,
        audit=audit,
        preferences=ordered,
        report=report,
        compiled_table=extras.get("compiled_table"),
        migrations=extras.get("migrations", {}),
    )


def _apply_frame(
    payload: bytes,
    datastore: Datastore,
    audit: AuditLog,
    preferences: "Dict[tuple, Dict[str, Any]]",
    extras: Dict[str, Any],
    report: RecoveryReport,
) -> None:
    record_type, data = records.decode_record(payload)
    report.records_replayed[record_type] = (
        report.records_replayed.get(record_type, 0) + 1
    )
    if record_type == records.OBS:
        datastore._apply_insert(observation_from_dict(data))
    elif record_type == records.ERASE:
        subject_id = data.get("subject_id")
        if not isinstance(subject_id, str):
            raise StorageError("erase record without subject_id")
        report.erasures_applied += 1
        report.erased_observations += datastore._apply_forget(subject_id)
        for key in [k for k in preferences if k[0] == subject_id]:
            del preferences[key]
        # An erasure replayed after a migration copy also strips the
        # journaled snapshot: a resumed migration must never restore
        # (resurrect) observations the subject asked to be forgotten.
        for entry in extras.get("migrations", {}).values():
            snapshot = entry.get("snapshot")
            if entry.get("user_id") == subject_id and isinstance(snapshot, dict):
                snapshot["observations"] = []
                entry["snapshot_erased"] = True
    elif record_type == records.AUDIT:
        AuditLog.append(audit, audit_record_from_dict(data))
    elif record_type == records.PREF:
        key = (data.get("user_id"), data.get("preference_id"))
        preferences[key] = data
    elif record_type == records.PREF_WITHDRAW_ALL:
        user_id = data.get("user_id")
        for key in [k for k in preferences if k[0] == user_id]:
            del preferences[key]
    elif record_type == records.TABLE:
        # Advisory cache artifact: latest wins, adoption (and version
        # validation) happens in import_table after the rule store is
        # rebuilt.
        extras["compiled_table"] = data
    elif record_type == records.MIGRATION:
        migration_id = data.get("migration_id")
        if not isinstance(migration_id, str) or not migration_id:
            raise StorageError("migration record without migration_id")
        # Latest phase per migration id wins: replay order is log order,
        # so the surviving entry is the furthest phase the shard durably
        # reached before the crash.
        extras.setdefault("migrations", {})[migration_id] = dict(data)


def recover(
    directory: str,
    into_datastore: Optional[Datastore] = None,
    into_audit: Optional[AuditLog] = None,
    retention_by_type: Optional[Dict[str, float]] = None,
    now: Optional[float] = None,
) -> RecoveredState:
    """Full recovery: replay, then sweep retention before serving reads.

    The sweep is part of recovery, not an afterthought: observations
    whose retention expired while the process was down must be gone
    before the first query runs against the recovered state.
    """
    if not is_storage_directory(directory):
        raise StorageError("%r is not a storage directory" % directory)
    state = replay_directory(
        directory, into_datastore=into_datastore, into_audit=into_audit
    )
    if retention_by_type and now is not None:
        state.report.retention_purged = state.datastore.sweep(
            now, retention_by_type
        )
    return state
