"""Durable storage engine: segmented WAL, snapshots, crash recovery.

See ``docs/STORAGE.md`` for the on-disk formats and the recovery
invariants this package guarantees.
"""

from repro.storage.durable import (
    DurableAuditLog,
    DurableDatastore,
    LogTap,
    StorageEngine,
)
from repro.storage.recovery import (
    RecoveredState,
    RecoveryReport,
    is_storage_directory,
    recover,
    replay_directory,
)
from repro.storage.snapshot import (
    CompactionReport,
    Manifest,
    compact_engine,
    read_manifest,
    write_manifest,
)
from repro.storage.wal import (
    DEFAULT_SEGMENT_BYTES,
    Frame,
    SegmentScan,
    WriteAheadLog,
    decode_frame,
    encode_frame,
    list_segments,
    scan_segment,
)

__all__ = [
    "CompactionReport",
    "DEFAULT_SEGMENT_BYTES",
    "DurableAuditLog",
    "DurableDatastore",
    "Frame",
    "LogTap",
    "Manifest",
    "RecoveredState",
    "RecoveryReport",
    "SegmentScan",
    "StorageEngine",
    "WriteAheadLog",
    "compact_engine",
    "decode_frame",
    "encode_frame",
    "is_storage_directory",
    "list_segments",
    "read_manifest",
    "recover",
    "replay_directory",
    "scan_segment",
    "write_manifest",
]
