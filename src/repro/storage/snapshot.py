"""Snapshot + compaction: folding sealed WAL segments away.

A snapshot is the materialized state at a *watermark* LSN, stored as
three JSON-lines files named by that LSN, plus ``MANIFEST.json``
pointing at it::

    {"format": 1, "snapshot_lsn": 1042}

Compaction replays the current snapshot plus every sealed segment into
fresh in-memory state, writes the new snapshot files atomically, moves
the manifest forward, and only then deletes what was folded.  A crash
at any point leaves either the old manifest (old snapshot + segments
intact: nothing lost) or the new manifest (new snapshot complete:
leftover files are garbage, collected by the next compaction).

Erasure interaction -- the DSAR guarantee: an ``erase`` record in the
log makes the replay *physically drop* every earlier observation of
that subject, so after compaction the erased data exists nowhere on
disk: not in the snapshot (it was folded out) and not in the segments
(they were deleted).  Recovery can therefore never resurrect it.

Retention interaction: when given the building's retention map and the
current time, compaction sweeps expired observations out of the new
snapshot as well.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import StorageError

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = 1

OBS_SNAPSHOT_PATTERN = "snapshot-%016d.obs.jsonl"
AUDIT_SNAPSHOT_PATTERN = "snapshot-%016d.audit.jsonl"
PREFS_SNAPSHOT_PATTERN = "snapshot-%016d.prefs.jsonl"


@dataclass(frozen=True)
class Manifest:
    """The durable watermark: state at ``snapshot_lsn`` is snapshotted."""

    snapshot_lsn: int = 0
    format: int = MANIFEST_FORMAT

    def to_dict(self) -> Dict[str, Any]:
        return {"format": self.format, "snapshot_lsn": self.snapshot_lsn}


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def read_manifest(directory: str) -> Manifest:
    """The directory's manifest; a missing file means a fresh store."""
    path = manifest_path(directory)
    if not os.path.exists(path):
        return Manifest()
    try:
        with open(path) as handle:
            data = json.load(handle)
        manifest = Manifest(
            snapshot_lsn=int(data["snapshot_lsn"]), format=int(data["format"])
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise StorageError("corrupt manifest %s: %s" % (path, exc)) from None
    if manifest.format != MANIFEST_FORMAT:
        raise StorageError(
            "unsupported storage format %d in %s" % (manifest.format, path)
        )
    if manifest.snapshot_lsn < 0:
        raise StorageError("negative snapshot_lsn in %s" % path)
    return manifest


def write_manifest(directory: str, manifest: Manifest) -> None:
    """Atomically persist ``manifest`` (temp file + rename)."""
    path = manifest_path(directory)
    temp_path = path + ".tmp"
    with open(temp_path, "w") as handle:
        json.dump(manifest.to_dict(), handle, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)


def snapshot_paths(directory: str, snapshot_lsn: int) -> Dict[str, str]:
    """The three snapshot file paths for a watermark LSN."""
    return {
        "obs": os.path.join(directory, OBS_SNAPSHOT_PATTERN % snapshot_lsn),
        "audit": os.path.join(directory, AUDIT_SNAPSHOT_PATTERN % snapshot_lsn),
        "prefs": os.path.join(directory, PREFS_SNAPSHOT_PATTERN % snapshot_lsn),
    }


def save_preferences(preferences: List[Dict[str, Any]], path: str) -> int:
    """Snapshot preference dicts (one JSON object per line), atomically."""
    temp_path = path + ".tmp"
    count = 0
    with open(temp_path, "w") as handle:
        for data in preferences:
            handle.write(json.dumps(data, separators=(",", ":"), sort_keys=True))
            handle.write("\n")
            count += 1
    os.replace(temp_path, path)
    return count


def load_preferences(path: str) -> List[Dict[str, Any]]:
    """Load a preference snapshot (torn final line tolerated)."""
    from repro.tippers.persistence import _iter_data_lines, _report_torn_tail

    preferences: List[Dict[str, Any]] = []
    for line_no, line, is_final in _iter_data_lines(path):
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise StorageError("preference line is not an object")
        except (json.JSONDecodeError, StorageError) as exc:
            wrapped = exc if isinstance(exc, StorageError) else StorageError(str(exc))
            if is_final:
                _report_torn_tail(path, line_no, wrapped, None)
                break
            raise StorageError(
                "%s (line %d of %s)" % (wrapped, line_no, path)
            ) from None
        preferences.append(data)
    return preferences


@dataclass
class CompactionReport:
    """What one compaction pass folded."""

    snapshot_lsn: int = 0
    segments_folded: int = 0
    frames_folded: int = 0
    observations_snapshotted: int = 0
    audit_snapshotted: int = 0
    preferences_snapshotted: int = 0
    erasures_folded: int = 0
    erased_observations_dropped: int = 0
    retention_purged: int = 0
    obsolete_files_removed: int = 0
    folded_segments: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_lsn": self.snapshot_lsn,
            "segments_folded": self.segments_folded,
            "frames_folded": self.frames_folded,
            "observations_snapshotted": self.observations_snapshotted,
            "audit_snapshotted": self.audit_snapshotted,
            "preferences_snapshotted": self.preferences_snapshotted,
            "erasures_folded": self.erasures_folded,
            "erased_observations_dropped": self.erased_observations_dropped,
            "retention_purged": self.retention_purged,
            "obsolete_files_removed": self.obsolete_files_removed,
            "folded_segments": list(self.folded_segments),
        }


def _collect_garbage(directory: str, keep_lsn: int, report: CompactionReport) -> None:
    """Delete snapshot files for watermarks other than ``keep_lsn``."""
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("snapshot-") and name.endswith(".jsonl")):
            continue
        try:
            lsn = int(name.split("-", 1)[1].split(".", 1)[0])
        except (ValueError, IndexError):
            continue
        if lsn != keep_lsn:
            os.remove(os.path.join(directory, name))
            report.obsolete_files_removed += 1


def compact_engine(
    engine: Any,
    retention_by_type: Optional[Dict[str, float]] = None,
    now: Optional[float] = None,
) -> CompactionReport:
    """Fold the engine's sealed segments into a fresh snapshot.

    ``engine`` is a :class:`~repro.storage.durable.StorageEngine`
    (duck-typed to avoid an import cycle).  The active segment is
    rotated first, so every frame written so far is folded and the
    post-compaction log starts empty.
    """
    from repro.storage.recovery import replay_directory
    from repro.tippers.persistence import save_audit, save_datastore

    directory = engine.directory
    engine.wal.rotate()
    state = replay_directory(directory)
    report = CompactionReport(
        frames_folded=state.report.frames_replayed,
        erasures_folded=state.report.erasures_applied,
        erased_observations_dropped=state.report.erased_observations,
    )
    if retention_by_type and now is not None:
        report.retention_purged = state.datastore.sweep(now, retention_by_type)

    new_lsn = max(state.report.last_lsn, state.report.snapshot_lsn)
    paths = snapshot_paths(directory, new_lsn)
    report.snapshot_lsn = new_lsn
    report.observations_snapshotted = save_datastore(state.datastore, paths["obs"])
    report.audit_snapshotted = save_audit(state.audit, paths["audit"])
    report.preferences_snapshotted = save_preferences(
        state.preferences, paths["prefs"]
    )
    write_manifest(directory, Manifest(snapshot_lsn=new_lsn))

    # The watermark has moved: everything it folded is now garbage.
    for path in engine.wal.sealed_paths():
        report.folded_segments.append(os.path.basename(path))
        os.remove(path)
    report.segments_folded = len(report.folded_segments)
    _collect_garbage(directory, new_lsn, report)
    return report
