"""The storage engine and the durable store/log wrappers.

:class:`StorageEngine` owns one on-disk directory::

    <dir>/
      MANIFEST.json                   snapshot watermark (see snapshot.py)
      snapshot-<lsn>.obs.jsonl        observation snapshot at that LSN
      snapshot-<lsn>.audit.jsonl      audit snapshot
      snapshot-<lsn>.prefs.jsonl      preference snapshot
      wal-00000001.seg ...            WAL segments (last one active)

Everything that must survive a restart goes through ``log_*`` methods,
which append one record to the WAL *before* the in-memory apply --
write-ahead ordering is what makes the recovery invariants hold:

- an acknowledged mutation is durable (the frame was flushed first);
- a crash mid-append loses at most the record being written;
- an erasure, once acknowledged, can never be un-done by replay,
  because the erase record itself is in the log after the data.

:class:`DurableDatastore` and :class:`DurableAuditLog` are drop-in
subclasses of the in-memory structures that route every write through
the engine.  Recovery replays *around* them (base-class applies), and
``engine.replaying`` turns ``log_*`` into no-ops so replayed state is
not re-logged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.enforcement.audit import AuditLog, AuditRecord
from repro.core.policy.preference import UserPreference
from repro.core.policy.serialization import preference_to_dict
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.sensors.base import Observation
from repro.storage import records
from repro.storage.wal import DEFAULT_SEGMENT_BYTES, WalPlane, WriteAheadLog
from repro.tippers.datastore import Datastore
from repro.tippers.persistence import audit_record_to_dict

#: Observed by the chaos harness: called with ``(record_type, data)``
#: for every record submitted for logging, *before* the WAL write (so a
#: crashed append is still observed -- the submitted sequence is the
#: reference the audit-prefix invariant is checked against).
LogTap = Callable[[str, Dict[str, Any]], None]


class StorageEngine:
    """Durable storage for observations, audit, and preferences."""

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        from repro.storage.snapshot import read_manifest

        self.directory = directory
        self.metrics = metrics if metrics is not None else get_registry()
        manifest = read_manifest(directory)
        self.wal = WriteAheadLog(
            directory,
            segment_bytes=segment_bytes,
            start_lsn=manifest.snapshot_lsn + 1,
        )
        #: While True, ``log_*`` methods are no-ops (recovery replay).
        self.replaying = False
        self.taps: List[LogTap] = []
        self._m_appends: Dict[str, Any] = {
            record_type: self.metrics.counter(
                "storage_wal_appends_total", {"type": record_type}
            )
            for record_type in records.RECORD_TYPES
        }
        self._m_bytes = self.metrics.counter("storage_wal_bytes_total")
        self._m_sealed = self.metrics.counter("storage_wal_segments_sealed_total")

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def log(self, record_type: str, data: Dict[str, Any]) -> Optional[int]:
        """Append one logical record; returns its LSN (None if replaying)."""
        if self.replaying:
            return None
        for tap in self.taps:
            tap(record_type, data)
        payload = records.encode_record(record_type, data)
        sealed_before = self.wal.segments_sealed
        lsn = self.wal.append(payload, record_type=record_type)
        self._m_appends[record_type].inc()
        self._m_bytes.inc(len(payload))
        if self.wal.segments_sealed > sealed_before:
            self._m_sealed.inc(self.wal.segments_sealed - sealed_before)
        return lsn

    def log_observation(self, observation: Observation) -> Optional[int]:
        return self.log(records.OBS, observation.to_dict())

    def log_forget(self, subject_id: str) -> Optional[int]:
        return self.log(records.ERASE, {"subject_id": subject_id})

    def log_audit(self, record: AuditRecord) -> Optional[int]:
        return self.log(records.AUDIT, audit_record_to_dict(record))

    def log_preference(self, preference: UserPreference) -> Optional[int]:
        return self.log(records.PREF, preference_to_dict(preference))

    def log_withdraw_all(self, user_id: str) -> Optional[int]:
        return self.log(records.PREF_WITHDRAW_ALL, {"user_id": user_id})

    def log_compiled_table(self, data: Dict[str, Any]) -> Optional[int]:
        """Log a compiled enforcement table (advisory; latest wins).

        ``data`` is :func:`repro.core.enforcement.tables.export_table`
        output.  Recovery surfaces the newest logged table so a restart
        can re-adopt still-valid shards instead of re-warming; a stale
        or unreadable table costs warm-up misses, never correctness.
        """
        return self.log(records.TABLE, data)

    def log_migration(self, data: Dict[str, Any]) -> Optional[int]:
        """Journal one phase of a cross-shard user migration.

        ``data`` carries ``migration_id``/``user_id``/``from``/``to``/
        ``phase`` (plus the frozen snapshot on the ``copy`` phase).
        Replay surfaces the latest phase per migration id so a restarted
        shard can resume or roll back an in-flight migration; a DSAR
        erasure replayed after the copy strips the journaled snapshot so
        erased observations can never be resurrected from the journal.
        """
        return self.log(records.MIGRATION, data)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(
        self,
        retention_by_type: Optional[Dict[str, float]] = None,
        now: Optional[float] = None,
    ) -> "Any":
        """Fold sealed segments into the snapshot; see snapshot.py."""
        from repro.storage.snapshot import compact_engine

        report = compact_engine(self, retention_by_type=retention_by_type, now=now)
        self.metrics.counter("storage_compactions_total").inc()
        return report

    # ------------------------------------------------------------------
    # Fault planes (chaos harness)
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: WalPlane) -> None:
        self.wal.install_fault_plane(plane)

    def remove_fault_plane(self, plane: WalPlane) -> None:
        self.wal.remove_fault_plane(plane)

    def close(self) -> None:
        self.wal.close()


class DurableDatastore(Datastore):
    """A datastore whose writes survive a crash.

    Write order per mutation: write-failure guard (the PR-3 fault
    plane), then WAL append, then the in-memory apply.  A guarded
    failure writes nothing; a crash during the WAL append leaves memory
    untouched, so the in-memory state is always a prefix of the log.
    """

    def __init__(self, engine: StorageEngine) -> None:
        super().__init__()
        self.engine = engine

    def insert(self, observation: Observation) -> None:
        self._guard_write("insert", observation.sensor_type)
        self.engine.log_observation(observation)
        self._apply_insert(observation)

    def forget_subject(self, subject_id: str) -> int:
        self._guard_write("forget", subject_id)
        self.engine.log_forget(subject_id)
        return self._apply_forget(subject_id)


class DurableAuditLog(AuditLog):
    """An audit log whose records survive a crash."""

    def __init__(
        self,
        engine: StorageEngine,
        capacity: int = 100_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(capacity=capacity, metrics=metrics)
        self.engine = engine

    def append(self, record: AuditRecord) -> None:
        self.engine.log_audit(record)
        super().append(record)
