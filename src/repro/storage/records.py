"""The logical records carried inside WAL frames.

A record is ``(type, data)`` where ``data`` is a JSON-compatible dict.
The wire form is canonical compact JSON (sorted keys), so a given
logical record always encodes to the same bytes -- which is what makes
same-seed chaos runs produce byte-identical logs.

Record types:

======================  ================================================
``obs``                 one stored observation (``Observation.to_dict``)
``erase``               a DSAR erasure of every observation of a subject
``audit``               one enforcement decision (audit record dict)
``pref``                a submitted user preference (latest wins per id)
``pref_withdraw_all``   all of a user's preferences were withdrawn
``table``               a compiled enforcement decision table (advisory
                        cache artifact; latest wins, dropped by
                        compaction)
``migration``           one phase of a cross-shard user migration
                        (journal entry; latest phase per migration id
                        wins on replay)
======================  ================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro.errors import StorageError

OBS = "obs"
ERASE = "erase"
AUDIT = "audit"
PREF = "pref"
PREF_WITHDRAW_ALL = "pref_withdraw_all"
TABLE = "table"
MIGRATION = "migration"

RECORD_TYPES = (OBS, ERASE, AUDIT, PREF, PREF_WITHDRAW_ALL, TABLE, MIGRATION)


def encode_record(record_type: str, data: Dict[str, Any]) -> bytes:
    """The canonical payload bytes for one logical record."""
    if record_type not in RECORD_TYPES:
        raise StorageError("unknown record type %r" % record_type)
    return json.dumps(
        {"t": record_type, "d": data},
        separators=(",", ":"),
        sort_keys=True,
        allow_nan=False,
    ).encode("utf-8")


def decode_record(payload: bytes) -> Tuple[str, Dict[str, Any]]:
    """Parse one record payload; raises :class:`StorageError` on garbage."""
    try:
        envelope = json.loads(payload.decode("utf-8"))
        record_type = envelope["t"]
        data = envelope["d"]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise StorageError("malformed storage record: %s" % exc) from None
    if record_type not in RECORD_TYPES or not isinstance(data, dict):
        raise StorageError("malformed storage record envelope")
    return record_type, data
