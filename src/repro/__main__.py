"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
figure1 [--population N] [--persona NAME]
    Run the paper's Figure-1 interaction end to end and print the
    per-step report.
lint [paths...] [--format text|json|sarif] [--select RULES] [--flow]
    With no paths: statically audit the default DBH policy set, its
    advertisement registry, and the deployed sensors (policy rules
    P001-P010 plus the reasoner's legacy checks).  With paths: run the
    AST code lint (rules C001-C007) over every ``*.py`` file under
    them.  With ``--flow``: run the interprocedural privacy-flow
    analysis (rules F001-F006) over the paths (default ``src``),
    subtracting the committed ``flow_baseline.json`` unless
    ``--no-baseline`` (or ``--baseline PATH`` picks another file);
    ``--write-baseline PATH`` pins the current findings instead of
    reporting them.  Exits 0 when clean, 1 on findings, 2 on usage
    errors.
inventory
    Print the synthetic Donald Bren Hall inventory.
obs [--population N] [--ticks N] [--json PATH] [--traces N]
    Run the Figure-1 interaction against a fresh metrics registry and
    print the observability snapshot (counters, latency histograms with
    p50/p95/p99, cache hit ratio, span trees).
chaos [--plan NAME] [--seed N] [--population N] [--ticks N] [--json] [--trace]
    Run the compact pipeline under a named fault plan (deterministic
    fault injection) and report delivered/dropped/degraded counts, the
    faults fired, and optionally the full fault trace.  ``--list`` (or
    ``--plan list``) prints the shipped plans with one-line summaries.
    With ``--recover``, run the storage crash-recovery scenario
    instead: crash a storage-backed run via the plan's WAL faults,
    recover, and check the recovery invariants (exit 1 if any is
    violated); ``--report-out PATH`` writes the deterministic report
    text for byte-diffing two same-seed runs.
overload [--plan NAME] [--seed N] [--population N] [--ticks N] [--json]
    Run the overload scenario: admission control, priority load
    shedding, and privacy-preserving brownout under a burst fault plan
    (default ``rush-hour``).  Checks the overload invariants -- zero
    CRITICAL sheds, DEFERRABLE shed rate above zero, every degraded
    response marked in the audit record -- and exits 1 if any is
    violated.  ``--no-admission`` runs the same workload with the
    controller disabled (the ablation baseline); ``--report-out PATH``
    writes the deterministic report text for byte-diffing.
federate [--plan NAME] [--seed N] [--population N] [--ticks N] [--json]
    Run the multi-building federation scenario: a campus of
    independently-WAL'd TIPPERS shards behind a consistent-hash router,
    IoTA roaming handoffs with ``roaming:<home>`` audit markers, a shard
    crash + WAL recovery mid-run, and a campus-wide DSAR fan-out with
    per-shard compaction (default plan ``campus-storm``).  The report is
    seeded and byte-reproducible; exits 1 if any federation invariant is
    violated.  ``--report-out PATH`` writes the report text for
    byte-diffing; ``--dir PATH`` keeps each shard's WAL directory.
rebalance [--plan NAME] [--seed N] [--population N] [--ticks N] [--json]
    Run the elastic-membership scenario: a building joins the campus
    hash ring and another drains out, with every displaced user moved
    by the two-phase WAL-journaled migration protocol -- under the
    ``ring-change`` plan, which partitions one finalize acknowledgement
    and crashes a destination shard mid-import.  Checks the rebalancing
    invariants (journal-guided convergence, marked forwarded decisions,
    fail-closed dark windows, no post-DSAR resurrection, breaker
    eviction on decommission) and exits 1 if any is violated.  The
    report is byte-reproducible; ``--report-out PATH`` writes it for
    diffing and ``--dir PATH`` keeps each shard's WAL directory.
recover --dir PATH [--json]
    Replay an existing storage directory (snapshot + WAL) and print the
    recovery report without mutating it.
bench run|record|compare
    The recorded perf trajectory.  ``run`` executes the scale suite and
    prints (or writes) a schema-validated record; ``record`` appends it
    as the next ``BENCH_<n>.json`` on the trajectory; ``compare`` gates
    a fresh run (or a given candidate file) against the last committed
    record with per-metric tolerances -- exit 0 on pass, 1 on
    regression, 2 when no baseline/usage error.
soak [--populations CSV] [--seed N] [--ticks N] [--json] [--report-out PATH]
    The stepped-population capacity soak: find the max sustainable
    population under the latency/memory ceilings.  The report is
    seeded and byte-reproducible.  Exit 0 when some step is
    sustainable, 1 when none is.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.simulation.scenario import run_figure1_scenario

    report = run_figure1_scenario(
        population=args.population, mary_persona=args.persona
    )
    for step in report.steps:
        print("step %2d | %-48s %7.3fs" % (step.step, step.title, step.elapsed_s))
        print("        |   %s" % step.detail)
    print("before opt-out: %s | after opt-out: %s" % (
        "ALLOWED" if report.location_allowed_before_optout else "DENIED",
        "ALLOWED" if report.location_allowed_after_optout else "DENIED",
    ))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        exit_code,
        expand_selection,
        lint_dbh_scenario,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )
    from repro.errors import AnalysisError

    if args.flow:
        return _cmd_lint_flow(args)
    if args.baseline or args.no_baseline or args.write_baseline:
        print("error: baseline options require --flow", file=sys.stderr)
        return 2

    try:
        selection = expand_selection(args.select)
        if args.paths:
            findings = lint_paths(args.paths, select=selection)
        else:
            findings = lint_dbh_scenario(select=selection)
    except AnalysisError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(render_json(findings), indent=2, sort_keys=True))
        return exit_code(findings)
    if args.format == "sarif":
        print(json.dumps(render_sarif(findings), indent=2, sort_keys=True))
        return exit_code(findings)

    if not args.paths and not findings:
        # Legacy reasoner checks still back the no-path audit; keep the
        # "policy set is clean" phrasing the test suite (and humans)
        # rely on.
        legacy = _legacy_policy_findings()
        if legacy:
            for finding in legacy:
                print(finding)
            return 1
        print("policy set is clean")
        return 0

    for line in render_text(findings):
        print(line)
    if not findings:
        print("no findings")
    return exit_code(findings)


def _cmd_lint_flow(args: argparse.Namespace) -> int:
    """``lint --flow``: the interprocedural privacy-flow analysis."""
    import json
    import os

    from repro.analysis import (
        analyze_flow_paths,
        apply_baseline,
        baseline_from_findings,
        exit_code,
        expand_selection,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from repro.errors import AnalysisError

    paths = args.paths or ["src"]
    try:
        selection = expand_selection(args.select)
        findings = analyze_flow_paths(paths, select=selection)
    except AnalysisError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline = baseline_from_findings(findings)
        try:
            write_baseline(baseline, args.write_baseline)
        except AnalysisError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        print("baseline with %d entry(ies) written to %s"
              % (len(baseline.entries), args.write_baseline))
        return 0

    stale = []
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if os.path.isfile("flow_baseline.json"):
            baseline_path = "flow_baseline.json"
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except AnalysisError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        payload = render_json(findings)
        payload["stale_baseline_entries"] = [
            entry.to_dict() for entry in stale
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return exit_code(findings)
    if args.format == "sarif":
        print(json.dumps(render_sarif(findings), indent=2, sort_keys=True))
        return exit_code(findings)
    for line in render_text(findings):
        print(line)
    if not findings:
        print("no findings")
    for entry in stale:
        # Stale entries go to stderr and never change the exit code:
        # they mean the tree got *cleaner* than the baseline records.
        print("stale baseline entry: %s %s %s" % entry.key(),
              file=sys.stderr)
    return exit_code(findings)


def _legacy_policy_findings():
    from repro.core.policy import catalog
    from repro.core.reasoner.analysis import analyze_policies, errors_only
    from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
    from repro.spatial.model import SpaceType

    tippers = make_dbh_tippers()
    rooms = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]
    policies = [
        catalog.policy_1_comfort(rooms),
        catalog.policy_2_emergency_location(BUILDING_ID),
        catalog.policy_3_meeting_room_access(rooms[:5]),
        catalog.policy_service_sharing(BUILDING_ID),
    ]
    deployed = {s.sensor_type for s in tippers.sensor_manager.sensors()}
    return errors_only(analyze_policies(policies, deployed_sensor_types=deployed))


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.simulation.dbh import make_dbh_tippers
    from repro.spatial.model import SpaceType

    tippers = make_dbh_tippers()
    spatial = tippers.spatial
    print("spaces:")
    for space_type in SpaceType:
        count = len(spatial.spaces_of_type(space_type))
        if count:
            print("  %-10s %4d" % (space_type.value, count))
    print("sensors:")
    by_type: dict = {}
    for sensor in tippers.sensor_manager.sensors():
        by_type[sensor.sensor_type] = by_type.get(sensor.sensor_type, 0) + 1
    for sensor_type, count in sorted(by_type.items()):
        print("  %-20s %4d" % (sensor_type, count))
    print("total sensors: %d" % tippers.sensor_manager.count())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.simulation.scenario import run_figure1_scenario

    registry = obs.MetricsRegistry()
    tracer = obs.Tracer()
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer)
    try:
        run_figure1_scenario(
            population=args.population,
            capture_ticks=args.ticks,
            cache_decisions=True,
        )
    finally:
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

    print("== observability snapshot (Figure-1 run, population %d, %d ticks) =="
          % (args.population, args.ticks))
    for line in registry.render():
        print(line)

    hits = registry.total("enforcement_cache_total", {"result": "hit"})
    lookups = registry.total("enforcement_cache_total")
    ratio = hits / lookups if lookups else 0.0
    print()
    print("enforcement cache hit ratio: %.3f (%d hits / %d lookups)"
          % (ratio, hits, lookups))

    if args.traces:
        print()
        print("== slowest traces ==")
        for root in tracer.slowest_roots(args.traces):
            for line in root.tree_lines():
                print(line)

    if args.json:
        payload = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w") as handle:
                    handle.write(payload + "\n")
            except OSError as error:
                print("error: cannot write %s: %s" % (args.json, error),
                      file=sys.stderr)
                return 1
            print()
            print("snapshot written to %s" % args.json)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultError
    from repro.faults import describe_plans
    from repro.simulation.chaos import run_chaos_scenario

    if args.list or args.plan == "list":
        for line in describe_plans():
            print(line)
        return 0
    if args.recover:
        return _chaos_recover(args)
    try:
        report = run_chaos_scenario(
            plan_name=args.plan,
            seed=args.seed,
            population=args.population,
            ticks=args.ticks,
        )
    except FaultError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.summary_lines():
            print(line)
    if args.trace:
        print()
        print("== fault trace ==")
        sys.stdout.write(report.trace_text)
    return 0


def _chaos_recover(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultError
    from repro.simulation.recover import run_recovery_scenario

    try:
        report = run_recovery_scenario(
            plan_name=args.plan if args.plan != "monkey" else "torn-storage",
            seed=args.seed,
            population=args.population,
            ticks=args.ticks,
        )
    except FaultError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(report.report_text)
    if args.report_out:
        try:
            with open(args.report_out, "w") as handle:
                handle.write(report.report_text)
        except OSError as error:
            print("error: cannot write %s: %s" % (args.report_out, error),
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def _cmd_overload(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultError
    from repro.simulation.overload import run_overload_scenario

    try:
        report = run_overload_scenario(
            plan_name=args.plan,
            seed=args.seed,
            population=args.population,
            ticks=args.ticks,
            admission=not args.no_admission,
        )
    except FaultError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(report.report_text)
    if args.trace:
        print()
        print("== fault trace ==")
        sys.stdout.write(report.trace_text)
    if args.report_out:
        try:
            with open(args.report_out, "w") as handle:
                handle.write(report.report_text)
        except OSError as error:
            print("error: cannot write %s: %s" % (args.report_out, error),
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def _cmd_federate(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultError, FederationError
    from repro.simulation.federate import run_federate_scenario

    buildings = None
    if args.buildings:
        buildings = [b.strip() for b in args.buildings.split(",") if b.strip()]
    try:
        kwargs = {}
        if buildings is not None:
            kwargs["buildings"] = buildings
        report = run_federate_scenario(
            plan_name=args.plan,
            seed=args.seed,
            population=args.population,
            ticks=args.ticks,
            directory=args.dir,
            **kwargs
        )
    except (FaultError, FederationError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(report.report_text)
    if args.report_out:
        try:
            with open(args.report_out, "w") as handle:
                handle.write(report.report_text)
        except OSError as error:
            print("error: cannot write %s: %s" % (args.report_out, error),
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def _cmd_rebalance(args: argparse.Namespace) -> int:
    import json

    from repro.errors import FaultError, FederationError
    from repro.simulation.rebalance import run_rebalance_scenario

    buildings = None
    if args.buildings:
        buildings = [b.strip() for b in args.buildings.split(",") if b.strip()]
    try:
        kwargs = {}
        if buildings is not None:
            kwargs["buildings"] = buildings
        report = run_rebalance_scenario(
            plan_name=args.plan,
            seed=args.seed,
            population=args.population,
            ticks=args.ticks,
            directory=args.dir,
            **kwargs
        )
    except (FaultError, FederationError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(report.report_text)
    if args.report_out:
        try:
            with open(args.report_out, "w") as handle:
                handle.write(report.report_text)
        except OSError as error:
            print("error: cannot write %s: %s" % (args.report_out, error),
                  file=sys.stderr)
            return 2
    return 0 if report.ok else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from repro.errors import StorageError
    from repro.storage.recovery import recover

    try:
        state = recover(args.dir)
    except StorageError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(state.report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(state.report.to_text())
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    import json

    from repro import bench
    from repro.errors import BenchError

    try:
        record = bench.run_suite(
            scale=args.scale,
            label=args.label,
            progress=lambda name: print("running %s ..." % name,
                                        file=sys.stderr),
        )
    except BenchError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.out:
        try:
            bench.write_record(record, args.out)
        except BenchError as error:
            print("error: %s" % error, file=sys.stderr)
            return 2
        print("record written to %s" % args.out)
        return 0
    if args.json:
        sys.stdout.write(record.dumps())
    else:
        for line in _bench_lines(record):
            print(line)
    return 0


def _bench_lines(record) -> List[str]:
    lines = [
        "bench record: scale=%s label=%s peak_rss_kb=%d"
        % (record.scale, record.label or "-", record.peak_rss_kb),
    ]
    for name, entry in sorted(record.benchmarks.items()):
        latency = entry.decision_latency
        lines.append(
            "  %-22s p50=%-10.3fus p99=%-10.3fus throughput=%-12.1f/s "
            "shed=%.4f brownout=%.4f wal=%dB"
            % (name, latency.p50_us, latency.p99_us,
               entry.ingest_throughput_per_s, entry.shed_rate,
               entry.brownout_rate, entry.wal_bytes)
        )
    return lines


def _cmd_bench_record(args: argparse.Namespace) -> int:
    from repro import bench
    from repro.errors import BenchError

    try:
        record = bench.run_suite(
            scale=args.scale,
            label=args.label,
            progress=lambda name: print("running %s ..." % name,
                                        file=sys.stderr),
        )
        numbered, path = bench.append_record(record, args.dir)
    except BenchError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    print("recorded BENCH_%04d at %s" % (numbered.record_id, path))
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    import json

    from repro import bench
    from repro.errors import BenchError

    try:
        if args.baseline:
            baseline = bench.load_record(args.baseline)
        else:
            baseline = bench.latest_record(args.dir)
        if baseline is None:
            print("error: no BENCH_<n>.json baseline in %s" % args.dir,
                  file=sys.stderr)
            return 2
        if args.candidate:
            candidate = bench.load_record(args.candidate)
        else:
            candidate = bench.run_suite(
                scale=args.scale,
                label="compare-candidate",
                progress=lambda name: print("running %s ..." % name,
                                            file=sys.stderr),
            )
        tolerances = bench.Tolerances(
            latency_factor=args.latency_tolerance,
            throughput_factor=args.throughput_tolerance,
            rate_slack=args.rate_slack,
        )
        report = bench.compare_records(baseline, candidate, tolerances)
    except BenchError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for line in report.lines():
            print(line)
    return 0 if report.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from repro.simulation.longrun import SOAK_POPULATIONS, run_capacity_soak

    populations = SOAK_POPULATIONS
    if args.populations:
        try:
            populations = tuple(
                int(token) for token in args.populations.split(",") if token
            )
        except ValueError:
            print("error: --populations must be a CSV of integers",
                  file=sys.stderr)
            return 2
    try:
        report = run_capacity_soak(
            populations=populations,
            seed=args.seed,
            ticks=args.ticks,
            active_cap=args.active_cap,
            latency_ceiling_us=args.latency_ceiling_us,
            memory_ceiling_mb=args.memory_ceiling_mb,
        )
    except ValueError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(report.report_text())
    if args.report_out:
        try:
            with open(args.report_out, "w") as handle:
                handle.write(report.report_text())
        except OSError as error:
            print("error: cannot write %s: %s" % (args.report_out, error),
                  file=sys.stderr)
            return 2
    return 0 if report.max_sustainable_population > 0 else 1


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Privacy-aware smart buildings (ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="run the Figure-1 interaction")
    figure1.add_argument("--population", type=_positive_int, default=25)
    figure1.add_argument(
        "--persona",
        choices=("unconcerned", "pragmatist", "fundamentalist"),
        default="fundamentalist",
    )
    figure1.set_defaults(func=_cmd_figure1)

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: policy audit (no paths) or code lint (paths)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to code-lint; omit to audit the DBH policy set",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids or prefixes (e.g. C003 or P)",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="run the interprocedural privacy-flow analysis "
             "(rules F001-F006) over the paths (default: src)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="with --flow: baseline file to subtract "
             "(default: ./flow_baseline.json when present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="with --flow: ignore any baseline file",
    )
    lint.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="with --flow: pin the current findings as a baseline and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    inventory = subparsers.add_parser("inventory", help="print the DBH inventory")
    inventory.set_defaults(func=_cmd_inventory)

    obs = subparsers.add_parser(
        "obs", help="run Figure 1 and print the observability snapshot"
    )
    obs.add_argument("--population", type=_positive_int, default=15)
    obs.add_argument("--ticks", type=_positive_int, default=5)
    obs.add_argument("--json", default=None, metavar="PATH",
                     help="also dump the snapshot as JSON ('-' for stdout)")
    obs.add_argument("--traces", type=int, default=3,
                     help="number of slowest span trees to print (0 disables)")
    obs.set_defaults(func=_cmd_obs)

    chaos = subparsers.add_parser(
        "chaos", help="run the pipeline under a named fault plan"
    )
    chaos.add_argument(
        "--plan", default="monkey",
        help="fault plan name, or 'list' to enumerate (default: monkey)",
    )
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument("--population", type=_positive_int, default=8)
    chaos.add_argument("--ticks", type=_positive_int, default=6)
    chaos.add_argument("--json", action="store_true",
                       help="print the report as JSON")
    chaos.add_argument("--trace", action="store_true",
                       help="also print the full fault trace")
    chaos.add_argument(
        "--recover", action="store_true",
        help="run the crash-recovery scenario (default plan: torn-storage)",
    )
    chaos.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="with --recover: also write the deterministic report text here",
    )
    chaos.add_argument(
        "--list", action="store_true",
        help="enumerate the shipped fault plans and exit",
    )
    chaos.set_defaults(func=_cmd_chaos)

    overload = subparsers.add_parser(
        "overload",
        help="run the admission-control overload scenario",
    )
    overload.add_argument(
        "--plan", default="rush-hour",
        help="fault plan name (default: rush-hour)",
    )
    overload.add_argument("--seed", type=int, default=11)
    overload.add_argument("--population", type=_positive_int, default=8)
    overload.add_argument("--ticks", type=_positive_int, default=12)
    overload.add_argument("--json", action="store_true",
                          help="print the report as JSON")
    overload.add_argument("--trace", action="store_true",
                          help="also print the full fault trace")
    overload.add_argument(
        "--no-admission", action="store_true",
        help="disable the admission controller (ablation baseline)",
    )
    overload.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the deterministic report text here",
    )
    overload.set_defaults(func=_cmd_overload)

    federate = subparsers.add_parser(
        "federate",
        help="run the multi-building federation scenario",
    )
    federate.add_argument(
        "--plan", default="campus-storm",
        help="fault plan name (default: campus-storm)",
    )
    federate.add_argument("--seed", type=int, default=17)
    federate.add_argument("--population", type=_positive_int, default=12)
    federate.add_argument("--ticks", type=_positive_int, default=16)
    federate.add_argument(
        "--buildings", default=None, metavar="CSV",
        help="comma-separated building ids (default: bldg-a..bldg-d)",
    )
    federate.add_argument(
        "--dir", default=None, metavar="PATH",
        help="keep each shard's WAL under this storage root",
    )
    federate.add_argument("--json", action="store_true",
                          help="print the report as JSON")
    federate.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the deterministic report text here",
    )
    federate.set_defaults(func=_cmd_federate)

    rebalance = subparsers.add_parser(
        "rebalance",
        help="run the elastic-membership rebalancing scenario",
    )
    rebalance.add_argument(
        "--plan", default="ring-change",
        help="fault plan name (default: ring-change)",
    )
    rebalance.add_argument("--seed", type=int, default=23)
    rebalance.add_argument("--population", type=_positive_int, default=24)
    rebalance.add_argument("--ticks", type=_positive_int, default=12)
    rebalance.add_argument(
        "--buildings", default=None, metavar="CSV",
        help="comma-separated initial building ids (default: bldg-a..bldg-c)",
    )
    rebalance.add_argument(
        "--dir", default=None, metavar="PATH",
        help="keep each shard's WAL under this storage root",
    )
    rebalance.add_argument("--json", action="store_true",
                           help="print the report as JSON")
    rebalance.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the deterministic report text here",
    )
    rebalance.set_defaults(func=_cmd_rebalance)

    recover = subparsers.add_parser(
        "recover", help="replay a storage directory and print the recovery report"
    )
    recover.add_argument("--dir", required=True,
                         help="storage directory (MANIFEST.json + wal-*.seg)")
    recover.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    recover.set_defaults(func=_cmd_recover)

    bench = subparsers.add_parser(
        "bench", help="run/record/compare the perf trajectory"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run the scale suite and print the record"
    )
    bench_run.add_argument(
        "--scale", choices=("smoke", "ci", "full"), default="ci",
        help="workload sizing preset (default: ci)",
    )
    bench_run.add_argument("--label", default="",
                           help="free-form label stored in the record")
    bench_run.add_argument("--json", action="store_true",
                           help="print the raw record JSON")
    bench_run.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the record to PATH instead of printing",
    )
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_record = bench_sub.add_parser(
        "record", help="append the next BENCH_<n>.json to the trajectory"
    )
    bench_record.add_argument(
        "--scale", choices=("smoke", "ci", "full"), default="ci",
    )
    bench_record.add_argument("--label", default="")
    bench_record.add_argument(
        "--dir", default=".",
        help="trajectory directory (default: current directory)",
    )
    bench_record.set_defaults(func=_cmd_bench_record)

    bench_compare = bench_sub.add_parser(
        "compare", help="gate a candidate against the latest committed record"
    )
    bench_compare.add_argument(
        "--dir", default=".",
        help="trajectory directory holding BENCH_<n>.json (default: .)",
    )
    bench_compare.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="explicit baseline record (default: latest in --dir)",
    )
    bench_compare.add_argument(
        "--candidate", default=None, metavar="PATH",
        help="candidate record file (default: run the suite fresh)",
    )
    bench_compare.add_argument(
        "--scale", choices=("smoke", "ci", "full"), default="ci",
        help="scale for the fresh candidate run (default: ci)",
    )
    bench_compare.add_argument("--latency-tolerance", type=float, default=3.0,
                               help="max latency growth factor (default: 3)")
    bench_compare.add_argument("--throughput-tolerance", type=float,
                               default=3.0,
                               help="max throughput shrink factor (default: 3)")
    bench_compare.add_argument("--rate-slack", type=float, default=0.10,
                               help="absolute shed/brownout slack (default: 0.1)")
    bench_compare.add_argument("--json", action="store_true",
                               help="print the comparison as JSON")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    soak = subparsers.add_parser(
        "soak", help="stepped-population capacity soak"
    )
    soak.add_argument(
        "--populations", default=None, metavar="CSV",
        help="comma-separated population steps (default: 1000,10000,100000,1000000)",
    )
    soak.add_argument("--seed", type=int, default=17)
    soak.add_argument("--ticks", type=_positive_int, default=6)
    soak.add_argument("--active-cap", type=_positive_int, default=200,
                      help="max simulated principals per step (default: 200)")
    soak.add_argument("--latency-ceiling-us", type=float, default=5000.0)
    soak.add_argument("--memory-ceiling-mb", type=float, default=2048.0)
    soak.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    soak.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="also write the deterministic report text here",
    )
    soak.set_defaults(func=_cmd_soak)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
