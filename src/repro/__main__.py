"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
figure1 [--population N] [--persona NAME]
    Run the paper's Figure-1 interaction end to end and print the
    per-step report.
lint
    Lint the default DBH policy set against the deployed sensors.
inventory
    Print the synthetic Donald Bren Hall inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.simulation.scenario import run_figure1_scenario

    report = run_figure1_scenario(
        population=args.population, mary_persona=args.persona
    )
    for step in report.steps:
        print("step %2d | %-48s %7.3fs" % (step.step, step.title, step.elapsed_s))
        print("        |   %s" % step.detail)
    print("before opt-out: %s | after opt-out: %s" % (
        "ALLOWED" if report.location_allowed_before_optout else "DENIED",
        "ALLOWED" if report.location_allowed_after_optout else "DENIED",
    ))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.policy import catalog
    from repro.core.reasoner.analysis import analyze_policies, errors_only
    from repro.simulation.dbh import BUILDING_ID, make_dbh_tippers
    from repro.spatial.model import SpaceType

    tippers = make_dbh_tippers()
    rooms = [s.space_id for s in tippers.spatial.spaces_of_type(SpaceType.ROOM)]
    policies = [
        catalog.policy_1_comfort(rooms),
        catalog.policy_2_emergency_location(BUILDING_ID),
        catalog.policy_3_meeting_room_access(rooms[:5]),
        catalog.policy_service_sharing(BUILDING_ID),
    ]
    deployed = {s.sensor_type for s in tippers.sensor_manager.sensors()}
    findings = analyze_policies(policies, deployed_sensor_types=deployed)
    if not findings:
        print("policy set is clean")
        return 0
    for finding in findings:
        print(finding)
    return 1 if errors_only(findings) else 0


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.simulation.dbh import make_dbh_tippers
    from repro.spatial.model import SpaceType

    tippers = make_dbh_tippers()
    spatial = tippers.spatial
    print("spaces:")
    for space_type in SpaceType:
        count = len(spatial.spaces_of_type(space_type))
        if count:
            print("  %-10s %4d" % (space_type.value, count))
    print("sensors:")
    by_type: dict = {}
    for sensor in tippers.sensor_manager.sensors():
        by_type[sensor.sensor_type] = by_type.get(sensor.sensor_type, 0) + 1
    for sensor_type, count in sorted(by_type.items()):
        print("  %-20s %4d" % (sensor_type, count))
    print("total sensors: %d" % tippers.sensor_manager.count())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Privacy-aware smart buildings (ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure1 = subparsers.add_parser("figure1", help="run the Figure-1 interaction")
    figure1.add_argument("--population", type=int, default=25)
    figure1.add_argument(
        "--persona",
        choices=("unconcerned", "pragmatist", "fundamentalist"),
        default="fundamentalist",
    )
    figure1.set_defaults(func=_cmd_figure1)

    lint = subparsers.add_parser("lint", help="lint the default policy set")
    lint.set_defaults(func=_cmd_lint)

    inventory = subparsers.add_parser("inventory", help="print the DBH inventory")
    inventory.set_defaults(func=_cmd_inventory)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
