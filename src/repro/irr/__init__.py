"""IoT Resource Registries (IRRs).

"IoT Resource Registries (IRRs) ... broadcast data collection policies
and sharing practices of the IoT technologies with which users
interact" (Section I).  An IRR holds machine-readable advertisements
(resource policy documents, service policy documents, and settings
documents) tagged with the spaces they cover, and answers proximity
discovery queries from IoT Assistants (step 5 of Figure 1).
"""

from repro.irr.mud import BUILTIN_PROFILES, MUDProfile, auto_provision
from repro.irr.registry import Advertisement, IoTResourceRegistry, discover_registries

__all__ = [
    "IoTResourceRegistry",
    "Advertisement",
    "discover_registries",
    "MUDProfile",
    "BUILTIN_PROFILES",
    "auto_provision",
]
