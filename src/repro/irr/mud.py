"""Automated IRR provisioning from Manufacturer Usage Descriptions.

Section V-B: "This requires a unified way to discover IoT technologies
through IRRs and we envision that the setup of IRRs can be automated
(e.g. by leveraging Manufacturer Usage Descriptions)."

A :class:`MUDProfile` is our privacy-oriented analogue of an IETF MUD
file: the *manufacturer's* machine-readable statement of what a device
type observes, what can be inferred from it, and which settings it
supports.  :func:`auto_provision` walks a building's deployed sensors,
looks up each type's profile, merges in the building's own policies
(owner, retention), and publishes one advertisement per sensor type --
turning IRR setup from hand-authoring into a lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.language.document import (
    ObservationDescription,
    ResourceDescription,
    ResourcePolicyDocument,
    SettingsDocument,
)
from repro.core.language.duration import Duration
from repro.core.language.vocabulary import (
    PURPOSE_TAXONOMY,
    DataCategory,
    GranularityLevel,
    Purpose,
)
from repro.core.policy.settings import SettingChoice, SettingGroup, SettingsSpace
from repro.errors import RegistryError
from repro.irr.registry import Advertisement, IoTResourceRegistry
from repro.tippers.bms import TIPPERS


@dataclass(frozen=True)
class MUDProfile:
    """A manufacturer's privacy description of one device type."""

    sensor_type: str
    manufacturer: str
    model: str
    documentation_url: str
    observations: Tuple[ObservationDescription, ...]
    default_purposes: Tuple[Purpose, ...]
    default_retention: Optional[Duration] = None
    offers_granularity_choices: Tuple[GranularityLevel, ...] = ()
    """Granularity levels the device can be configured to; non-empty
    profiles yield a Figure-4-style settings group."""

    primary_category: DataCategory = DataCategory.ACTIVITY

    def settings_space(self) -> Optional[SettingsSpace]:
        """The settings group this device supports, if any."""
        if not self.offers_granularity_choices:
            return None
        choices = []
        for level in self.offers_granularity_choices:
            choices.append(
                SettingChoice(
                    key=level.value,
                    description="%s sensing at %s granularity"
                    % (self.primary_category.value, level.value),
                    category=self.primary_category,
                    granularity=level,
                    actuation="%s=%s" % (self.sensor_type, level.value),
                )
            )
        default = choices[0].key
        return SettingsSpace(
            [
                SettingGroup(
                    group_id=self.sensor_type,
                    category=self.primary_category,
                    choices=tuple(choices),
                    default_key=default,
                )
            ]
        )


def _purpose_map(purposes: Tuple[Purpose, ...]) -> Dict[str, str]:
    return {p.value: PURPOSE_TAXONOMY[p].description for p in purposes}


#: Built-in profiles for the DBH device fleet.
BUILTIN_PROFILES: Dict[str, MUDProfile] = {
    profile.sensor_type: profile
    for profile in (
        MUDProfile(
            sensor_type="wifi_access_point",
            manufacturer="AcmeNet",
            model="AP-9000",
            documentation_url="https://acmenet.example/mud/ap-9000",
            observations=(
                ObservationDescription(
                    name="location",
                    description="MAC addresses of associating devices are logged",
                    inferred=("location", "presence", "identity"),
                ),
            ),
            default_purposes=(Purpose.EMERGENCY_RESPONSE, Purpose.LOGGING),
            default_retention=Duration.parse("P6M"),
            offers_granularity_choices=(
                GranularityLevel.PRECISE,
                GranularityLevel.COARSE,
                GranularityLevel.NONE,
            ),
            primary_category=DataCategory.LOCATION,
        ),
        MUDProfile(
            sensor_type="bluetooth_beacon",
            manufacturer="BeaconWorks",
            model="BW-2",
            documentation_url="https://beaconworks.example/mud/bw-2",
            observations=(
                ObservationDescription(
                    name="location",
                    description="Phones sensing the beacon report their room",
                    inferred=("location", "presence"),
                ),
            ),
            default_purposes=(Purpose.PROVIDING_SERVICE,),
            default_retention=Duration.parse("P30D"),
            offers_granularity_choices=(
                GranularityLevel.PRECISE,
                GranularityLevel.NONE,
            ),
            primary_category=DataCategory.LOCATION,
        ),
        MUDProfile(
            sensor_type="camera",
            manufacturer="SecureSight",
            model="SS-4K",
            documentation_url="https://securesight.example/mud/ss-4k",
            observations=(
                ObservationDescription(
                    name="presence",
                    description="Video frames of corridors and doors",
                    inferred=("presence", "identity", "activity"),
                ),
            ),
            default_purposes=(Purpose.SECURITY,),
            default_retention=Duration.parse("P14D"),
            primary_category=DataCategory.PRESENCE,
        ),
        MUDProfile(
            sensor_type="power_meter",
            manufacturer="WattWatch",
            model="WW-1",
            documentation_url="https://wattwatch.example/mud/ww-1",
            observations=(
                ObservationDescription(
                    name="energy_use",
                    description="Per-outlet power draw",
                    inferred=("energy_use", "occupancy", "activity"),
                ),
            ),
            default_purposes=(Purpose.ENERGY_MANAGEMENT,),
            default_retention=Duration.parse("P1Y"),
            primary_category=DataCategory.ENERGY_USE,
        ),
        MUDProfile(
            sensor_type="temperature_sensor",
            manufacturer="ThermoCo",
            model="T-100",
            documentation_url="https://thermoco.example/mud/t-100",
            observations=(
                ObservationDescription(
                    name="temperature",
                    description="Ambient room temperature",
                ),
            ),
            default_purposes=(Purpose.COMFORT,),
            primary_category=DataCategory.TEMPERATURE,
        ),
        MUDProfile(
            sensor_type="motion_sensor",
            manufacturer="ThermoCo",
            model="M-50",
            documentation_url="https://thermoco.example/mud/m-50",
            observations=(
                ObservationDescription(
                    name="occupancy",
                    description="Whether the room is occupied by anyone",
                    inferred=("occupancy", "presence"),
                ),
            ),
            default_purposes=(Purpose.COMFORT,),
            default_retention=Duration.parse("P7D"),
            primary_category=DataCategory.OCCUPANCY,
        ),
        MUDProfile(
            sensor_type="hvac_unit",
            manufacturer="ThermoCo",
            model="H-9",
            documentation_url="https://thermoco.example/mud/h-9",
            observations=(
                ObservationDescription(
                    name="temperature", description="HVAC setpoint and fan state"
                ),
            ),
            default_purposes=(Purpose.COMFORT,),
            primary_category=DataCategory.TEMPERATURE,
        ),
        MUDProfile(
            sensor_type="id_card_reader",
            manufacturer="GateKeep",
            model="GK-3",
            documentation_url="https://gatekeep.example/mud/gk-3",
            observations=(
                ObservationDescription(
                    name="identity",
                    description="Credential presentations at guarded doors",
                    inferred=("identity", "presence"),
                ),
            ),
            default_purposes=(Purpose.ACCESS_CONTROL,),
            default_retention=Duration.parse("P1Y"),
            primary_category=DataCategory.IDENTITY,
        ),
    )
}


def advertisement_document(
    profile: MUDProfile,
    building_name: str,
    owner_name: str,
    owner_more_info: str = "",
    retention_override: Optional[Duration] = None,
) -> ResourcePolicyDocument:
    """A Figure-2-shaped document generated from a MUD profile."""
    return ResourcePolicyDocument(
        [
            ResourceDescription(
                name="%s %s (%s)" % (profile.manufacturer, profile.model, profile.sensor_type),
                resource_id="mud:%s" % profile.sensor_type,
                spatial_name=building_name,
                spatial_type="Building",
                owner_name=owner_name,
                owner_more_info=owner_more_info or profile.documentation_url,
                sensor_type=profile.sensor_type,
                sensor_description="auto-provisioned from the manufacturer's usage description",
                purposes=_purpose_map(profile.default_purposes),
                observations=profile.observations,
                retention=retention_override or profile.default_retention,
            )
        ]
    )


def auto_provision(
    registry: IoTResourceRegistry,
    tippers: TIPPERS,
    profiles: Optional[Dict[str, MUDProfile]] = None,
) -> List[Advertisement]:
    """Publish one advertisement per deployed sensor type.

    Looks up each deployed type in ``profiles`` (default: the built-in
    library), applies the building's retention schedule where it is
    stricter than the manufacturer default, and attaches the settings
    document for devices that offer granularity choices.  Types without
    a profile are skipped -- the admin must author those by hand, which
    is exactly the fallback the paper describes.
    """
    catalog = profiles if profiles is not None else BUILTIN_PROFILES
    building = tippers.spatial.get(tippers.building_id)
    retention_schedule = tippers.policy_manager.retention_by_sensor_type()
    published: List[Advertisement] = []
    deployed_types = sorted(
        {sensor.sensor_type for sensor in tippers.sensor_manager.sensors()}
    )
    for sensor_type in deployed_types:
        profile = catalog.get(sensor_type)
        if profile is None:
            continue
        override: Optional[Duration] = None
        building_retention = retention_schedule.get(sensor_type)
        if building_retention is not None:
            manufacturer_seconds = (
                profile.default_retention.total_seconds()
                if profile.default_retention is not None
                else None
            )
            if manufacturer_seconds is None or building_retention < manufacturer_seconds:
                override = Duration.from_seconds(building_retention)
        document = advertisement_document(
            profile,
            building_name=building.name,
            owner_name=tippers.policy_manager.owner_name,
            owner_more_info=tippers.policy_manager.owner_more_info,
            retention_override=override,
        )
        space = profile.settings_space()
        settings_doc: Optional[SettingsDocument] = (
            space.to_document() if space is not None else None
        )
        published.append(
            registry.publish_resource(
                "mud:%s" % sensor_type,
                tippers.building_id,
                document,
                settings=settings_doc,
            )
        )
    return published
