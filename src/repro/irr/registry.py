"""The IoT Resource Registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.language.document import (
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingsDocument,
)
from repro.errors import NetworkError, RegistryError
from repro.net.bus import Endpoint
from repro.spatial.model import SpatialModel


@dataclass(frozen=True)
class Advertisement:
    """One advertised resource or service.

    ``coverage_space_id`` is the space whose visitors the advertisement
    concerns; discovery matches a user's location against it using the
    spatial model's containment/overlap operators.  Documents are kept
    in their wire (dict) form, since that is what the IRR broadcasts.
    """

    advertisement_id: str
    kind: str  # "resource" | "service"
    coverage_space_id: str
    document: Dict[str, Any]
    settings: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("resource", "service"):
            raise RegistryError("kind must be 'resource' or 'service'")

    def resource_document(self) -> ResourcePolicyDocument:
        if self.kind != "resource":
            raise RegistryError(
                "advertisement %r is not a resource" % self.advertisement_id
            )
        return ResourcePolicyDocument.from_dict(self.document)

    def service_document(self) -> ServicePolicyDocument:
        if self.kind != "service":
            raise RegistryError(
                "advertisement %r is not a service" % self.advertisement_id
            )
        return ServicePolicyDocument.from_dict(self.document)

    def settings_document(self) -> Optional[SettingsDocument]:
        if self.settings is None:
            return None
        return SettingsDocument.from_dict(self.settings)


class IoTResourceRegistry(Endpoint):
    """Holds advertisements and answers proximity discovery."""

    def __init__(self, registry_id: str, spatial: SpatialModel) -> None:
        if not registry_id:
            raise RegistryError("registry_id must be non-empty")
        self.registry_id = registry_id
        self._spatial = spatial
        self._advertisements: Dict[str, Advertisement] = {}

    # ------------------------------------------------------------------
    # Publication (step 4 of Figure 1)
    # ------------------------------------------------------------------
    def publish_resource(
        self,
        advertisement_id: str,
        coverage_space_id: str,
        document: ResourcePolicyDocument,
        settings: Optional[SettingsDocument] = None,
    ) -> Advertisement:
        """Advertise a building resource policy, validating the docs."""
        return self._publish(
            Advertisement(
                advertisement_id=advertisement_id,
                kind="resource",
                coverage_space_id=coverage_space_id,
                document=document.to_dict(),
                settings=settings.to_dict() if settings is not None else None,
            )
        )

    def publish_service(
        self,
        advertisement_id: str,
        coverage_space_id: str,
        document: ServicePolicyDocument,
        settings: Optional[SettingsDocument] = None,
    ) -> Advertisement:
        """Advertise a service's data practices."""
        return self._publish(
            Advertisement(
                advertisement_id=advertisement_id,
                kind="service",
                coverage_space_id=coverage_space_id,
                document=document.to_dict(),
                settings=settings.to_dict() if settings is not None else None,
            )
        )

    def _publish(self, advertisement: Advertisement) -> Advertisement:
        if advertisement.coverage_space_id not in self._spatial:
            raise RegistryError(
                "unknown coverage space %r" % advertisement.coverage_space_id
            )
        if advertisement.advertisement_id in self._advertisements:
            raise RegistryError(
                "advertisement %r already published" % advertisement.advertisement_id
            )
        self._advertisements[advertisement.advertisement_id] = advertisement
        return advertisement

    def withdraw(self, advertisement_id: str) -> None:
        if advertisement_id not in self._advertisements:
            raise RegistryError("unknown advertisement %r" % advertisement_id)
        del self._advertisements[advertisement_id]

    def __len__(self) -> int:
        return len(self._advertisements)

    def advertisements(self) -> List[Advertisement]:
        """Every advertisement, ordered by id.

        This (together with :meth:`__iter__`) is the iteration hook the
        static policy analyzer audits whole registries through; it
        deliberately returns the wire-form :class:`Advertisement`
        objects rather than parsed documents, so the audit sees exactly
        what the IRR broadcasts.
        """
        return sorted(
            self._advertisements.values(), key=lambda a: a.advertisement_id
        )

    def __iter__(self):
        return iter(self.advertisements())

    # ------------------------------------------------------------------
    # Discovery (step 5 of Figure 1)
    # ------------------------------------------------------------------
    def discover(self, near_space_id: str) -> List[Advertisement]:
        """Advertisements relevant to a user at ``near_space_id``.

        An advertisement is relevant when its coverage space contains,
        is contained in, overlaps, or neighbors the user's space.
        """
        if near_space_id not in self._spatial:
            raise RegistryError("unknown space %r" % near_space_id)
        relevant = []
        for advertisement in self.advertisements():
            coverage = advertisement.coverage_space_id
            if (
                self._spatial.overlap(coverage, near_space_id)
                or self._spatial.neighboring(coverage, near_space_id)
            ):
                relevant.append(advertisement)
        return relevant

    # ------------------------------------------------------------------
    # Bus endpoint
    # ------------------------------------------------------------------
    def handle(self, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        if method == "discover":
            space_id = payload.get("space_id")
            if not isinstance(space_id, str):
                raise NetworkError("discover needs a space_id")
            try:
                found = self.discover(space_id)
            except RegistryError as exc:
                raise NetworkError(str(exc)) from None
            return {
                "registry_id": self.registry_id,
                "advertisements": [
                    {
                        "advertisement_id": a.advertisement_id,
                        "kind": a.kind,
                        "coverage_space_id": a.coverage_space_id,
                        "document": a.document,
                        "settings": a.settings,
                    }
                    for a in found
                ],
            }
        raise NetworkError("method %r not handled" % method)


def discover_registries(
    registries: Iterable[IoTResourceRegistry],
    near_space_id: str,
) -> Dict[str, List[Advertisement]]:
    """Query several registries, tolerating ones that do not cover us.

    Returns registry_id -> advertisements for registries that returned
    at least one relevant advertisement.
    """
    results: Dict[str, List[Advertisement]] = {}
    for registry in registries:
        try:
            found = registry.discover(near_space_id)
        except RegistryError:
            continue
        if found:
            results[registry.registry_id] = found
    return results
