"""User profiles.

"User Profile: models the concept of people in the environment.
Profiles can be based on groups (students, faculty, staff etc.) and
share common properties (e.g., access permissions).  A user can have
multiple profiles which includes information such as department,
affiliation, and office assignment." (Section IV-A.2.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import PolicyError


@dataclass(frozen=True)
class UserProfile:
    """One person known to the building."""

    user_id: str
    name: str
    groups: FrozenSet[str] = frozenset()
    department: str = ""
    affiliation: str = ""
    office_id: Optional[str] = None
    device_macs: Tuple[str, ...] = ()
    has_iota: bool = True

    def __post_init__(self) -> None:
        if not self.user_id:
            raise PolicyError("user_id must be non-empty")

    def in_group(self, group: str) -> bool:
        return group in self.groups


def profile_to_dict(profile: UserProfile) -> Dict[str, object]:
    """The wire form of a profile (roaming handoff, admin tooling)."""
    return {
        "user_id": profile.user_id,
        "name": profile.name,
        "groups": sorted(profile.groups),
        "department": profile.department,
        "affiliation": profile.affiliation,
        "office_id": profile.office_id,
        "device_macs": list(profile.device_macs),
        "has_iota": profile.has_iota,
    }


def profile_from_dict(data: Dict[str, object]) -> UserProfile:
    """Rebuild a profile from its wire form."""
    return UserProfile(
        user_id=str(data["user_id"]),
        name=str(data.get("name", "")),
        groups=frozenset(str(g) for g in data.get("groups", [])),  # type: ignore[union-attr]
        department=str(data.get("department", "")),
        affiliation=str(data.get("affiliation", "")),
        office_id=(
            None if data.get("office_id") is None else str(data["office_id"])
        ),
        device_macs=tuple(str(m) for m in data.get("device_macs", [])),  # type: ignore[union-attr]
        has_iota=bool(data.get("has_iota", True)),
    )


class UserDirectory:
    """Registry of user profiles with device-to-owner resolution.

    The WiFi subsystem logs device MAC addresses; the directory is what
    lets the building attribute those observations to people (the
    re-identification step that makes "just a MAC address" personal
    data, as Section II-A explains).
    """

    def __init__(self) -> None:
        self._users: Dict[str, UserProfile] = {}
        self._mac_owner: Dict[str, str] = {}

    def add(self, profile: UserProfile) -> UserProfile:
        if profile.user_id in self._users:
            raise PolicyError("duplicate user %r" % profile.user_id)
        for mac in profile.device_macs:
            if mac in self._mac_owner:
                raise PolicyError(
                    "device %r already registered to %r" % (mac, self._mac_owner[mac])
                )
        self._users[profile.user_id] = profile
        for mac in profile.device_macs:
            self._mac_owner[mac] = profile.user_id
        return profile

    def remove(self, user_id: str) -> Optional[UserProfile]:
        """Forget a user (migration tombstone); idempotent.

        Returns the removed profile, or ``None`` when the user was
        already gone -- the tombstone step of a cross-shard migration
        must be safely repeatable after a crash.
        """
        profile = self._users.pop(user_id, None)
        if profile is not None:
            for mac in profile.device_macs:
                if self._mac_owner.get(mac) == user_id:
                    del self._mac_owner[mac]
        return profile

    def get(self, user_id: str) -> UserProfile:
        try:
            return self._users[user_id]
        except KeyError:
            raise PolicyError("unknown user %r" % user_id) from None

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._users

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self) -> Iterator[UserProfile]:
        return iter(self._users.values())

    def owner_of_device(self, mac: str) -> Optional[str]:
        """The user owning device ``mac``, or ``None`` when unknown."""
        return self._mac_owner.get(mac)

    def members_of(self, group: str) -> List[UserProfile]:
        return [u for u in self._users.values() if u.in_group(group)]

    def group_map(self) -> Dict[str, FrozenSet[str]]:
        """user_id -> groups, the shape EvaluationContext consumes."""
        return {uid: user.groups for uid, user in self._users.items()}
