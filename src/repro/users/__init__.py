"""User profiles and the building's user directory (Section IV-A.2)."""

from repro.users.profile import UserDirectory, UserProfile

__all__ = ["UserProfile", "UserDirectory"]
