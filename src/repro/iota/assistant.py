"""The IoT Assistant.

Steps (5)-(8) of Figure 1: the assistant discovers registries near its
user, fetches machine-readable policies, surfaces the relevant ones as
notifications, configures available privacy settings from its learned
preference model, and submits the result to TIPPERS -- receiving back
any conflicts the building detected.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.language.document import (
    ResourceDescription,
    ResourcePolicyDocument,
    ServicePolicyDocument,
    SettingsDocument,
)
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.preference import UserPreference
from repro.core.policy.serialization import preference_to_dict
from repro.core.policy.settings import SettingsSpace
from repro.errors import NetworkError, SchemaError
from repro.iota.notifications import Notification, NotificationManager
from repro.iota.preference_model import DataPractice, LabeledDecision, PreferenceModel
from repro.net.bus import MessageBus, RpcError
from repro.net.resilience import Deadline, RetryPolicy
from repro.obs.metrics import MetricsRegistry, get_registry

#: Simulated-time budget for a bus call when the assistant's owner did
#: not configure ``call_deadline_s``.  Generous on purpose: it exists
#: so no assistant call can retry unbounded (lint rule C007), not to
#: shape normal traffic.
_DEFAULT_CALL_DEADLINE_S = 30.0

#: Normalization of sensor-type spellings found in documents to the
#: primary data category their observations yield.
_SENSOR_TYPE_CATEGORY: Dict[str, DataCategory] = {
    "wifi_access_point": DataCategory.LOCATION,
    "bluetooth_beacon": DataCategory.LOCATION,
    "camera": DataCategory.PRESENCE,
    "power_meter": DataCategory.ENERGY_USE,
    "temperature_sensor": DataCategory.TEMPERATURE,
    "motion_sensor": DataCategory.OCCUPANCY,
    "hvac_unit": DataCategory.TEMPERATURE,
    "id_card_reader": DataCategory.IDENTITY,
}


def _normalize(name: str) -> str:
    return name.strip().lower().replace(" ", "_").replace("-", "_")


def _category_for(observation_name: str, inferred: Tuple[str, ...], sensor_type: str) -> DataCategory:
    """Best-effort mapping of an advertised observation to a category.

    Priority: an explicit ``inferred`` entry naming a category, then the
    observation name itself (TIPPERS compiles observation names from
    category values), then the sensor type's primary category, then
    ACTIVITY as the conservative catch-all.
    """
    for hint in inferred:
        try:
            return DataCategory(_normalize(hint))
        except ValueError:
            continue
    try:
        return DataCategory(_normalize(observation_name))
    except ValueError:
        pass
    return _SENSOR_TYPE_CATEGORY.get(_normalize(sensor_type), DataCategory.ACTIVITY)


def practices_from_resource(resource: ResourceDescription) -> List[DataPractice]:
    """The data practices a resource advertisement describes."""
    purposes = resource.named_purposes() or [Purpose.LOGGING]
    retention_days = (
        resource.retention.total_seconds() / 86400.0
        if resource.retention is not None
        else 30.0
    )
    practices = []
    for observation in resource.observations:
        category = _category_for(
            observation.name, observation.inferred, resource.sensor_type
        )
        granularity = observation.granularity or GranularityLevel.PRECISE
        for purpose in purposes:
            practices.append(
                DataPractice(
                    category=category,
                    purpose=purpose,
                    granularity=granularity,
                    retention_days=retention_days,
                    third_party=False,
                )
            )
    return practices


def practices_from_service(document: ServicePolicyDocument) -> List[DataPractice]:
    """The data practices a service advertisement describes."""
    purposes = document.named_purposes() or [Purpose.PROVIDING_SERVICE]
    practices = []
    for observation in document.observations:
        category = _category_for(observation.name, observation.inferred, "")
        granularity = observation.granularity or GranularityLevel.PRECISE
        for purpose in purposes:
            practices.append(
                DataPractice(
                    category=category,
                    purpose=purpose,
                    granularity=granularity,
                    third_party=document.third_party,
                )
            )
    return practices


@dataclass
class RoamResult:
    """What one roaming handoff accomplished."""

    tippers_endpoint: str
    registry_endpoint: str
    home_building_id: str
    re_entry: bool
    newly_added: bool
    preferences_pushed: int
    preferences_pending: int
    notifications: int


@dataclass
class DiscoveryResult:
    """What one discovery sweep found."""

    registry_ids: List[str] = field(default_factory=list)
    resources: List[ResourceDescription] = field(default_factory=list)
    services: List[ServicePolicyDocument] = field(default_factory=list)
    settings: List[SettingsDocument] = field(default_factory=list)
    notifications: List[Notification] = field(default_factory=list)


class IoTAssistant:
    """A personal privacy assistant for one user."""

    def __init__(
        self,
        user_id: str,
        bus: MessageBus,
        model: Optional[PreferenceModel] = None,
        notifications: Optional[NotificationManager] = None,
        tippers_endpoint: str = "tippers",
        registry_endpoints: Optional[List[str]] = None,
        notification_threshold: float = 0.4,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        call_deadline_s: Optional[float] = None,
    ) -> None:
        self.user_id = user_id
        self.bus = bus
        self.metrics = metrics if metrics is not None else get_registry()
        self.retry_policy = retry_policy
        self.call_deadline_s = call_deadline_s
        self.model = model if model is not None else PreferenceModel()
        self.notifications = (
            notifications
            if notifications is not None
            else NotificationManager(self.model, relevance_threshold=notification_threshold)
        )
        self.tippers_endpoint = tippers_endpoint
        self.registry_endpoints = list(registry_endpoints or [])
        self.reported_conflicts: List[str] = []
        self.last_discovery: Optional[DiscoveryResult] = None
        #: Every preference this assistant ever got accepted, in
        #: submission order -- the working set a roaming handoff
        #: re-pushes to a visited building's shard.
        self._submitted_preferences: List[Tuple[str, UserPreference]] = []
        #: endpoint -> canonical keys of preferences that endpoint has
        #: acknowledged; lets a handoff resume after a partial re-push.
        self._pushed_keys: Dict[str, Set[str]] = {}
        self._visited_endpoints: Set[str] = set()

    def _call(self, target: str, method: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One bus call under the assistant's resilience settings.

        With a :class:`~repro.net.resilience.RetryPolicy` configured,
        its deterministic backoff schedule replaces the legacy fixed
        retry count.  Every logical call opens a fresh
        :class:`~repro.net.resilience.Deadline` -- ``call_deadline_s``
        when configured, a generous default otherwise -- so no call can
        retry unbounded (lint rule C007).
        """
        deadline = Deadline(
            self.call_deadline_s
            if self.call_deadline_s is not None
            else _DEFAULT_CALL_DEADLINE_S
        )
        if self.retry_policy is None:
            return self.bus.call(
                target, method, payload, retries=2, deadline=deadline
            )
        return self.bus.call(
            target,
            method,
            payload,
            retry_policy=self.retry_policy,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Step 5: discovery
    # ------------------------------------------------------------------
    def discover(self, space_id: str, now: float) -> DiscoveryResult:
        """Query every known registry for policies near ``space_id``.

        Registries that are unreachable or do not cover the space are
        skipped.  Relevant practices are offered to the notification
        manager (step 6).
        """
        result = DiscoveryResult()
        self.metrics.counter("iota_discovery_rounds_total").inc()
        # Trace on the bus's tracer so the sweep's bus.call spans nest
        # under the discovery span.
        with self.bus.tracer.span(
            "iota.discover", user=self.user_id, space=space_id
        ):
            for endpoint in self.registry_endpoints:
                try:
                    response = self._call(
                        endpoint, "discover", {"space_id": space_id}
                    )
                except (RpcError, NetworkError):
                    self.metrics.counter(
                        "iota_registries_unreachable_total"
                    ).inc()
                    continue
                self.metrics.counter("iota_registries_reached_total").inc()
                result.registry_ids.append(response.get("registry_id", endpoint))
                for entry in response.get("advertisements", []):
                    self._absorb_advertisement(entry, now, result)
        self.metrics.counter("iota_notifications_total").inc(
            len(result.notifications)
        )
        self.last_discovery = result
        return result

    def _absorb_advertisement(
        self, entry: Dict[str, Any], now: float, result: DiscoveryResult
    ) -> None:
        kind = entry.get("kind")
        source = entry.get("advertisement_id", "")
        try:
            if kind == "resource":
                document = ResourcePolicyDocument.from_dict(entry["document"])
                for resource in document.resources:
                    result.resources.append(resource)
                    for practice in practices_from_resource(resource):
                        notification = self.notifications.offer(
                            now,
                            practice,
                            summary="%s collects %s for %s"
                            % (
                                resource.name,
                                practice.category.value,
                                practice.purpose.value,
                            ),
                            source=source,
                        )
                        if notification is not None:
                            result.notifications.append(notification)
            elif kind == "service":
                document = ServicePolicyDocument.from_dict(entry["document"])
                result.services.append(document)
                for practice in practices_from_service(document):
                    notification = self.notifications.offer(
                        now,
                        practice,
                        summary="service %s uses %s for %s"
                        % (
                            document.service_id,
                            practice.category.value,
                            practice.purpose.value,
                        ),
                        source=source,
                    )
                    if notification is not None:
                        result.notifications.append(notification)
        except (SchemaError, KeyError):
            # A malformed advertisement must not kill the sweep.
            return
        settings = entry.get("settings")
        if settings is not None:
            try:
                result.settings.append(SettingsDocument.from_dict(settings))
            except SchemaError:
                pass

    # ------------------------------------------------------------------
    # Step 8: configuring settings
    # ------------------------------------------------------------------
    def choose_selection(self, space: SettingsSpace) -> Dict[str, str]:
        """Pick one option per group from the learned model."""
        selection = {}
        for group in space:
            offered = [choice.granularity for choice in group.choices]
            preferred = self.model.preferred_granularity(
                category=group.category,
                purpose=Purpose.PROVIDING_SERVICE,
                offered=offered,
            )
            chosen = group.best_at_most(preferred)
            selection[group.group_id] = chosen.key
        return selection

    def configure_building_settings(self, now: float) -> Dict[str, str]:
        """Fetch the building's settings space, choose, and submit.

        Returns the submitted selection; conflicts reported by the
        building are recorded and surfaced as notifications.
        """
        response = self._call(self.tippers_endpoint, "get_settings_document", {})
        document = SettingsDocument.from_dict(response)
        space = SettingsSpace.from_document(document)
        selection = self.choose_selection(space)
        submit_response = self._call(
            self.tippers_endpoint,
            "submit_selection",
            {"user_id": self.user_id, "selection": selection},
        )
        self.metrics.counter("iota_settings_submissions_total").inc()
        conflicts = submit_response.get("conflicts", [])
        self.metrics.counter("iota_conflicts_total").inc(len(conflicts))
        for conflict in conflicts:
            self.reported_conflicts.append(conflict)
        return selection

    @staticmethod
    def _preference_key(preference: UserPreference) -> str:
        return json.dumps(
            preference_to_dict(preference), sort_keys=True, separators=(",", ":")
        )

    def submit_preference(self, preference: UserPreference) -> List[str]:
        """Send an explicit preference to the building (step 8).

        Accepted preferences are recorded locally: the assistant is the
        durable carrier of its user's privacy posture, so a roaming
        handoff (:meth:`roam_to`) can re-push the full set to whichever
        building the user walks into.
        """
        response = self._call(
            self.tippers_endpoint,
            "submit_preference",
            {"preference": preference_to_dict(preference)},
        )
        key = self._preference_key(preference)
        if all(key != existing for existing, _ in self._submitted_preferences):
            self._submitted_preferences.append((key, preference))
        self._pushed_keys.setdefault(self.tippers_endpoint, set()).add(key)
        conflicts = list(response.get("conflicts", []))
        self.metrics.counter("iota_preference_submissions_total").inc()
        self.metrics.counter("iota_conflicts_total").inc(len(conflicts))
        self.reported_conflicts.extend(conflicts)
        return conflicts

    # ------------------------------------------------------------------
    # Roaming handoff (federation)
    # ------------------------------------------------------------------
    def roam_to(
        self,
        tippers_endpoint: str,
        registry_endpoint: str,
        profile_payload: Dict[str, Any],
        home_building_id: str,
        space_id: str,
        now: float,
    ) -> RoamResult:
        """Hand this assistant off to another building's shard.

        The Figure-1 loop, re-run at a building boundary: retarget the
        assistant's endpoints, re-discover the visited building's IRR
        (DEFERRABLE -- a shed sweep is tolerated, notifications arrive
        late), register the user as a roaming principal (CRITICAL --
        never shed; raises on failure so the caller sees a failed
        handoff), then re-push every recorded preference the visited
        shard has not yet acknowledged.  A re-push that fails mid-list
        leaves its progress recorded, so re-entering the same building
        resumes where the last handoff stopped instead of starting
        over.  ``home_building_id`` equal to the visited building marks
        a return home and clears the shard's roaming state.
        """
        re_entry = tippers_endpoint in self._visited_endpoints
        self.tippers_endpoint = tippers_endpoint
        self.registry_endpoints = [registry_endpoint]
        discovery = self.discover(space_id, now)
        response = self._call(
            tippers_endpoint,
            "register_roaming",
            {
                "profile": profile_payload,
                "home_building_id": home_building_id,
            },
        )
        self._visited_endpoints.add(tippers_endpoint)
        pushed_keys = self._pushed_keys.setdefault(tippers_endpoint, set())
        pushed = 0
        pending = 0
        for key, preference in list(self._submitted_preferences):
            if key in pushed_keys:
                continue
            try:
                self.submit_preference(preference)
            except (RpcError, NetworkError):
                pending += 1
                continue
            pushed += 1
        self.metrics.counter("iota_roaming_handoffs_total").inc()
        if re_entry:
            self.metrics.counter("iota_roaming_reentries_total").inc()
        return RoamResult(
            tippers_endpoint=tippers_endpoint,
            registry_endpoint=registry_endpoint,
            home_building_id=home_building_id,
            re_entry=re_entry,
            newly_added=bool(response.get("added", False)),
            preferences_pushed=pushed,
            preferences_pending=pending,
            notifications=len(discovery.notifications),
        )

    def rehome(
        self, tippers_endpoint: str, registry_endpoint: str
    ) -> Dict[str, int]:
        """Point this assistant at its user's *new* home shard.

        Called after a rebalancing migration moves the user between
        buildings: unlike :meth:`roam_to` there is no roaming
        registration (the destination already holds the migrated profile
        as a local), just an endpoint retarget plus a belt-and-braces
        re-push of any recorded preference the new home has not
        acknowledged to this assistant (the migration copied the
        preference *records*, but an acknowledgement the source gave is
        not one the destination gave; re-submission is latest-wins, so a
        duplicate push is harmless).  Returns push counts.
        """
        self.tippers_endpoint = tippers_endpoint
        self.registry_endpoints = [registry_endpoint]
        pushed_keys = self._pushed_keys.setdefault(tippers_endpoint, set())
        pushed = 0
        pending = 0
        for key, preference in list(self._submitted_preferences):
            if key in pushed_keys:
                continue
            try:
                self.submit_preference(preference)
            except (RpcError, NetworkError):
                pending += 1
                continue
            pushed += 1
        self.metrics.counter("iota_rehomes_total").inc()
        return {"preferences_pushed": pushed, "preferences_pending": pending}

    def fetch_effect_preview(self, now: float, space_id: Optional[str] = None) -> List[str]:
        """What the building will actually do with this user's data.

        Returns human-readable lines ("location/sharing: blocked",
        "location/capture: allowed at precise (mandatory policy
        overrides your preference)") that the assistant shows after
        configuring settings, so the user learns how much of her
        preference was honoured (Section III-B's "partially met").
        """
        payload: Dict[str, Any] = {"user_id": self.user_id, "now": now}
        if space_id is not None:
            payload["space_id"] = space_id
        response = self._call(self.tippers_endpoint, "preview_effects", payload)
        lines = []
        for entry in response.get("entries", []):
            if entry["effect"] == "deny":
                lines.append("%s/%s: blocked" % (entry["category"], entry["phase"]))
            else:
                suffix = (
                    " (mandatory policy overrides your preference)"
                    if entry.get("overridden")
                    else ""
                )
                lines.append(
                    "%s/%s: allowed at %s%s"
                    % (entry["category"], entry["phase"], entry["granularity"], suffix)
                )
        return lines

    # ------------------------------------------------------------------
    # Step 7: learning from feedback
    # ------------------------------------------------------------------
    def record_feedback(self, practice: DataPractice, allowed: bool) -> None:
        """Online-update the model from a user decision."""
        self.model.update(LabeledDecision(practice=practice, allowed=allowed))
