"""IoT Assistants (IoTAs).

"IoT Assistants ... selectively notify users about the policies
advertised by IRRs and configure any available privacy settings"
(Section I), using "a model of Mary's privacy preferences learned over
time" (Section II-C).

- :mod:`repro.iota.personas` -- privacy personas (after Westin's
  segmentation) that generate the labeled decisions the learner needs.
- :mod:`repro.iota.preference_model` -- a from-scratch logistic
  preference learner over data-practice features, in the spirit of the
  personalized privacy assistant of Liu et al. (SOUPS'16).
- :mod:`repro.iota.notifications` -- relevance-thresholded, fatigue-
  aware notification selection (Section V-B).
- :mod:`repro.iota.assistant` -- the assistant itself: discovery,
  notification, settings configuration, conflict reporting.
"""

from repro.iota.assistant import IoTAssistant
from repro.iota.notifications import Notification, NotificationManager
from repro.iota.personas import PERSONAS, Persona, generate_decisions
from repro.iota.preference_model import DataPractice, LabeledDecision, PreferenceModel

__all__ = [
    "IoTAssistant",
    "Persona",
    "PERSONAS",
    "generate_decisions",
    "DataPractice",
    "LabeledDecision",
    "PreferenceModel",
    "Notification",
    "NotificationManager",
]
