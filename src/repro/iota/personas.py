"""Privacy personas and synthetic labeled decisions.

The paper's learner needs "labeled data over a period of time"; the
original project gathered it from user studies we cannot re-run.  We
substitute Westin-style privacy personas -- *unconcerned*, *pragmatist*,
*fundamentalist* -- each a ground-truth comfort function over data
practices.  :func:`generate_decisions` samples practices and labels
them with persona-consistent (optionally noisy) decisions, which is the
closest synthetic equivalent of the study data and exercises the same
learning code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.language.vocabulary import (
    DataCategory,
    GranularityLevel,
    Purpose,
    sensitivity_of,
)
from repro.errors import PolicyError
from repro.iota.preference_model import DataPractice, LabeledDecision


@dataclass(frozen=True)
class Persona:
    """A ground-truth comfort function over data practices.

    ``tolerance`` is the sensitivity level above which the persona
    rejects a practice; ``third_party_penalty`` is added to a
    practice's sensitivity when the data leaves the building.
    """

    name: str
    tolerance: float
    third_party_penalty: float = 0.2
    retention_penalty_per_year: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.5:
            raise PolicyError("tolerance must lie in [0, 1.5]")

    def discomfort(self, practice: DataPractice) -> float:
        """How uncomfortable the persona is with ``practice``."""
        score = sensitivity_of(
            practice.category, practice.purpose, practice.granularity
        )
        if practice.third_party:
            score += self.third_party_penalty
        score += self.retention_penalty_per_year * (practice.retention_days / 365.0)
        return score

    def allows(self, practice: DataPractice) -> bool:
        return self.discomfort(practice) <= self.tolerance

    def decide(
        self, practice: DataPractice, rng: Optional[random.Random] = None, noise: float = 0.0
    ) -> LabeledDecision:
        """The persona's (possibly noisy) decision on ``practice``.

        ``rng`` defaults to a deterministically seeded generator.
        """
        allowed = self.allows(practice)
        if noise > 0.0:
            generator = rng if rng is not None else random.Random(0)
            if generator.random() < noise:
                allowed = not allowed
        return LabeledDecision(practice=practice, allowed=allowed)


#: The three Westin segments, tuned so that on the practice space below
#: the unconcerned persona accepts nearly everything, the fundamentalist
#: rejects most person-linked practices, and the pragmatist splits on
#: purpose and granularity.
PERSONAS: Dict[str, Persona] = {
    "unconcerned": Persona(name="unconcerned", tolerance=0.85),
    "pragmatist": Persona(name="pragmatist", tolerance=0.45),
    "fundamentalist": Persona(name="fundamentalist", tolerance=0.18),
}


#: The practice space sampled when generating decisions: the categories
#: and purposes that actually occur in a smart building.
PRACTICE_CATEGORIES: Tuple[DataCategory, ...] = (
    DataCategory.LOCATION,
    DataCategory.PRESENCE,
    DataCategory.OCCUPANCY,
    DataCategory.IDENTITY,
    DataCategory.ACTIVITY,
    DataCategory.ENERGY_USE,
    DataCategory.MEETING_DETAILS,
)

PRACTICE_PURPOSES: Tuple[Purpose, ...] = (
    Purpose.EMERGENCY_RESPONSE,
    Purpose.PROVIDING_SERVICE,
    Purpose.SECURITY,
    Purpose.COMFORT,
    Purpose.ENERGY_MANAGEMENT,
    Purpose.RESEARCH,
    Purpose.MARKETING,
)

PRACTICE_GRANULARITIES: Tuple[GranularityLevel, ...] = (
    GranularityLevel.PRECISE,
    GranularityLevel.COARSE,
    GranularityLevel.BUILDING,
    GranularityLevel.AGGREGATE,
)


def sample_practice(rng: random.Random) -> DataPractice:
    """One uniformly sampled practice from the smart-building space."""
    return DataPractice(
        category=rng.choice(PRACTICE_CATEGORIES),
        purpose=rng.choice(PRACTICE_PURPOSES),
        granularity=rng.choice(PRACTICE_GRANULARITIES),
        retention_days=rng.choice((1.0, 7.0, 30.0, 180.0, 365.0)),
        third_party=rng.random() < 0.25,
    )


def generate_decisions(
    persona: Persona,
    count: int,
    seed: int = 0,
    noise: float = 0.05,
) -> List[LabeledDecision]:
    """``count`` persona-labeled decisions over sampled practices.

    ``noise`` flips each label with the given probability, modelling
    the inconsistency real users show in studies.
    """
    if count < 0:
        raise PolicyError("count must be non-negative")
    rng = random.Random(seed)
    return [
        persona.decide(sample_practice(rng), rng=rng, noise=noise)
        for _ in range(count)
    ]
