"""A learned model of a user's privacy preferences.

The paper: "the assistant requires labeled data over a period of time
to decipher the patterns in a user's behavior and represent them as
preferences for the user" (Section V-B), citing Liu et al.'s
personalized privacy assistant for mobile app permissions.

We model each *data practice* as a feature vector and learn a logistic
regression over the user's allow/deny decisions -- implemented from
scratch (batch gradient descent) so the library has no ML dependency
and the behaviour is fully deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.language.vocabulary import (
    DATA_SENSITIVITY,
    PURPOSE_TAXONOMY,
    DataCategory,
    GranularityLevel,
    Purpose,
)
from repro.errors import PolicyError


@dataclass(frozen=True)
class DataPractice:
    """One data practice a user can accept or reject."""

    category: DataCategory
    purpose: Purpose
    granularity: GranularityLevel = GranularityLevel.PRECISE
    retention_days: float = 30.0
    third_party: bool = False

    def features(self) -> Tuple[float, ...]:
        """The practice as a feature vector in [0, 1]^6 (plus bias).

        Features: data sensitivity, purpose sensitivity, shared beyond
        the building, user benefit, granularity fineness, log-scaled
        retention.
        """
        info = PURPOSE_TAXONOMY[self.purpose]
        retention = min(1.0, math.log1p(max(0.0, self.retention_days)) / math.log1p(365.0))
        return (
            DATA_SENSITIVITY[self.category],
            info.sensitivity,
            1.0 if (info.shared_beyond_building or self.third_party) else 0.0,
            1.0 if info.benefits_user_directly else 0.0,
            self.granularity.rank / 4.0,
            retention,
        )


#: Human-readable names of the feature dimensions, for introspection.
FEATURE_NAMES: Tuple[str, ...] = (
    "data_sensitivity",
    "purpose_sensitivity",
    "shared_beyond_building",
    "benefits_user",
    "granularity",
    "retention",
)


@dataclass(frozen=True)
class LabeledDecision:
    """One observed user decision about a practice."""

    practice: DataPractice
    allowed: bool


def _sigmoid(z: float) -> float:
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


class PreferenceModel:
    """Logistic regression over practice features.

    Positive class = "the user is comfortable" (allows the practice).
    The model starts with a privacy-protective prior (sensitive and
    shared practices predicted uncomfortable) so a fresh assistant errs
    on the side of protecting the user until it has data.
    """

    #: Prior weights: negative on sensitivity/sharing/granularity and
    #: retention, positive on direct user benefit.
    _PRIOR = (-2.0, -1.5, -2.5, 1.5, -1.0, -0.5)
    _PRIOR_BIAS = 1.5

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2: float = 0.01,
        epochs: int = 200,
    ) -> None:
        if learning_rate <= 0 or epochs <= 0:
            raise PolicyError("learning_rate and epochs must be positive")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.weights: List[float] = list(self._PRIOR)
        self.bias: float = self._PRIOR_BIAS
        self.trained_on: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, decisions: Sequence[LabeledDecision]) -> "PreferenceModel":
        """Fit the model to ``decisions`` (starting from the prior)."""
        if not decisions:
            return self
        xs = [d.practice.features() for d in decisions]
        ys = [1.0 if d.allowed else 0.0 for d in decisions]
        n = len(xs)
        dims = len(xs[0])
        weights = list(self._PRIOR)
        bias = self._PRIOR_BIAS
        for _ in range(self.epochs):
            grad_w = [0.0] * dims
            grad_b = 0.0
            for x, y in zip(xs, ys):
                p = _sigmoid(bias + sum(w * f for w, f in zip(weights, x)))
                error = p - y
                for j in range(dims):
                    grad_w[j] += error * x[j]
                grad_b += error
            for j in range(dims):
                weights[j] -= self.learning_rate * (
                    grad_w[j] / n + self.l2 * weights[j]
                )
            bias -= self.learning_rate * grad_b / n
        self.weights = weights
        self.bias = bias
        self.trained_on = n
        return self

    def update(self, decision: LabeledDecision, steps: int = 5) -> None:
        """Online update from a single new decision."""
        x = decision.practice.features()
        y = 1.0 if decision.allowed else 0.0
        for _ in range(steps):
            p = _sigmoid(self.bias + sum(w * f for w, f in zip(self.weights, x)))
            error = p - y
            for j in range(len(self.weights)):
                self.weights[j] -= self.learning_rate * error * x[j]
            self.bias -= self.learning_rate * error
        self.trained_on += 1

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def comfort(self, practice: DataPractice) -> float:
        """P(user allows ``practice``), in [0, 1]."""
        x = practice.features()
        return _sigmoid(self.bias + sum(w * f for w, f in zip(self.weights, x)))

    def would_allow(self, practice: DataPractice, threshold: float = 0.5) -> bool:
        return self.comfort(practice) >= threshold

    def accuracy(self, decisions: Sequence[LabeledDecision]) -> float:
        """Fraction of ``decisions`` the model predicts correctly."""
        if not decisions:
            raise PolicyError("cannot score on an empty decision set")
        correct = sum(
            1
            for d in decisions
            if self.would_allow(d.practice) == d.allowed
        )
        return correct / len(decisions)

    def preferred_granularity(
        self,
        category: DataCategory,
        purpose: Purpose,
        offered: Sequence[GranularityLevel],
        threshold: float = 0.5,
        retention_days: float = 30.0,
        third_party: bool = False,
    ) -> GranularityLevel:
        """The finest offered granularity the user is comfortable with.

        Falls back to the coarsest offered level when the user is
        uncomfortable with all of them.
        """
        if not offered:
            raise PolicyError("offered granularities must be non-empty")
        acceptable = [
            level
            for level in offered
            if self.would_allow(
                DataPractice(
                    category=category,
                    purpose=purpose,
                    granularity=level,
                    retention_days=retention_days,
                    third_party=third_party,
                ),
                threshold,
            )
        ]
        if acceptable:
            return max(acceptable, key=lambda g: g.rank)
        return min(offered, key=lambda g: g.rank)

    def explain(self) -> Dict[str, float]:
        """Feature -> learned weight (plus the bias)."""
        result = dict(zip(FEATURE_NAMES, self.weights))
        result["bias"] = self.bias
        return result
