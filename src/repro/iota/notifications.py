"""Selective notification with a user-fatigue budget.

"The IoTA displays summaries of relevant elements of these policies to
the user ... by focusing on the elements of a policy that are important
with respect to the user's privacy preferences" (Section II-C), and the
open challenge is "when and how to notify a user and how to obtain user
feedback without inducing user fatigue" (Section V-B).

A practice is notified when its *relevance* -- how surprising and
sensitive it is for this user -- exceeds a threshold, subject to a
daily budget and per-practice deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.language.vocabulary import sensitivity_of
from repro.errors import PolicyError
from repro.iota.preference_model import DataPractice, PreferenceModel


@dataclass(frozen=True)
class Notification:
    """One message surfaced to the user."""

    timestamp: float
    practice: DataPractice
    relevance: float
    summary: str
    source: str = ""

    def __str__(self) -> str:
        return "[%.2f] %s" % (self.relevance, self.summary)


class NotificationManager:
    """Relevance-thresholded, budgeted notification selection."""

    def __init__(
        self,
        model: PreferenceModel,
        relevance_threshold: float = 0.4,
        daily_budget: int = 5,
        seconds_per_day: int = 86400,
    ) -> None:
        if not 0.0 <= relevance_threshold <= 1.0:
            raise PolicyError("relevance_threshold must lie in [0, 1]")
        if daily_budget < 0:
            raise PolicyError("daily_budget must be non-negative")
        self._model = model
        self.relevance_threshold = relevance_threshold
        self.daily_budget = daily_budget
        self._seconds_per_day = seconds_per_day
        self._seen: Set[Tuple] = set()
        self._sent_today: Dict[int, int] = {}
        self.sent: List[Notification] = []
        self.suppressed_low_relevance = 0
        self.suppressed_duplicate = 0
        self.suppressed_budget = 0

    # ------------------------------------------------------------------
    # Relevance
    # ------------------------------------------------------------------
    def relevance(self, practice: DataPractice) -> float:
        """How much the user should care about ``practice``.

        The product of the practice's objective sensitivity and the
        user's predicted *discomfort* (1 - comfort): a practice the
        model already knows the user accepts scores low even when
        objectively sensitive, so routine accepted practices stop
        generating noise as the model learns.
        """
        objective = sensitivity_of(
            practice.category, practice.purpose, practice.granularity
        )
        discomfort = 1.0 - self._model.comfort(practice)
        return objective * (0.4 + 0.6 * discomfort)

    # ------------------------------------------------------------------
    # Offering
    # ------------------------------------------------------------------
    def _practice_key(self, practice: DataPractice, source: str) -> Tuple:
        return (
            source,
            practice.category,
            practice.purpose,
            practice.granularity,
            practice.third_party,
        )

    def offer(
        self,
        now: float,
        practice: DataPractice,
        summary: str,
        source: str = "",
    ) -> Optional[Notification]:
        """Maybe notify the user about ``practice``.

        Returns the notification when sent, ``None`` when suppressed
        (below threshold, already seen, or today's budget exhausted).
        """
        key = self._practice_key(practice, source)
        if key in self._seen:
            self.suppressed_duplicate += 1
            return None
        score = self.relevance(practice)
        if score < self.relevance_threshold:
            self._seen.add(key)
            self.suppressed_low_relevance += 1
            return None
        day = int(now // self._seconds_per_day)
        if self._sent_today.get(day, 0) >= self.daily_budget:
            # Budget exhausted: do NOT mark as seen so the practice can
            # be surfaced tomorrow.
            self.suppressed_budget += 1
            return None
        self._seen.add(key)
        self._sent_today[day] = self._sent_today.get(day, 0) + 1
        notification = Notification(
            timestamp=now,
            practice=practice,
            relevance=score,
            summary=summary,
            source=source,
        )
        self.sent.append(notification)
        return notification

    def stats(self) -> Dict[str, int]:
        return {
            "sent": len(self.sent),
            "suppressed_low_relevance": self.suppressed_low_relevance,
            "suppressed_duplicate": self.suppressed_duplicate,
            "suppressed_budget": self.suppressed_budget,
        }
