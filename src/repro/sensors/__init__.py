"""Sensor substrate: ontology, settings, observations, and drivers.

Models Section IV-A.3/4/5 of the paper: each sensor has a *type*
(organized into subsystems, in the spirit of the Haystack and SSN
ontologies), a set of *settings* (valid parameters that determine its
behaviour, e.g. capture frequency or image resolution), and produces
*observations* (typed readings stamped with time and location).

Simulated drivers in :mod:`repro.sensors.drivers` stand in for the real
hardware of Donald Bren Hall: WiFi access points, Bluetooth beacons,
surveillance cameras, power-outlet meters, temperature and motion
sensors, and HVAC units.
"""

from repro.sensors.base import Observation, Sensor, SensorSettings
from repro.sensors.ontology import (
    ObservationField,
    ParameterSpec,
    SensorTypeSpec,
    SensorOntology,
    default_ontology,
)
from repro.sensors.subsystem import SensorSubsystem

__all__ = [
    "Observation",
    "Sensor",
    "SensorSettings",
    "ParameterSpec",
    "ObservationField",
    "SensorTypeSpec",
    "SensorOntology",
    "default_ontology",
    "SensorSubsystem",
]
