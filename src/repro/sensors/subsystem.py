"""Sensor subsystems: grouping sensors of the same kind.

The paper: "Sensors of the same type can be organized into sensor
subsystems.  Examples of such subsystems are camera subsystem, beacon
subsystem, and HVAC subsystem."  A subsystem provides bulk actuation
(e.g. disable all cameras on a floor) and per-space lookup, which the
building's sensor manager builds on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set

from repro.errors import SensorError
from repro.sensors.base import Observation, Sensor
from repro.sensors.environment import EnvironmentView

#: A sensing-level interception point: called once per sensor per
#: sampling pass; returning a truthy value stalls that sensor (it
#: produces no observations this pass).
StallPlane = Callable[[Sensor], bool]


class SensorSubsystem:
    """A named group of sensors, normally sharing a subsystem label."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._sensors: Dict[str, Sensor] = {}
        self.stalled_samples = 0
        #: Sensors that failed to answer the most recent sampling pass
        #: (stalled by a fault plane).  The health supervisor reads this
        #: to distinguish "did not answer" from "answered with nothing"
        #: -- an empty room legitimately yields zero observations.
        self.stalled_last_pass: Set[str] = set()
        #: Samples skipped because a gate refused the sensor (e.g. a
        #: quarantined source); never counted as stalls.
        self.gated_samples = 0
        self._fault_planes: List[StallPlane] = []

    # ------------------------------------------------------------------
    # Fault planes
    # ------------------------------------------------------------------
    def install_fault_plane(self, plane: StallPlane) -> None:
        """Attach a sensor-stall plane (see :data:`StallPlane`)."""
        self._fault_planes.append(plane)

    def remove_fault_plane(self, plane: StallPlane) -> None:
        if plane in self._fault_planes:
            self._fault_planes.remove(plane)

    def add(self, sensor: Sensor) -> Sensor:
        if sensor.sensor_id in self._sensors:
            raise SensorError("duplicate sensor id %r" % sensor.sensor_id)
        self._sensors[sensor.sensor_id] = sensor
        return sensor

    def get(self, sensor_id: str) -> Sensor:
        try:
            return self._sensors[sensor_id]
        except KeyError:
            raise SensorError(
                "subsystem %r has no sensor %r" % (self.name, sensor_id)
            ) from None

    def remove(self, sensor_id: str) -> Sensor:
        sensor = self.get(sensor_id)
        del self._sensors[sensor_id]
        return sensor

    def __len__(self) -> int:
        return len(self._sensors)

    def __iter__(self) -> Iterator[Sensor]:
        return iter(self._sensors.values())

    def __contains__(self, sensor_id: str) -> bool:
        return sensor_id in self._sensors

    def sensors_in_space(self, space_id: str) -> List[Sensor]:
        return [s for s in self._sensors.values() if s.space_id == space_id]

    def select(self, predicate: Callable[[Sensor], bool]) -> List[Sensor]:
        return [s for s in self._sensors.values() if predicate(s)]

    def actuate_all(
        self,
        changes: Dict[str, object],
        predicate: Optional[Callable[[Sensor], bool]] = None,
    ) -> int:
        """Apply a settings change to every (matching) sensor.

        Returns the number of sensors actuated.  Validation failures on
        any sensor abort the whole call (sensors already actuated keep
        the new settings; callers wanting atomicity should validate via
        a dry-run sensor first).
        """
        count = 0
        for sensor in self._sensors.values():
            if predicate is not None and not predicate(sensor):
                continue
            sensor.actuate(changes)
            count += 1
        return count

    def sample_all(
        self,
        now: float,
        environment: EnvironmentView,
        gate: Optional[Callable[[Sensor], bool]] = None,
    ) -> List[Observation]:
        """Tick every sensor once and gather their observations.

        Sensors stalled by an installed fault plane are skipped for this
        pass (counted in :attr:`stalled_samples`) but stay registered.
        ``gate`` is consulted first -- before the fault planes, so a
        gated-out (quarantined) sensor consumes no injector step and
        cannot be counted as a stall.
        """
        observations: List[Observation] = []
        self.stalled_last_pass = set()
        for sensor in self._sensors.values():
            if gate is not None and not gate(sensor):
                self.gated_samples += 1
                continue
            if self._fault_planes and any(
                plane(sensor) for plane in self._fault_planes
            ):
                self.stalled_samples += 1
                self.stalled_last_pass.add(sensor.sensor_id)
                continue
            observations.extend(sensor.sample(now, environment))
        return observations
