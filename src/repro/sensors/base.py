"""Sensors, their settings, and the observations they produce."""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import SensorError
from repro.sensors.ontology import SensorTypeSpec

_observation_counter = itertools.count(1)


@contextmanager
def scoped_observation_ids(start: int = 1) -> Iterator[None]:
    """Deterministic observation ids inside a sealed world.

    Ids are normally process-unique, which makes serialized byte counts
    (WAL totals) depend on how many observations earlier code created.
    Harnesses that promise byte-identical reports (the capacity soak)
    run their isolated world under this scope; the process-wide counter
    is restored on exit.
    """
    global _observation_counter
    saved = _observation_counter
    _observation_counter = itertools.count(start)
    try:
        yield
    finally:
        _observation_counter = saved


@dataclass(frozen=True)
class Observation:
    """A single typed reading produced by a sensor.

    The paper (Section IV-A.5): "Each observation has a timestamp and a
    location ... associated with it."  ``payload`` holds the fields the
    sensor type declares; ``subject_id`` is filled when the reading is
    attributable to a person (a device MAC resolved to its owner), which
    is what makes it subject to user preferences.
    """

    observation_id: int
    sensor_id: str
    sensor_type: str
    timestamp: float
    space_id: Optional[str]
    payload: Dict[str, object]
    subject_id: Optional[str] = None
    granularity: str = "precise"

    @staticmethod
    def create(
        sensor_id: str,
        sensor_type: str,
        timestamp: float,
        space_id: Optional[str],
        payload: Dict[str, object],
        subject_id: Optional[str] = None,
    ) -> "Observation":
        """Build an observation with a fresh process-unique id."""
        return Observation(
            observation_id=next(_observation_counter),
            sensor_id=sensor_id,
            sensor_type=sensor_type,
            timestamp=timestamp,
            space_id=space_id,
            payload=dict(payload),
            subject_id=subject_id,
        )

    def with_payload(self, payload: Dict[str, object], granularity: Optional[str] = None) -> "Observation":
        """A copy carrying ``payload`` (used by privacy mechanisms)."""
        return Observation(
            observation_id=self.observation_id,
            sensor_id=self.sensor_id,
            sensor_type=self.sensor_type,
            timestamp=self.timestamp,
            space_id=self.space_id,
            payload=dict(payload),
            subject_id=self.subject_id,
            granularity=granularity if granularity is not None else self.granularity,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "observation_id": self.observation_id,
            "sensor_id": self.sensor_id,
            "sensor_type": self.sensor_type,
            "timestamp": self.timestamp,
            "space_id": self.space_id,
            "payload": dict(self.payload),
            "subject_id": self.subject_id,
            "granularity": self.granularity,
        }


class SensorSettings:
    """Validated, mutable settings of one sensor instance.

    Wraps the raw parameter dict and enforces the sensor type's
    :class:`~repro.sensors.ontology.ParameterSpec` bounds on every
    update, as the paper requires settings to be "a set of valid
    parameters associated with the sensor".
    """

    def __init__(self, spec: SensorTypeSpec, overrides: Optional[Dict[str, object]] = None) -> None:
        self._spec = spec
        self._values: Dict[str, object] = spec.default_settings()
        if overrides:
            self.update(overrides)

    @property
    def spec(self) -> SensorTypeSpec:
        return self._spec

    def get(self, name: str) -> object:
        self._spec.parameter(name)  # raises on unknown parameter
        return self._values[name]

    def update(self, changes: Dict[str, object]) -> None:
        """Apply ``changes`` atomically: all validate or none apply."""
        self._spec.validate_settings(changes)
        self._values.update(changes)

    def set(self, name: str, value: object) -> None:
        self.update({name: value})

    def as_dict(self) -> Dict[str, object]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SensorSettings):
            return NotImplemented
        return self._spec.type_name == other._spec.type_name and self._values == other._values

    def __repr__(self) -> str:
        return "SensorSettings(%s, %r)" % (self._spec.type_name, self._values)


class Sensor:
    """Base class for a deployed sensor instance.

    Subclasses (the simulated drivers) override :meth:`sample` to
    produce observations from the simulation state.  A sensor is *bound*
    to a space and carries live settings.
    """

    def __init__(
        self,
        sensor_id: str,
        spec: SensorTypeSpec,
        space_id: str,
        settings: Optional[Dict[str, object]] = None,
    ) -> None:
        if not sensor_id:
            raise SensorError("sensor_id must be non-empty")
        self.sensor_id = sensor_id
        self.spec = spec
        self.space_id = space_id
        self.settings = SensorSettings(spec, settings)
        self.enabled = True

    @property
    def sensor_type(self) -> str:
        return self.spec.type_name

    @property
    def subsystem(self) -> str:
        return self.spec.subsystem

    def actuate(self, changes: Dict[str, object]) -> None:
        """Change settings; the BMS calls this to execute policies."""
        self.settings.update(changes)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def sample(self, now: float, environment: "object") -> List[Observation]:
        """Produce observations for the current tick.

        ``environment`` is a driver-specific view of the simulated
        world; the base class produces nothing.
        """
        return []

    def make_observation(
        self,
        now: float,
        payload: Dict[str, object],
        subject_id: Optional[str] = None,
    ) -> Observation:
        """Stamp an observation with this sensor's id, type and space."""
        unknown = set(payload) - {f.name for f in self.spec.observation_fields}
        if unknown:
            raise SensorError(
                "sensor %r produced undeclared fields %r" % (self.sensor_id, sorted(unknown))
            )
        return Observation.create(
            sensor_id=self.sensor_id,
            sensor_type=self.sensor_type,
            timestamp=now,
            space_id=self.space_id,
            payload=payload,
            subject_id=subject_id,
        )

    def __repr__(self) -> str:
        return "%s(id=%r, space=%r)" % (type(self).__name__, self.sensor_id, self.space_id)
