"""Simulated drivers for the Donald Bren Hall sensor inventory.

Each driver turns the :class:`~repro.sensors.environment.EnvironmentView`
into typed observations, honouring its settings: a disabled or opted-out
sensor produces nothing, a camera produces frames at its configured
rate, a WiFi AP only logs when logging is on, and so on.  Drivers keep
per-sensor state (last sample time) so they can be ticked at any cadence.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sensors.base import Observation, Sensor
from repro.sensors.environment import EnvironmentView
from repro.sensors.ontology import (
    BLE_BEACON,
    CAMERA,
    HVAC_UNIT,
    ID_READER,
    MOTION,
    POWER_METER,
    TEMPERATURE,
    WIFI_AP,
)


class _IntervalSensor(Sensor):
    """Shared logic for sensors that sample on a fixed interval."""

    interval_parameter = "sample_interval_s"

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._last_sample: Optional[float] = None

    def _due(self, now: float) -> bool:
        interval = float(self.settings.get(self.interval_parameter))
        if self._last_sample is not None and now - self._last_sample < interval:
            return False
        self._last_sample = now
        return True


class WiFiAccessPoint(Sensor):
    """Logs the MAC of every device associated to it this tick."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, WIFI_AP, space_id, settings)
        self._last_log: Optional[float] = None

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled or self.settings.get("logging") == "off":
            return []
        interval = float(self.settings.get("log_interval_s"))
        if self._last_log is not None and now - self._last_log < interval:
            return []
        self._last_log = now
        observations = []
        for device in environment.devices_in(self.space_id):
            # The AP only sees a MAC address; attribution to a person is
            # the BMS's job (via the user directory).
            observations.append(
                self.make_observation(
                    now,
                    {
                        "device_mac": device.device_mac,
                        "ap_mac": "ap:%s" % self.sensor_id,
                        "rssi": -45.0,
                    },
                )
            )
        return observations


class BluetoothBeacon(Sensor):
    """Phones with an IoTA sense the beacon and report their room."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, BLE_BEACON, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled:
            return []
        observations = []
        for device in environment.devices_in(self.space_id):
            if not device.has_iota:
                continue
            observations.append(
                self.make_observation(
                    now,
                    {
                        "device_id": device.device_mac,
                        "beacon_id": self.sensor_id,
                        "proximity": "near",
                    },
                    subject_id=device.person_id,
                )
            )
        return observations


class SurveillanceCamera(Sensor):
    """Produces one frame summary per capture period when recording."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, CAMERA, space_id, settings)
        self._frame_no = 0
        self._last_frame: Optional[float] = None

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled or self.settings.get("recording") == "off":
            return []
        period = 1.0 / float(self.settings.get("capture_fps"))
        if self._last_frame is not None and now - self._last_frame < period:
            return []
        self._last_frame = now
        self._frame_no += 1
        present = environment.devices_in(self.space_id)
        return [
            self.make_observation(
                now,
                {
                    "frame_ref": "%s/frame-%06d" % (self.sensor_id, self._frame_no),
                    "motion_score": min(1.0, 0.2 * len(present)),
                    "faces_detected": len(present),
                },
            )
        ]


class PowerOutletMeter(_IntervalSensor):
    """Samples the aggregate power draw of its space's outlets."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, POWER_METER, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled or not self._due(now):
            return []
        return [
            self.make_observation(
                now,
                {
                    "watts": environment.power_draw_of(self.space_id),
                    "outlet_id": "outlet:%s" % self.sensor_id,
                },
            )
        ]


class TemperatureSensor(_IntervalSensor):
    """Samples the room temperature."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, TEMPERATURE, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled or not self._due(now):
            return []
        return [
            self.make_observation(
                now, {"fahrenheit": environment.temperature_of(self.space_id)}
            )
        ]


class MotionSensor(Sensor):
    """Reports whether motion occurred in the space this tick."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, MOTION, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled:
            return []
        return [
            self.make_observation(
                now, {"motion": 1 if environment.motion_in(self.space_id) else 0}
            )
        ]


class HVACUnit(Sensor):
    """An actuator; it reports its own state so policies can audit it."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, HVAC_UNIT, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled:
            return []
        return [
            self.make_observation(
                now,
                {
                    "setpoint_f": self.settings.get("setpoint_f"),
                    "fan_speed": self.settings.get("fan_speed"),
                },
            )
        ]


class IDCardReader(Sensor):
    """Reports credential presentations at a guarded door."""

    def __init__(self, sensor_id: str, space_id: str, settings: Optional[Dict[str, object]] = None) -> None:
        super().__init__(sensor_id, ID_READER, space_id, settings)

    def sample(self, now: float, environment: EnvironmentView) -> List[Observation]:
        if not self.enabled:
            return []
        credential = environment.credential_presented(self.space_id)
        if credential is None:
            return []
        return [
            self.make_observation(
                now,
                {"credential_id": credential, "granted": True},
                subject_id=credential.split(":", 1)[-1] or None,
            )
        ]


DRIVER_CLASSES = {
    WIFI_AP.type_name: WiFiAccessPoint,
    BLE_BEACON.type_name: BluetoothBeacon,
    CAMERA.type_name: SurveillanceCamera,
    POWER_METER.type_name: PowerOutletMeter,
    TEMPERATURE.type_name: TemperatureSensor,
    MOTION.type_name: MotionSensor,
    HVAC_UNIT.type_name: HVACUnit,
    ID_READER.type_name: IDCardReader,
}


def create_sensor(
    sensor_type: str,
    sensor_id: str,
    space_id: str,
    settings: Optional[Dict[str, object]] = None,
) -> Sensor:
    """Instantiate the driver for ``sensor_type``.

    Raises ``KeyError`` for unknown types, which callers surface as a
    configuration error.
    """
    return DRIVER_CLASSES[sensor_type](sensor_id, space_id, settings)
