"""A compact sensor ontology.

The paper models sensors using the Haystack and W3C Semantic Sensor
Network ontologies.  We keep the parts the policy machinery needs:

- a :class:`SensorTypeSpec` describes a sensor type: which settings
  parameters it accepts (with valid ranges), which observation fields it
  produces, which subsystem it belongs to, and what can be *inferred*
  from its data (Section IV-B.2 asks policies to describe inferred
  information, not just raw observations).
- a :class:`SensorOntology` is the registry of type specs.

:func:`default_ontology` returns the types deployed in Donald Bren Hall
as described in Section II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SensorError


@dataclass(frozen=True)
class ParameterSpec:
    """A single settings parameter a sensor type accepts.

    ``choices`` constrains categorical parameters; ``minimum`` /
    ``maximum`` constrain numeric ones.  Exactly one style should be
    used per parameter.
    """

    name: str
    description: str
    default: object
    choices: Optional[Tuple[object, ...]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def validate(self, value: object) -> None:
        """Raise :class:`SensorError` when ``value`` is out of range."""
        if self.choices is not None:
            if value not in self.choices:
                raise SensorError(
                    "parameter %r: %r not in %r" % (self.name, value, self.choices)
                )
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SensorError(
                "parameter %r: expected a number, got %r" % (self.name, value)
            )
        if self.minimum is not None and value < self.minimum:
            raise SensorError(
                "parameter %r: %r below minimum %r" % (self.name, value, self.minimum)
            )
        if self.maximum is not None and value > self.maximum:
            raise SensorError(
                "parameter %r: %r above maximum %r" % (self.name, value, self.maximum)
            )


@dataclass(frozen=True)
class ObservationField:
    """One field of the observation payload a sensor type produces."""

    name: str
    description: str
    personal: bool = False
    """Whether the field identifies or can be linked to a person
    (e.g. a device MAC address), which makes it subject to privacy
    policies."""


@dataclass(frozen=True)
class SensorTypeSpec:
    """Schema of a sensor type: settings, observations, inferences."""

    type_name: str
    subsystem: str
    description: str
    parameters: Tuple[ParameterSpec, ...] = ()
    observation_fields: Tuple[ObservationField, ...] = ()
    inferences: Tuple[str, ...] = ()
    """Abstract data types inferable from this sensor's observations,
    drawn from :mod:`repro.core.language.vocabulary` (e.g. "location",
    "occupancy", "activity")."""

    def parameter(self, name: str) -> ParameterSpec:
        for spec in self.parameters:
            if spec.name == name:
                return spec
        raise SensorError(
            "sensor type %r has no parameter %r" % (self.type_name, name)
        )

    def default_settings(self) -> Dict[str, object]:
        return {spec.name: spec.default for spec in self.parameters}

    def validate_settings(self, settings: Dict[str, object]) -> None:
        """Check every provided setting against its parameter spec."""
        for name, value in settings.items():
            self.parameter(name).validate(value)

    @property
    def personal_fields(self) -> List[str]:
        return [f.name for f in self.observation_fields if f.personal]


class SensorOntology:
    """Registry of :class:`SensorTypeSpec` keyed by type name."""

    def __init__(self) -> None:
        self._types: Dict[str, SensorTypeSpec] = {}

    def register(self, spec: SensorTypeSpec) -> SensorTypeSpec:
        if spec.type_name in self._types:
            raise SensorError("duplicate sensor type %r" % spec.type_name)
        self._types[spec.type_name] = spec
        return spec

    def get(self, type_name: str) -> SensorTypeSpec:
        try:
            return self._types[type_name]
        except KeyError:
            raise SensorError("unknown sensor type %r" % type_name) from None

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._types

    def type_names(self) -> List[str]:
        return sorted(self._types)

    def subsystems(self) -> List[str]:
        return sorted({spec.subsystem for spec in self._types.values()})

    def types_in_subsystem(self, subsystem: str) -> List[SensorTypeSpec]:
        return [s for s in self._types.values() if s.subsystem == subsystem]

    def types_inferring(self, inference: str) -> List[SensorTypeSpec]:
        """Types whose observations allow inferring ``inference``."""
        return [s for s in self._types.values() if inference in s.inferences]


# ----------------------------------------------------------------------
# The Donald Bren Hall sensor inventory (Section II).
# ----------------------------------------------------------------------

WIFI_AP = SensorTypeSpec(
    type_name="wifi_access_point",
    subsystem="network",
    description=(
        "WiFi access point; logs the MAC address of each associating "
        "device together with a timestamp, for security purposes."
    ),
    parameters=(
        ParameterSpec(
            "logging",
            "whether association events are logged",
            default="on",
            choices=("on", "off"),
        ),
        ParameterSpec(
            "log_interval_s",
            "seconds between association log flushes",
            default=60.0,
            minimum=1.0,
            maximum=3600.0,
        ),
    ),
    observation_fields=(
        ObservationField("device_mac", "MAC address of the connecting device", personal=True),
        ObservationField("ap_mac", "MAC address of the access point"),
        ObservationField("rssi", "received signal strength (dBm)"),
    ),
    inferences=("location", "presence", "identity"),
)

BLE_BEACON = SensorTypeSpec(
    type_name="bluetooth_beacon",
    subsystem="beacon",
    description=(
        "Bluetooth Low Energy beacon; a phone that senses the beacon "
        "reports the room it is in."
    ),
    parameters=(
        ParameterSpec(
            "advertising_interval_ms",
            "beacon advertising interval",
            default=500.0,
            minimum=20.0,
            maximum=10000.0,
        ),
        ParameterSpec(
            "tx_power",
            "transmit power level",
            default="medium",
            choices=("low", "medium", "high"),
        ),
    ),
    observation_fields=(
        ObservationField("device_id", "identifier of the sensing device", personal=True),
        ObservationField("beacon_id", "identifier of the beacon"),
        ObservationField("proximity", "proximity class (immediate/near/far)"),
    ),
    inferences=("location", "presence"),
)

CAMERA = SensorTypeSpec(
    type_name="camera",
    subsystem="camera",
    description="Surveillance camera covering corridors and doors.",
    parameters=(
        ParameterSpec(
            "capture_fps",
            "frames captured per second",
            default=5.0,
            minimum=0.1,
            maximum=60.0,
        ),
        ParameterSpec(
            "resolution",
            "image resolution",
            default="720p",
            choices=("480p", "720p", "1080p"),
        ),
        ParameterSpec(
            "recording",
            "whether frames are retained",
            default="on",
            choices=("on", "off"),
        ),
    ),
    observation_fields=(
        ObservationField("frame_ref", "reference to the captured frame", personal=True),
        ObservationField("motion_score", "fraction of pixels changed"),
        ObservationField("faces_detected", "number of detected faces", personal=True),
    ),
    inferences=("presence", "identity", "activity"),
)

POWER_METER = SensorTypeSpec(
    type_name="power_meter",
    subsystem="energy",
    description="Power outlet meter monitoring energy usage.",
    parameters=(
        ParameterSpec(
            "sample_interval_s",
            "seconds between samples",
            default=30.0,
            minimum=1.0,
            maximum=3600.0,
        ),
    ),
    observation_fields=(
        ObservationField("watts", "instantaneous power draw"),
        ObservationField("outlet_id", "identifier of the outlet"),
    ),
    inferences=("occupancy", "activity"),
)

TEMPERATURE = SensorTypeSpec(
    type_name="temperature_sensor",
    subsystem="hvac",
    description="Room temperature sensor feeding the HVAC loop.",
    parameters=(
        ParameterSpec(
            "sample_interval_s",
            "seconds between samples",
            default=60.0,
            minimum=5.0,
            maximum=3600.0,
        ),
    ),
    observation_fields=(
        ObservationField("fahrenheit", "temperature in degrees Fahrenheit"),
    ),
    inferences=(),
)

MOTION = SensorTypeSpec(
    type_name="motion_sensor",
    subsystem="hvac",
    description="Passive-infrared motion sensor used for occupancy.",
    parameters=(
        ParameterSpec(
            "sensitivity",
            "trigger sensitivity",
            default="medium",
            choices=("low", "medium", "high"),
        ),
    ),
    observation_fields=(
        ObservationField("motion", "1 when motion detected in the window else 0"),
    ),
    inferences=("occupancy", "presence"),
)

HVAC_UNIT = SensorTypeSpec(
    type_name="hvac_unit",
    subsystem="hvac",
    description="HVAC actuator: fan plus heating/cooling element.",
    parameters=(
        ParameterSpec(
            "setpoint_f",
            "target temperature in Fahrenheit",
            default=70.0,
            minimum=55.0,
            maximum=85.0,
        ),
        ParameterSpec(
            "fan_speed",
            "fan speed",
            default="auto",
            choices=("off", "low", "medium", "high", "auto"),
        ),
    ),
    observation_fields=(
        ObservationField("setpoint_f", "current setpoint"),
        ObservationField("fan_speed", "current fan speed"),
    ),
    inferences=(),
)

ID_READER = SensorTypeSpec(
    type_name="id_card_reader",
    subsystem="access",
    description="ID card / fingerprint reader guarding meeting rooms.",
    parameters=(
        ParameterSpec(
            "mode",
            "accepted credential kinds",
            default="card_or_fingerprint",
            choices=("card", "fingerprint", "card_or_fingerprint"),
        ),
    ),
    observation_fields=(
        ObservationField("credential_id", "identifier of the presented credential", personal=True),
        ObservationField("granted", "whether access was granted"),
    ),
    inferences=("identity", "presence"),
)


def default_ontology() -> SensorOntology:
    """The DBH sensor ontology: every type Section II mentions."""
    ontology = SensorOntology()
    for spec in (
        WIFI_AP,
        BLE_BEACON,
        CAMERA,
        POWER_METER,
        TEMPERATURE,
        MOTION,
        HVAC_UNIT,
        ID_READER,
    ):
        ontology.register(spec)
    return ontology
