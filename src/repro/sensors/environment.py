"""The view of the physical world that sensor drivers sample.

Drivers do not know about the simulation package; they sample an
:class:`EnvironmentView`, which the simulation implements.  This keeps
the dependency direction clean (simulation -> sensors, never the
reverse) and lets tests supply tiny hand-built environments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class PresentDevice:
    """A person's device currently present in a space."""

    person_id: str
    device_mac: str
    has_iota: bool = True
    """Whether the device runs an IoT Assistant (and hence reports
    beacon sightings when its owner has opted in)."""


class EnvironmentView:
    """Abstract world state the drivers read.

    The default implementations describe an empty, 70F building so
    that a bare environment is usable in tests.
    """

    def devices_in(self, space_id: str) -> List[PresentDevice]:
        """Devices physically present in ``space_id`` right now."""
        return []

    def temperature_of(self, space_id: str) -> float:
        """Air temperature of the space in Fahrenheit."""
        return 70.0

    def power_draw_of(self, space_id: str) -> float:
        """Aggregate power draw of the space's outlets in watts."""
        return 0.0

    def motion_in(self, space_id: str) -> bool:
        """Whether anything moved in the space during the last tick."""
        return bool(self.devices_in(space_id))

    def credential_presented(self, space_id: str) -> Optional[str]:
        """Credential id swiped at the space's reader this tick."""
        return None
