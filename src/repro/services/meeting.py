"""The Smart Meeting service.

"Smart Meeting service, which can help organize meetings more
efficiently" (Section III-B).  It finds free rooms from occupancy data,
books meetings, and answers detail queries -- the latter gated by each
participant's permission (Preference 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.language.builder import ServicePolicyBuilder
from repro.core.language.vocabulary import DataCategory, GranularityLevel, Purpose
from repro.core.policy.base import DataRequest, DecisionPhase
from repro.errors import ServiceError
from repro.services.base import BuildingService
from repro.spatial.model import SpaceType
from repro.tippers.request_manager import QueryResponse

_meeting_ids = itertools.count(1)


@dataclass(frozen=True)
class Meeting:
    """A booked meeting."""

    meeting_id: str
    organizer_id: str
    participant_ids: Tuple[str, ...]
    space_id: str
    start: float
    end: float
    title: str = ""

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and start < self.end


class SmartMeeting(BuildingService):
    """Books rooms and shares meeting details, permission-gated."""

    def __init__(self, tippers, service_id: str = "smart-meeting") -> None:
        super().__init__(service_id, tippers)
        self._meetings: Dict[str, Meeting] = {}

    def _describe(self, builder: ServicePolicyBuilder) -> None:
        builder.observes(
            "occupancy",
            "Room occupancy is read to find free meeting rooms",
            inferred=["occupancy"],
        ).observes(
            "meeting_details",
            "Meeting titles, rooms, times and participant lists are stored",
            inferred=["meeting_details", "social_ties"],
        ).purpose(
            "providing_service",
            "Meeting information is used to organize meetings more "
            "efficiently.",
        )

    # ------------------------------------------------------------------
    # Room finding
    # ------------------------------------------------------------------
    def free_rooms(self, start: float, end: float, now: float) -> List[str]:
        """Rooms not booked in the window and not currently occupied.

        Occupancy is read through the policy-checked query path; rooms
        whose occupancy the service may not see are conservatively
        treated as busy.
        """
        if start >= end:
            raise ServiceError("empty booking window")
        candidates = []
        for space in self.tippers.spatial.spaces_of_type(SpaceType.ROOM):
            if any(
                meeting.space_id == space.space_id and meeting.overlaps(start, end)
                for meeting in self._meetings.values()
            ):
                continue
            response = self.tippers.request_manager.room_occupancy(
                self.service_id,
                self.requester_kind,
                space.space_id,
                now,
                purpose=Purpose.PROVIDING_SERVICE,
            )
            if response.allowed and response.value is False:
                candidates.append(space.space_id)
        return sorted(candidates)

    # ------------------------------------------------------------------
    # Booking
    # ------------------------------------------------------------------
    def book(
        self,
        organizer_id: str,
        participant_ids: List[str],
        start: float,
        end: float,
        now: float,
        title: str = "",
        space_id: Optional[str] = None,
    ) -> Meeting:
        """Book a meeting, picking a free room when none is given."""
        if organizer_id not in self.tippers.directory:
            raise ServiceError("unknown organizer %r" % organizer_id)
        for participant in participant_ids:
            if participant not in self.tippers.directory:
                raise ServiceError("unknown participant %r" % participant)
        if space_id is None:
            free = self.free_rooms(start, end, now)
            if not free:
                raise ServiceError("no free rooms in the window")
            space_id = free[0]
        elif space_id not in self.tippers.spatial:
            raise ServiceError("unknown space %r" % space_id)
        meeting = Meeting(
            meeting_id="meeting-%d" % next(_meeting_ids),
            organizer_id=organizer_id,
            participant_ids=tuple(sorted({organizer_id, *participant_ids})),
            space_id=space_id,
            start=start,
            end=end,
            title=title,
        )
        self._meetings[meeting.meeting_id] = meeting
        return meeting

    def cancel(self, meeting_id: str) -> None:
        if meeting_id not in self._meetings:
            raise ServiceError("unknown meeting %r" % meeting_id)
        del self._meetings[meeting_id]

    def meetings_of(self, user_id: str) -> List[Meeting]:
        return sorted(
            (
                m
                for m in self._meetings.values()
                if user_id in m.participant_ids
            ),
            key=lambda m: m.start,
        )

    # ------------------------------------------------------------------
    # Details (Preference 4's target)
    # ------------------------------------------------------------------
    def meeting_details(
        self, requester_id: str, meeting_id: str, now: float
    ) -> QueryResponse:
        """Details of a meeting, checked per participant.

        Each participant's membership is personal data: the response
        lists only participants whose preferences allow the disclosure.
        The meeting's existence is only revealed to requesters who are
        themselves participants.
        """
        meeting = self._meetings.get(meeting_id)
        if meeting is None:
            raise ServiceError("unknown meeting %r" % meeting_id)
        if requester_id not in meeting.participant_ids:
            return QueryResponse.denied(("requester is not a participant",))
        released: List[str] = []
        for participant in meeting.participant_ids:
            request = DataRequest(
                requester_id=self.service_id,
                requester_kind=self.requester_kind,
                phase=DecisionPhase.SHARING,
                category=DataCategory.MEETING_DETAILS,
                subject_id=participant,
                space_id=meeting.space_id,
                timestamp=now,
                purpose=Purpose.PROVIDING_SERVICE,
            )
            decision = self.tippers.engine.decide(request)
            if decision.allowed:
                released.append(participant)
        return QueryResponse(
            allowed=True,
            value={
                "meeting_id": meeting.meeting_id,
                "title": meeting.title,
                "space_id": meeting.space_id,
                "start": meeting.start,
                "end": meeting.end,
                "participants": released,
            },
            granularity=GranularityLevel.PRECISE,
            reasons=("participants filtered by preference",),
        )
