"""The Smart Concierge service.

"Smart Concierge service, which helps users locate rooms, inhabitants
and events in the building" (Section III-B), and per Figure 3 gives
directions using WiFi and beacon location data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.language.builder import ServicePolicyBuilder
from repro.core.language.vocabulary import GranularityLevel, Purpose
from repro.errors import ServiceError
from repro.services.base import BuildingService
from repro.spatial.model import Space, SpaceType
from repro.tippers.request_manager import QueryResponse


@dataclass(frozen=True)
class Directions:
    """A walking route between two spaces."""

    from_space_id: str
    to_space_id: str
    waypoints: Tuple[str, ...]
    distance_m: float

    @property
    def steps(self) -> int:
        return len(self.waypoints)


class SmartConcierge(BuildingService):
    """Locates rooms, people, and amenities; gives directions."""

    def __init__(self, tippers, service_id: str = "concierge") -> None:
        super().__init__(service_id, tippers)

    def _describe(self, builder: ServicePolicyBuilder) -> None:
        builder.observes(
            "wifi_access_point",
            "Whenever one of your devices connects to the DBH WiFi its MAC "
            "address is stored",
            inferred=["location"],
        ).observes(
            "bluetooth_beacon",
            "When you have Concierge installed and your bluetooth senses a "
            "beacon, the room you are in is stored",
            inferred=["location"],
        ).purpose(
            "providing_service",
            "Your location data is used to give you directions around the "
            "Bren Hall.",
        )

    # ------------------------------------------------------------------
    # Room lookup (no personal data involved)
    # ------------------------------------------------------------------
    def find_room(self, name_fragment: str) -> List[Space]:
        """Rooms whose name contains ``name_fragment`` (case-insensitive)."""
        fragment = name_fragment.lower()
        return [
            space
            for space in self.tippers.spatial
            if space.space_type is SpaceType.ROOM and fragment in space.name.lower()
        ]

    def rooms_with(self, attribute: str) -> List[Space]:
        """Rooms tagged with ``attribute`` (e.g. ``"coffee_machine"``)."""
        return [
            space
            for space in self.tippers.spatial
            if space.space_type is SpaceType.ROOM
            and space.attributes.get(attribute) == "yes"
        ]

    # ------------------------------------------------------------------
    # People lookup (policy-checked)
    # ------------------------------------------------------------------
    def find_person(self, subject_id: str, now: float) -> QueryResponse:
        """Where is ``subject_id``?  Subject preferences apply."""
        return self.tippers.request_manager.locate_user(
            self.service_id,
            self.requester_kind,
            subject_id,
            now,
            purpose=Purpose.PROVIDING_SERVICE,
        )

    # ------------------------------------------------------------------
    # Directions
    # ------------------------------------------------------------------
    def _center_distance(self, a_id: str, b_id: str) -> float:
        spatial = self.tippers.spatial
        a, b = spatial.get(a_id), spatial.get(b_id)
        if a.footprint is None or b.footprint is None:
            raise ServiceError("spaces lack footprints for routing")
        return a.footprint.center.distance_to(b.footprint.center)

    def directions(self, from_space_id: str, to_space_id: str) -> Directions:
        """A corridor-based route between two spaces on known floors."""
        spatial = self.tippers.spatial
        if from_space_id not in spatial or to_space_id not in spatial:
            raise ServiceError("unknown space in directions request")
        waypoints: List[str] = [from_space_id]
        from_floor = spatial.ancestor_at_level(from_space_id, SpaceType.FLOOR)
        to_floor = spatial.ancestor_at_level(to_space_id, SpaceType.FLOOR)
        distance = 0.0
        if from_floor is not None and to_floor is not None:
            for floor in {from_floor.space_id, to_floor.space_id}:
                corridors = [
                    s
                    for s in spatial.children(floor)
                    if s.space_type is SpaceType.CORRIDOR
                ]
                waypoints.extend(c.space_id for c in corridors)
            if from_floor.space_id != to_floor.space_id:
                # Inter-floor travel: charge a fixed stairwell cost.
                distance += 15.0
        waypoints.append(to_space_id)
        try:
            distance += self._center_distance(from_space_id, to_space_id)
        except ServiceError:
            distance += 0.0
        return Directions(
            from_space_id=from_space_id,
            to_space_id=to_space_id,
            waypoints=tuple(waypoints),
            distance_m=round(distance, 2),
        )

    def directions_to_nearest(
        self, user_id: str, attribute: str, now: float
    ) -> Optional[Directions]:
        """Route the user to the nearest room tagged ``attribute``.

        Needs the user's location; returns ``None`` when the user has
        opted out of location sharing with the Concierge (the request is
        denied) or is not currently locatable.
        """
        response = self.find_person(user_id, now)
        if not response.allowed or response.value is None:
            return None
        origin = response.value.space_id
        if origin == "unknown" or origin not in self.tippers.spatial:
            return None
        candidates = self.rooms_with(attribute)
        if not candidates:
            return None
        nearest = min(
            candidates,
            key=lambda space: self._safe_distance(origin, space.space_id),
        )
        return self.directions(origin, nearest.space_id)

    def _safe_distance(self, a_id: str, b_id: str) -> float:
        try:
            return self._center_distance(a_id, b_id)
        except ServiceError:
            return float("inf")
