"""A third-party food-delivery service.

"A food delivery company can automatically locate and deliver food to
building inhabitants during lunch time" (Section III-B).  Being a third
party, its requests carry
:attr:`~repro.core.policy.base.RequesterKind.THIRD_PARTY_SERVICE`, so
users can opt out of third-party sharing wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.language.builder import ServicePolicyBuilder
from repro.core.language.vocabulary import Purpose
from repro.errors import ServiceError
from repro.services.base import BuildingService


@dataclass(frozen=True)
class DeliveryAttempt:
    """The outcome of one delivery."""

    user_id: str
    delivered: bool
    space_id: Optional[str]
    reason: str


class FoodDeliveryService(BuildingService):
    """Locates subscribers at lunch time and delivers."""

    LUNCH_START_HOUR = 11.5
    LUNCH_END_HOUR = 13.5

    def __init__(self, tippers, service_id: str = "food-delivery") -> None:
        super().__init__(service_id, tippers, third_party=True, developer_name="LunchCo")
        self._subscribers: List[str] = []

    def _describe(self, builder: ServicePolicyBuilder) -> None:
        builder.observes(
            "location",
            "Your in-building location is read at lunch time to bring your "
            "order to you",
            inferred=["location"],
        ).purpose(
            "providing_service",
            "Food orders are delivered to your current location.",
        )

    def subscribe(self, user_id: str) -> None:
        if user_id not in self.tippers.directory:
            raise ServiceError("unknown user %r" % user_id)
        if user_id not in self._subscribers:
            self._subscribers.append(user_id)

    def unsubscribe(self, user_id: str) -> None:
        if user_id in self._subscribers:
            self._subscribers.remove(user_id)

    @property
    def subscribers(self) -> Tuple[str, ...]:
        return tuple(self._subscribers)

    def _is_lunch_time(self, now: float) -> bool:
        hour = (now % 86400) / 3600.0
        return self.LUNCH_START_HOUR <= hour < self.LUNCH_END_HOUR

    def deliver(self, user_id: str, now: float) -> DeliveryAttempt:
        """Attempt a delivery to ``user_id`` right now."""
        if user_id not in self._subscribers:
            return DeliveryAttempt(user_id, False, None, "not subscribed")
        if not self._is_lunch_time(now):
            return DeliveryAttempt(user_id, False, None, "outside lunch window")
        response = self.tippers.request_manager.locate_user(
            self.service_id,
            self.requester_kind,
            user_id,
            now,
            purpose=Purpose.PROVIDING_SERVICE,
        )
        if not response.allowed:
            return DeliveryAttempt(
                user_id, False, None, "location sharing denied: %s" % "; ".join(response.reasons)
            )
        if response.value is None or response.value.space_id == "unknown":
            return DeliveryAttempt(user_id, False, None, "user not locatable")
        return DeliveryAttempt(
            user_id, True, response.value.space_id, "delivered at %s granularity" % response.granularity.value
        )

    def lunch_run(self, now: float) -> List[DeliveryAttempt]:
        """Deliver to every subscriber."""
        return [self.deliver(user_id, now) for user_id in self._subscribers]
