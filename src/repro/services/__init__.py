"""Building services on top of TIPPERS.

"Smart buildings such as DBH also provide services, built on top of the
collected sensor data, to the inhabitants of the building" (Section
III-B).  The two first-party services the paper names are implemented
(:class:`~repro.services.concierge.SmartConcierge` and
:class:`~repro.services.meeting.SmartMeeting`), plus the third-party
food-delivery example.  Every data access a service makes goes through
the request manager and is therefore policy-checked.
"""

from repro.services.base import BuildingService
from repro.services.concierge import SmartConcierge
from repro.services.food_delivery import FoodDeliveryService
from repro.services.meeting import Meeting, SmartMeeting

__all__ = [
    "BuildingService",
    "SmartConcierge",
    "SmartMeeting",
    "Meeting",
    "FoodDeliveryService",
]
