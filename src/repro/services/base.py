"""Common machinery for building services."""

from __future__ import annotations

from typing import List, Optional

from repro.core.language.builder import ServicePolicyBuilder
from repro.core.language.document import ServicePolicyDocument
from repro.core.policy.base import RequesterKind
from repro.errors import ServiceError
from repro.tippers.bms import TIPPERS


class BuildingService:
    """Base class: a named service bound to a TIPPERS instance.

    Subclasses declare ``service_id`` semantics through their policy
    document (what they observe and why), which the building publishes
    through the IRR so users can review it (Section III-B: "This allows
    a user to directly review what information the service requests and
    for what purpose").
    """

    def __init__(
        self,
        service_id: str,
        tippers: TIPPERS,
        third_party: bool = False,
        developer_name: str = "",
    ) -> None:
        if not service_id:
            raise ServiceError("service_id must be non-empty")
        self.service_id = service_id
        self.tippers = tippers
        self.third_party = third_party
        self.developer_name = developer_name or (
            "Third-party developer" if third_party else "Building operator"
        )

    @property
    def requester_kind(self) -> RequesterKind:
        return (
            RequesterKind.THIRD_PARTY_SERVICE
            if self.third_party
            else RequesterKind.BUILDING_SERVICE
        )

    def policy_document(self) -> ServicePolicyDocument:
        """The machine-readable description of this service's practices.

        Subclasses override :meth:`_describe` to declare observations
        and purposes.
        """
        builder = ServicePolicyBuilder(self.service_id).developer(
            self.developer_name, third_party=self.third_party
        )
        self._describe(builder)
        return builder.build()

    def _describe(self, builder: ServicePolicyBuilder) -> None:
        raise NotImplementedError
